"""Scalability study: how SCIS's training sample rate shrinks as data grows.

The paper's headline: on million-size tables SCIS trains GAN imputers on
~1.5 % of the rows with competitive accuracy.  The SSE theory predicts the
minimum sample size n* is (asymptotically) independent of the total size N —
so the sample rate n*/N falls as the weather table grows.  This example
traces that curve.

Run:  python examples/weather_scaling.py
"""

import time

import numpy as np

from repro import SCIS, DimConfig, GAINImputer, MinMaxNormalizer, ScisConfig
from repro.data import generate, holdout_split


def run_at_scale(n_samples: int) -> dict:
    generated = generate("weather", n_samples=n_samples, seed=11)
    normalized = MinMaxNormalizer().fit_transform(generated.dataset)
    holdout = holdout_split(normalized, 0.2, np.random.default_rng(1))

    config = ScisConfig(
        initial_size=250,
        error_bound=0.015,
        dim=DimConfig(epochs=25),
        seed=0,
    )
    start = time.perf_counter()
    scis_result = SCIS(GAINImputer(seed=0), config).fit_transform(holdout.train)
    scis_seconds = time.perf_counter() - start

    start = time.perf_counter()
    gain_imputed = GAINImputer(epochs=25, seed=0).fit_transform(holdout.train)
    gain_seconds = time.perf_counter() - start

    return {
        "N": n_samples,
        "n_star": scis_result.n_star,
        "rate": scis_result.sample_rate,
        "scis_rmse": holdout.rmse(scis_result.imputed),
        "scis_s": scis_seconds,
        "gain_rmse": holdout.rmse(gain_imputed),
        "gain_s": gain_seconds,
    }


def main() -> None:
    print(f"{'N':>8}{'n*':>8}{'R_t':>8}{'SCIS rmse':>11}{'GAIN rmse':>11}"
          f"{'SCIS s':>8}{'GAIN s':>8}{'speedup':>9}")
    for n_samples in (2000, 6000, 20000):
        row = run_at_scale(n_samples)
        speedup = row["gain_s"] / row["scis_s"] if row["scis_s"] > 0 else float("inf")
        print(
            f"{row['N']:>8}{row['n_star']:>8}{row['rate']:>8.1%}"
            f"{row['scis_rmse']:>11.4f}{row['gain_rmse']:>11.4f}"
            f"{row['scis_s']:>8.1f}{row['gain_s']:>8.1f}{speedup:>8.2f}x"
        )
    print("\nExpected shape: n* roughly saturates, so R_t falls with N and the")
    print("speedup over full-data GAIN grows — the paper's Table IV behaviour.")


if __name__ == "__main__":
    main()
