"""Out-of-core imputation: complete a CSV that never fits in memory.

The paper's motivation (§II.A) is that batch methods choke when "the
incomplete dataset may be too large to fit in memory".  SCIS only trains on
n₀ + n* rows, so the full table can stay on disk: this example writes a
larger-than-comfortable CSV, imputes it chunk-by-chunk with reservoir-sampled
SCIS training, then quantifies imputation uncertainty with multiple
imputation and Rubin's rules.

Run:  python examples/out_of_core.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DimConfig, GAINImputer, MinMaxNormalizer, ScisConfig
from repro.data import generate, impute_csv_streaming, read_csv, write_csv
from repro.metrics import pooled_statistic


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    raw_path = workdir / "surveil.csv"
    imputed_path = workdir / "surveil_imputed.csv"

    # Stand-in for a table that streams from a warehouse export.
    generated = generate("surveil", n_samples=20_000, seed=4)
    write_csv(generated.dataset, raw_path)
    print(f"wrote {generated.dataset.n_samples:,} rows "
          f"({generated.dataset.missing_rate:.1%} missing) -> {raw_path}")

    model = GAINImputer(epochs=20, seed=0)
    config = ScisConfig(
        initial_size=250,
        error_bound=0.02,
        dim=DimConfig(epochs=20),
        seed=0,
    )
    report = impute_csv_streaming(
        raw_path, imputed_path, model, config, chunk_size=2048
    )
    print(
        f"streaming imputation done: n*={report.n_star} "
        f"({report.sample_rate:.2%} of {report.rows:,} rows), "
        f"training {report.training_seconds:.1f}s -> {imputed_path}"
    )
    completed = read_csv(imputed_path)
    assert not np.isnan(completed.values).any()

    # Multiple imputation on an in-memory slice: how certain are we about a
    # downstream quantity (here: the mean of the first feature)?
    slice_ds = MinMaxNormalizer().fit_transform(
        generated.dataset.take(range(2000), name="slice")
    )
    pooled = pooled_statistic(
        model,
        slice_ds,
        statistic=lambda imputed: float(imputed[:, 0].mean()),
        m=5,
    )
    low, high = pooled.confidence_interval()
    print(
        f"pooled mean of feature 0 over 5 imputations: {pooled.estimate:.4f} "
        f"(95% CI [{low:.4f}, {high:.4f}], between-imputation var "
        f"{pooled.between_variance:.2e})"
    )


if __name__ == "__main__":
    main()
