"""Quickstart: impute a COVID-like incomplete table with SCIS in ~30 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SCIS, DimConfig, GAINImputer, MinMaxNormalizer, ScisConfig
from repro.data import generate, holdout_split


def main() -> None:
    # 1. Get an incomplete dataset.  `generate` mimics the paper's Trial
    #    dataset (9 features, ~9.6 % missing); swap in `repro.data.read_csv`
    #    for your own table.
    generated = generate("trial", n_samples=2000, seed=0)
    dataset = generated.dataset
    print(f"dataset: {dataset}")

    # 2. Normalise to [0, 1] (the protocol the paper's theory assumes) and
    #    hide 20 % of the observed cells so we can score the imputation.
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(dataset)
    holdout = holdout_split(normalized, rate=0.2, rng=np.random.default_rng(0))

    # 3. Run SCIS on top of GAIN: train on a small initial sample, let the
    #    SSE module pick the minimum sample size for the error bound, retrain.
    config = ScisConfig(
        initial_size=200,
        error_bound=0.02,  # user-tolerated imputation error ε
        dim=DimConfig(epochs=30),
        seed=0,
    )
    scis = SCIS(GAINImputer(seed=0), config)
    result = scis.fit_transform(holdout.train)

    print(f"minimum sample size n* = {result.n_star} / {result.n_total} "
          f"(training sample rate R_t = {result.sample_rate:.1%})")
    print(f"training time: {result.total_seconds:.1f}s "
          f"(SSE share: {result.timings['sse']:.1f}s)")
    print(f"imputation RMSE on held-out cells: {holdout.rmse(result.imputed):.4f}")

    # 4. Map the imputed matrix back to the original units.
    imputed_original_units = normalizer.inverse_transform(result.imputed)
    print("first imputed row:", np.round(imputed_original_units[0], 3))


if __name__ == "__main__":
    main()
