"""Inspect a DIM training run with the repro.obs observability layer.

Captures a full telemetry trace of a DIM training loop — per-epoch
MS-divergence and adversarial losses, per-solve Sinkhorn iteration counts
and marginal violations, Adam step timings, span durations — then exports
it to JSON and plots divergence-vs-epoch in the terminal.

Run:  python examples/observe_training.py

Inspect the exported trace afterwards without writing code:

    repro obs summarize dim_trace.json
    repro obs dump dim_trace.json --event dim.epoch
"""

import numpy as np

from repro import DIM, DimConfig, GAINImputer
from repro.bench import ascii_chart
from repro.data import MinMaxNormalizer, generate
from repro.obs import recording, summarize_trace, write_json_trace


def main() -> None:
    # 1. A synthetic COVID-like table, min-max normalised (the paper's
    #    protocol; swap in `repro.data.read_csv` for your own CSV).
    dataset = MinMaxNormalizer().fit_transform(
        generate("trial", n_samples=400, seed=0).dataset
    )

    # 2. Train under the MS-divergence with a recorder attached.  Every
    #    instrumented layer (Sinkhorn solver, Adam, the GAIN adversarial
    #    game, the DIM loop itself) emits into `rec`; with no recorder
    #    attached the same code runs telemetry-free.
    model = GAINImputer(seed=0)
    with recording() as rec:
        report = DIM(DimConfig(epochs=8, batch_size=64)).train(
            model, dataset, np.random.default_rng(0)
        )
    print(f"trained {report.epochs} epochs / {report.steps} steps "
          f"in {report.seconds:.2f}s\n")

    # 3. Export (JSON round-trips losslessly; `repro obs` reads this file)
    #    and print the human summary.
    write_json_trace(rec, "dim_trace.json")
    print(summarize_trace(rec))

    # 4. The paper's Example 1 claim, observable: the MS divergence
    #    decreases smoothly with training instead of oscillating.
    epochs = [e for e in rec.events if e.name == "dim.epoch"]
    print()
    print(
        ascii_chart(
            [e.fields["epoch"] for e in epochs],
            {"MS divergence": [e.fields["ms_divergence"] for e in epochs]},
            title="DIM convergence",
        )
    )


if __name__ == "__main__":
    main()
