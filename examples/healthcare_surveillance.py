"""Health-surveillance scenario: impute a large case-surveillance table and
check that the imputation actually helps a downstream classifier.

Mirrors the paper's motivating use case (the 22.5M-row CDC COVID-19 case
surveillance dataset at 47.6 % missing) at laptop scale: SCIS-GAIN trains on
a few percent of rows, then a 3-layer classifier predicts case severity from
the imputed features (the Table VII protocol).

Run:  python examples/healthcare_surveillance.py
"""

import time

import numpy as np

from repro import SCIS, DimConfig, GAINImputer, MinMaxNormalizer, ScisConfig
from repro.data import generate, holdout_split
from repro.metrics import DownstreamConfig, evaluate_downstream
from repro.models import MeanImputer


def main() -> None:
    generated = generate("surveil", n_samples=8000, seed=3)
    print(f"dataset: {generated.dataset}  (downstream task: {generated.spec.task})")

    normalized = MinMaxNormalizer().fit_transform(generated.dataset)
    holdout = holdout_split(normalized, 0.2, np.random.default_rng(0))

    # --- SCIS-GAIN ---
    config = ScisConfig(
        initial_size=300,
        error_bound=0.02,
        dim=DimConfig(epochs=30),
        seed=0,
    )
    start = time.perf_counter()
    scis_result = SCIS(GAINImputer(seed=0), config).fit_transform(holdout.train)
    scis_seconds = time.perf_counter() - start

    # --- plain GAIN on the full table, same budget ---
    start = time.perf_counter()
    gain_imputed = GAINImputer(epochs=30, seed=0).fit_transform(holdout.train)
    gain_seconds = time.perf_counter() - start

    # --- a cheap baseline for context ---
    mean_imputed = MeanImputer().fit_transform(holdout.train)

    print(f"\n{'method':<12}{'RMSE':>8}{'time (s)':>10}{'R_t':>8}")
    print(f"{'mean':<12}{holdout.rmse(mean_imputed):>8.4f}{0.0:>10.1f}{'100%':>8}")
    print(
        f"{'gain':<12}{holdout.rmse(gain_imputed):>8.4f}{gain_seconds:>10.1f}{'100%':>8}"
    )
    print(
        f"{'scis-gain':<12}{holdout.rmse(scis_result.imputed):>8.4f}"
        f"{scis_seconds:>10.1f}{scis_result.sample_rate:>7.1%}"
    )

    # --- post-imputation prediction (Table VII protocol) ---
    print("\npost-imputation severity classification (AUC, higher is better):")
    for name, imputed in (
        ("mean", mean_imputed),
        ("gain", gain_imputed),
        ("scis-gain", scis_result.imputed),
    ):
        outcome = evaluate_downstream(
            imputed,
            generated.labels,
            "classification",
            DownstreamConfig(epochs=20, seed=0),
        )
        print(f"  {name:<12} AUC = {outcome.score:.3f}")


if __name__ == "__main__":
    main()
