"""Plugging your own GAN imputer into SCIS.

SCIS is model-agnostic: anything implementing the
:class:`repro.models.GenerativeImputer` contract — a generator Module, noise
sampling, and a differentiable batch reconstruction — gets the DIM
(masking-Sinkhorn training) and SSE (minimum-sample-size) machinery for free.

This example defines a minimal "residual generator" imputer from scratch and
runs SCIS over it.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import DimConfig, MinMaxNormalizer, SCIS, ScisConfig
from repro.data import generate, holdout_split
from repro.models import GAINImputer
from repro.models.base import GenerativeImputer
from repro.nn import Linear, ReLU, Sequential, Sigmoid
from repro.optim import Adam
from repro.tensor import Tensor, no_grad, ops


class ResidualGenerator(GenerativeImputer):
    """A tiny GAN-free generative imputer: x̄ = σ(x̃ + f([x̃, m])).

    It has no discriminator of its own (``adversarial_step`` is a no-op), so
    DIM trains it purely through the masking Sinkhorn divergence — the
    "differentiable imputation model" in its purest form.
    """

    name = "residual"

    def __init__(self, hidden: int = 24, seed: int = 0) -> None:
        super().__init__()
        self.hidden = hidden
        self.rng = np.random.default_rng(seed)
        self._net = None
        self._column_means = None

    @property
    def generator(self):
        if self._net is None:
            raise RuntimeError("call build() first")
        return self._net

    def build(self, n_features, rng=None):
        if rng is not None:
            self.rng = rng
        self._net = Sequential(
            Linear(2 * n_features, self.hidden, rng=self.rng),
            ReLU(),
            Linear(self.hidden, n_features, rng=self.rng),
        )

    def sample_noise(self, shape, rng):
        return rng.uniform(0.0, 0.01, size=shape)

    def reconstruct_batch(self, values, mask, noise):
        filled = np.nan_to_num(np.asarray(values, dtype=float), nan=0.0)
        mask = np.asarray(mask, dtype=float)
        x_tilde = mask * filled + (1.0 - mask) * noise
        features = ops.concat([Tensor(x_tilde), Tensor(mask)], axis=1)
        return ops.sigmoid(Tensor(x_tilde) + self._net(features))

    def adversarial_step(self, values, mask, rng):
        return {}  # no adversarial game: DIM's MS loss is the only signal

    # Plain Imputer API so it can also be used outside SCIS -------------
    def fit(self, dataset):
        from repro.core import DIM, DimConfig as _DimConfig

        DIM(_DimConfig(epochs=30, use_adversarial=False)).train(
            self, dataset, self.rng
        )
        return self

    def reconstruct(self, values, mask):
        noise = self.sample_noise(np.asarray(mask).shape, np.random.default_rng(0))
        with no_grad():
            return self.reconstruct_batch(values, mask, noise).data


def main() -> None:
    generated = generate("emergency", n_samples=2000, seed=5)
    normalized = MinMaxNormalizer().fit_transform(generated.dataset)
    holdout = holdout_split(normalized, 0.2, np.random.default_rng(0))

    config = ScisConfig(
        initial_size=200,
        error_bound=0.02,
        dim=DimConfig(epochs=30, use_adversarial=False),
        seed=0,
    )
    custom = SCIS(ResidualGenerator(seed=0), config).fit_transform(holdout.train)
    print(
        f"SCIS + custom residual model: rmse={holdout.rmse(custom.imputed):.4f} "
        f"n*={custom.n_star} (R_t={custom.sample_rate:.1%})"
    )

    reference = SCIS(
        GAINImputer(seed=0),
        ScisConfig(initial_size=200, error_bound=0.02, dim=DimConfig(epochs=30), seed=0),
    ).fit_transform(holdout.train)
    print(
        f"SCIS + GAIN (reference):      rmse={holdout.rmse(reference.imputed):.4f} "
        f"n*={reference.n_star} (R_t={reference.sample_rate:.1%})"
    )


if __name__ == "__main__":
    main()
