"""Op-level autodiff profiler: hooks, aggregates, trace round trip, CLI."""

import time

import numpy as np
import pytest

from repro.obs import (
    OpProfiler,
    flame_from_profile,
    format_profile_table,
    get_op_profiler,
    profile_from_trace,
    profiling,
    recording,
    trace_to_dict,
)
from repro.tensor import Tensor


def _workload(n=64, repeats=3):
    """A pure-autodiff chain: matmul-heavy forward + full backward."""
    rng = np.random.default_rng(0)
    w = Tensor(rng.normal(size=(n, n)) * 0.1, requires_grad=True)
    x = Tensor(rng.normal(size=(n, n)))
    out = x
    for _ in range(repeats):
        out = (out @ w).tanh()
    loss = out.sum()
    loss.backward()
    return w


class TestOpProfiler:
    def test_disabled_by_default_and_records_nothing(self):
        profiler = get_op_profiler()
        assert not profiler.enabled
        before = len(profiler.snapshot())
        _workload(n=8, repeats=1)
        assert len(profiler.snapshot()) == before

    def test_forward_and_backward_attribution(self):
        with profiling():
            _workload(n=16, repeats=2)
            snap = get_op_profiler().snapshot()
        assert snap["matmul"]["count"] == 2
        assert snap["tanh"]["count"] == 2
        assert snap["sum"]["count"] == 1
        # backward ran once per tape node of those ops
        assert snap["matmul"]["backward_count"] == 2
        assert snap["matmul"]["forward_seconds"] >= 0.0
        assert snap["matmul"]["backward_seconds"] > 0.0
        assert snap["matmul"]["peak_bytes"] == 16 * 16 * 8

    def test_profiling_context_disables_and_resets(self):
        with profiling():
            _workload(n=8, repeats=1)
        profiler = get_op_profiler()
        assert not profiler.enabled
        with profiling(reset=True):
            pass
        assert profiler.snapshot() == {}

    def test_op_tag_not_set_outside_profiling(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t.tanh()
        assert out._op is None
        with profiling():
            out2 = t.tanh()
            assert out2._op == "tanh"

    def test_exports_events_into_recorder(self):
        with recording() as rec:
            with profiling():
                _workload(n=8, repeats=1)
        ops = [e for e in rec.events if e.name == "profiler.op"]
        summaries = [e for e in rec.events if e.name == "profiler.summary"]
        assert {e.fields["op"] for e in ops} >= {"matmul", "tanh", "sum"}
        assert len(summaries) == 1
        assert summaries[0].fields["total_seconds"] > 0.0

    def test_profile_round_trips_through_trace(self):
        with recording() as rec:
            with profiling():
                _workload(n=8, repeats=1)
        profile = profile_from_trace(trace_to_dict(rec))
        assert profile["matmul"]["count"] == 1
        table = format_profile_table(profile, top=5)
        assert "matmul" in table and "%" in table.splitlines()[0]
        flame = flame_from_profile(profile)
        assert flame["name"] == "autodiff"
        names = {child["name"] for child in flame["children"]}
        assert "matmul" in names

    def test_profile_from_trace_rejects_unprofiled_trace(self):
        with recording() as rec:
            pass
        with pytest.raises(ValueError):
            profile_from_trace(trace_to_dict(rec))

    def test_profiled_times_cover_workload_wall_clock(self):
        """Acceptance: per-op times sum to >= 90% of the traced wall-clock
        of a pure-autodiff workload (data setup excluded — it is not an op)."""
        n, repeats = 256, 8
        rng = np.random.default_rng(0)
        w_data = rng.normal(size=(n, n)) * 0.1
        x_data = rng.normal(size=(n, n))
        with profiling():
            start = time.perf_counter()
            w = Tensor(w_data, requires_grad=True)
            out = Tensor(x_data)
            for _ in range(repeats):
                out = (out @ w).tanh()
            out.sum().backward()
            wall = time.perf_counter() - start
            totals = get_op_profiler().totals()
        covered = totals["forward_seconds"] + totals["backward_seconds"]
        assert covered >= 0.9 * wall, (covered, wall)

    def test_null_path_overhead_is_small(self):
        """With profiling disabled the hooks must not dominate op cost."""

        def run():
            start = time.perf_counter()
            for _ in range(3):
                _workload(n=64, repeats=4)
            return time.perf_counter() - start

        run()  # warm caches
        base = min(run() for _ in range(3))
        with profiling():
            enabled = min(run() for _ in range(3))
        # Profiling adds perf_counter calls + dict updates; the disabled
        # path is the one with the hard budget (<5% on DIM). Here we only
        # sanity-check that enabling doesn't blow the workload up by an
        # order of magnitude, i.e. the hooks stay thin.
        assert enabled < 10 * base

    def test_standalone_profiler_instance(self):
        profiler = OpProfiler()
        profiler.enabled = True
        profiler.record_forward("op", 0.5, 128)
        profiler.record_forward("op", 0.25, 256)
        profiler.record_backward("op", 0.125)
        stats = profiler.snapshot()["op"]
        assert stats["count"] == 2
        assert stats["forward_seconds"] == pytest.approx(0.75)
        assert stats["backward_count"] == 1
        assert stats["peak_bytes"] == 256
        assert profiler.totals()["forward_seconds"] == pytest.approx(0.75)
