"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import IncompleteDataset, MinMaxNormalizer
from repro.models import MeanImputer, impute_equation
from repro.ot import sinkhorn, squared_euclidean_cost
from repro.tensor import Tensor, ops

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def matrices(min_rows=2, max_rows=8, min_cols=1, max_cols=5, elements=finite_floats):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=elements)
        )
    )


class TestAutodiffProperties:
    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        assert np.array_equal(t.grad, np.ones_like(data))

    @given(matrices(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scalar_multiply_scales_gradient(self, data, scale):
        t = Tensor(data, requires_grad=True)
        (t * scale).sum().backward()
        assert np.allclose(t.grad, np.full_like(data, scale))

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_relu_output_nonnegative(self, data):
        assert (ops.relu(Tensor(data)).data >= 0).all()

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_in_unit_interval(self, data):
        out = ops.sigmoid(Tensor(data)).data
        assert ((out >= 0) & (out <= 1)).all()

    @given(matrices())
    @settings(max_examples=20, deadline=None)
    def test_add_commutes(self, data):
        a = Tensor(data)
        b = Tensor(data[::-1].copy())
        assert np.allclose((a + b).data, (b + a).data)


class TestOTProperties:
    @given(matrices(min_rows=2, max_rows=6, min_cols=1, max_cols=3))
    @settings(max_examples=15, deadline=None)
    def test_sinkhorn_plan_marginals(self, data):
        cost = squared_euclidean_cost(data, data + 1.0)
        result = sinkhorn(cost / max(cost.max(), 1.0), reg=0.5, max_iter=2000)
        n = data.shape[0]
        assert np.allclose(result.plan.sum(axis=1), 1.0 / n, atol=1e-6)
        assert np.allclose(result.plan.sum(axis=0), 1.0 / n, atol=1e-6)
        assert (result.plan >= 0).all()

    @given(matrices(min_rows=2, max_rows=6, min_cols=1, max_cols=3))
    @settings(max_examples=15, deadline=None)
    def test_cost_matrix_nonnegative_symmetric_on_self(self, data):
        cost = squared_euclidean_cost(data, data)
        assert (cost >= 0).all()
        assert np.allclose(cost, cost.T, atol=1e-9)
        assert np.allclose(np.diag(cost), 0.0, atol=1e-9)


class TestDataProperties:
    @given(matrices(min_rows=2, max_rows=10), st.floats(0.0, 0.8))
    @settings(max_examples=25, deadline=None)
    def test_mask_complements_nan(self, data, rate):
        rng = np.random.default_rng(0)
        values = data.copy()
        values[rng.random(values.shape) < rate] = np.nan
        ds = IncompleteDataset(values)
        assert np.array_equal(ds.mask == 0.0, np.isnan(ds.values))

    @given(matrices(min_rows=3, max_rows=10))
    @settings(max_examples=25, deadline=None)
    def test_normalizer_roundtrip(self, data):
        ds = IncompleteDataset(data)
        norm = MinMaxNormalizer()
        transformed = norm.fit_transform(ds)
        back = norm.inverse_transform(transformed.values)
        assert np.allclose(back, data, atol=1e-8)

    @given(
        matrices(
            min_rows=3,
            max_rows=10,
            min_cols=3,
            elements=st.floats(
                min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
            ),
        ),
        st.floats(0.0, 0.6),
    )
    @settings(max_examples=25, deadline=None)
    def test_normalizer_roundtrip_observed_cells(self, data, rate):
        # Degenerate columns are part of the contract: a constant column and
        # an entirely-missing column must both survive the round trip.
        rng = np.random.default_rng(2)
        values = data.copy()
        values[rng.random(values.shape) < rate] = np.nan
        values[:, 0] = data[0, 0]  # constant column
        values[:, 1] = np.nan  # all-NaN column
        ds = IncompleteDataset(values)
        norm = MinMaxNormalizer()
        back = norm.inverse_transform(norm.fit_transform(ds).values)
        observed = ds.mask == 1.0
        assert np.allclose(back[observed], values[observed], atol=1e-9)
        assert np.array_equal(np.isnan(back), ds.mask == 0.0)

    @given(matrices(min_rows=2, max_rows=8))
    @settings(max_examples=25, deadline=None)
    def test_impute_equation_idempotent_on_complete(self, data):
        ds = IncompleteDataset(data)
        out = impute_equation(ds.values, ds.mask, np.zeros_like(data))
        assert np.allclose(out, data)

    @given(matrices(min_rows=3, max_rows=10), st.floats(0.1, 0.6))
    @settings(max_examples=20, deadline=None)
    def test_mean_imputer_preserves_observed(self, data, rate):
        rng = np.random.default_rng(1)
        values = data.copy()
        drop = rng.random(values.shape) < rate
        if drop.all(axis=0).any():  # keep at least one observation per column
            drop[0] = False
        values[drop] = np.nan
        ds = IncompleteDataset(values)
        imputed = MeanImputer().fit_transform(ds)
        observed = ds.mask == 1.0
        assert np.allclose(imputed[observed], data[observed])
        assert not np.isnan(imputed).any()
