"""Property-based tests (hypothesis) on core data structures and invariants,
plus the seeded serial/process parity properties and golden determinism pins
for the parallel execution subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import IncompleteDataset, MinMaxNormalizer
from repro.models import MeanImputer, impute_equation
from repro.ot import SinkhornConfig, sinkhorn, squared_euclidean_cost
from repro.parallel import ExecutionContext, available_cpus, spawn_rng
from repro.tensor import Tensor, ops

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def matrices(min_rows=2, max_rows=8, min_cols=1, max_cols=5, elements=finite_floats):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=elements)
        )
    )


class TestAutodiffProperties:
    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        assert np.array_equal(t.grad, np.ones_like(data))

    @given(matrices(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scalar_multiply_scales_gradient(self, data, scale):
        t = Tensor(data, requires_grad=True)
        (t * scale).sum().backward()
        assert np.allclose(t.grad, np.full_like(data, scale))

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_relu_output_nonnegative(self, data):
        assert (ops.relu(Tensor(data)).data >= 0).all()

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_in_unit_interval(self, data):
        out = ops.sigmoid(Tensor(data)).data
        assert ((out >= 0) & (out <= 1)).all()

    @given(matrices())
    @settings(max_examples=20, deadline=None)
    def test_add_commutes(self, data):
        a = Tensor(data)
        b = Tensor(data[::-1].copy())
        assert np.allclose((a + b).data, (b + a).data)


class TestOTProperties:
    @given(matrices(min_rows=2, max_rows=6, min_cols=1, max_cols=3))
    @settings(max_examples=15, deadline=None)
    def test_sinkhorn_plan_marginals(self, data):
        cost = squared_euclidean_cost(data, data + 1.0)
        result = sinkhorn(cost / max(cost.max(), 1.0), SinkhornConfig(reg=0.5, max_iter=2000))
        n = data.shape[0]
        assert np.allclose(result.plan.sum(axis=1), 1.0 / n, atol=1e-6)
        assert np.allclose(result.plan.sum(axis=0), 1.0 / n, atol=1e-6)
        assert (result.plan >= 0).all()

    @given(matrices(min_rows=2, max_rows=6, min_cols=1, max_cols=3))
    @settings(max_examples=15, deadline=None)
    def test_cost_matrix_nonnegative_symmetric_on_self(self, data):
        cost = squared_euclidean_cost(data, data)
        assert (cost >= 0).all()
        assert np.allclose(cost, cost.T, atol=1e-9)
        assert np.allclose(np.diag(cost), 0.0, atol=1e-9)


class TestDataProperties:
    @given(matrices(min_rows=2, max_rows=10), st.floats(0.0, 0.8))
    @settings(max_examples=25, deadline=None)
    def test_mask_complements_nan(self, data, rate):
        rng = np.random.default_rng(0)
        values = data.copy()
        values[rng.random(values.shape) < rate] = np.nan
        ds = IncompleteDataset(values)
        assert np.array_equal(ds.mask == 0.0, np.isnan(ds.values))

    @given(matrices(min_rows=3, max_rows=10))
    @settings(max_examples=25, deadline=None)
    def test_normalizer_roundtrip(self, data):
        ds = IncompleteDataset(data)
        norm = MinMaxNormalizer()
        transformed = norm.fit_transform(ds)
        back = norm.inverse_transform(transformed.values)
        assert np.allclose(back, data, atol=1e-8)

    @given(
        matrices(
            min_rows=3,
            max_rows=10,
            min_cols=3,
            elements=st.floats(
                min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
            ),
        ),
        st.floats(0.0, 0.6),
    )
    @settings(max_examples=25, deadline=None)
    def test_normalizer_roundtrip_observed_cells(self, data, rate):
        # Degenerate columns are part of the contract: a constant column and
        # an entirely-missing column must both survive the round trip.
        rng = np.random.default_rng(2)
        values = data.copy()
        values[rng.random(values.shape) < rate] = np.nan
        values[:, 0] = data[0, 0]  # constant column
        values[:, 1] = np.nan  # all-NaN column
        ds = IncompleteDataset(values)
        norm = MinMaxNormalizer()
        back = norm.inverse_transform(norm.fit_transform(ds).values)
        observed = ds.mask == 1.0
        assert np.allclose(back[observed], values[observed], atol=1e-9)
        assert np.array_equal(np.isnan(back), ds.mask == 0.0)

    @given(matrices(min_rows=2, max_rows=8))
    @settings(max_examples=25, deadline=None)
    def test_impute_equation_idempotent_on_complete(self, data):
        ds = IncompleteDataset(data)
        out = impute_equation(ds.values, ds.mask, np.zeros_like(data))
        assert np.allclose(out, data)

    @given(matrices(min_rows=3, max_rows=10), st.floats(0.1, 0.6))
    @settings(max_examples=20, deadline=None)
    def test_mean_imputer_preserves_observed(self, data, rate):
        rng = np.random.default_rng(1)
        values = data.copy()
        drop = rng.random(values.shape) < rate
        if drop.all(axis=0).any():  # keep at least one observation per column
            drop[0] = False
        values[drop] = np.nan
        ds = IncompleteDataset(values)
        imputed = MeanImputer().fit_transform(ds)
        observed = ds.mask == 1.0
        assert np.allclose(imputed[observed], data[observed])
        assert not np.isnan(imputed).any()


class TestOtDirectProperties:
    """Invariants of direct batch-Sinkhorn imputation (`SinkhornImputer`)."""

    @staticmethod
    def _fast_imputer(**overrides):
        from repro.models import SinkhornImputer

        kwargs = dict(
            epochs=2, batch_size=4, sinkhorn_max_iter=25, fit_mlp=False, seed=0
        )
        kwargs.update(overrides)
        return SinkhornImputer(**kwargs)

    @given(matrices(min_rows=8, max_rows=16, min_cols=2), st.floats(0.0, 0.5))
    @settings(max_examples=10, deadline=None)
    def test_observed_cells_byte_identical_through_fit_impute(self, data, rate):
        # The same invariant the streaming path guarantees: fit_impute is a
        # copy-and-assign of the missing positions, so observed cells come
        # back byte-for-byte, not merely approximately.
        rng = np.random.default_rng(3)
        values = data.copy()
        values[rng.random(values.shape) < rate] = np.nan
        ds = IncompleteDataset(values)
        out = self._fast_imputer().fit_impute(ds)
        observed = ds.mask == 1.0
        assert np.array_equal(out[observed], values[observed])
        assert not np.isnan(out).any()

    def test_imputation_invariant_to_pair_visiting_order(self, rng):
        # With a fixed batch partition, gradients are accumulated over the
        # whole round before the single optimiser step, so visiting the
        # round's pairs in any order only permutes a floating-point sum.
        from repro.models import SinkhornImputer

        class ReversedPairs(SinkhornImputer):
            def _round_pairs(self, round_index, n_batches):
                return list(reversed(super()._round_pairs(round_index, n_batches)))

        n, d = 64, 5
        full = rng.normal(size=(n, 2)) @ rng.normal(size=(2, d))
        values = full.copy()
        values[rng.random((n, d)) < 0.3] = np.nan
        ds = IncompleteDataset(values)
        kwargs = dict(
            epochs=6, batch_size=16, seed=0, fit_mlp=False, fixed_batch_order=True
        )
        forward = SinkhornImputer(**kwargs).fit_impute(ds)
        backward = ReversedPairs(**kwargs).fit_impute(ds)
        assert np.allclose(forward, backward, atol=1e-9, rtol=1e-9)


# ---------------------------------------------------------------------------
# Parallel execution: seeded-random parity properties and golden pins
# ---------------------------------------------------------------------------

PARITY_WORKER_COUNTS = sorted({1, 2, available_cpus()})

_SSE_SETUP_CACHE = {}


def _sse_setup():
    """A deterministic lightly-trained GAIN + splits, built once per process."""
    if "setup" not in _SSE_SETUP_CACHE:
        from repro.core import DIM, DimConfig
        from repro.data import ampute, holdout_split
        from repro.models import GAINImputer

        rng = np.random.default_rng(12345)
        latent = rng.normal(size=(400, 2))
        full = latent @ rng.normal(size=(2, 6)) + 0.05 * rng.normal(size=(400, 6))
        ds = MinMaxNormalizer().fit_transform(
            ampute(IncompleteDataset(full, name="small"), 0.3, "mcar", rng)
        )
        holdout = holdout_split(ds, 0.2, rng)
        split = holdout.train.split_validation_initial(80, 80, rng)
        model = GAINImputer(seed=0)
        DIM(DimConfig(epochs=6)).train(model, split.initial, rng)
        _SSE_SETUP_CACHE["setup"] = (model, split)
    return _SSE_SETUP_CACHE["setup"]


def _sse_estimate(context, seed):
    from repro.core import SSE, SseConfig

    model, split = _sse_setup()
    sse = SSE(
        model,
        split.validation.values,
        split.validation.mask,
        SseConfig(error_bound=0.02),
        rng=np.random.default_rng(0),
        seed=seed,
        context=context,
    )
    sse.prepare(split.initial.values, split.initial.mask)
    return sse.estimate_minimum_size(80, 400)


@pytest.mark.parallel
class TestParallelParityProperties:
    """Seeded-random configs: serial and process answers stay bit-identical."""

    @given(st.integers(0, 2**63 - 1), st.integers(2, 9))
    @settings(max_examples=10, deadline=None)
    def test_spawn_rng_tasks_bit_identical(self, entropy, n_tasks):
        def run(context):
            tasks = [
                lambda i=i: spawn_rng(entropy, "prop", i).normal(size=3)
                for i in range(n_tasks)
            ]
            return context.run(tasks, label="prop")

        reference = run(ExecutionContext("serial"))
        for workers in PARITY_WORKER_COUNTS:
            candidate = run(ExecutionContext("process", workers=workers))
            for ref, cand in zip(reference, candidate):
                assert np.array_equal(ref, cand)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=4, deadline=None)
    def test_sse_minimum_size_bit_identical(self, seed):
        expected = _sse_estimate(ExecutionContext("serial"), seed)
        for workers in PARITY_WORKER_COUNTS:
            result = _sse_estimate(
                ExecutionContext("process", workers=workers), seed
            )
            assert result.minimum_size == expected.minimum_size
            assert result.evaluations == expected.evaluations

    @given(st.integers(0, 999))
    @settings(max_examples=3, deadline=None)
    def test_bench_rmse_table_bit_identical(self, seed):
        from repro.bench.runner import run_smoke_bench

        reference = run_smoke_bench(
            n_samples=64, epochs=1, seed=seed, context=ExecutionContext("serial")
        )
        expected = [(r.method, r.rmse_mean) for r in reference]
        for workers in PARITY_WORKER_COUNTS:
            candidate = run_smoke_bench(
                n_samples=64,
                epochs=1,
                seed=seed,
                context=ExecutionContext("process", workers=workers),
            )
            assert [(r.method, r.rmse_mean) for r in candidate] == expected


class TestGoldenDeterminism:
    """Regression pins: fixed seeds must keep producing these exact answers.

    The pins use a tight relative tolerance (1e-9) rather than ``==`` so a
    different BLAS build does not trip them, while any real behavioural
    change — reordered RNG draws, a changed default, a dropped sample —
    still fails loudly.  Regenerate by printing the new values if an
    *intentional* change shifts them.
    """

    GOLDEN_N_STAR = 364
    GOLDEN_EVALUATIONS = {
        80: 0.0, 400: 1.0, 240: 0.05, 320: 0.55, 360: 0.85, 380: 1.0,
        370: 1.0, 365: 1.0, 362: 0.95, 363: 0.95, 364: 1.0,
    }
    GOLDEN_SMOKE_RMSE = {
        "mean": 0.301746696903149,
        "knn": 0.25245939270961376,
        "dim-gain": 0.333446642271172,
        "dim-gain-adv": 0.32949946274227154,
        "otdirect": 0.27471473372462857,
    }

    @pytest.mark.parallel
    def test_sse_golden_minimum_size(self):
        for context in (ExecutionContext("serial"), ExecutionContext("process", workers=2)):
            result = _sse_estimate(context, seed=99)
            assert result.n_star == self.GOLDEN_N_STAR
            assert result.minimum_size == self.GOLDEN_N_STAR
            assert result.evaluations == pytest.approx(self.GOLDEN_EVALUATIONS)

    @pytest.mark.parallel
    def test_smoke_bench_golden_rmse(self):
        from repro.bench.runner import run_smoke_bench

        results = run_smoke_bench(context=ExecutionContext("serial"))
        table = {r.method: r.rmse_mean for r in results}
        assert set(table) == set(self.GOLDEN_SMOKE_RMSE)
        for method, golden in self.GOLDEN_SMOKE_RMSE.items():
            assert table[method] == pytest.approx(golden, rel=1e-9), method
