"""repro.parallel: execution contexts, spawn-key seeding, obs-trace merging,
and the serial/process parity gates for every call site that fans out."""

import os
import zlib

import numpy as np
import pytest

from repro.core import DIM, DimConfig, SSE, SseConfig
from repro.data import holdout_split
from repro.models import GAINImputer
from repro.obs import recording
from repro.ot import SinkhornConfig
from repro.parallel import (
    ExecutionContext,
    assert_backend_parity,
    available_cpus,
    derive_entropy,
    domain_key,
    env_workers,
    run_with_backend,
    spawn_rng,
    spawn_rngs,
)

WORKER_COUNTS = sorted({1, 2, available_cpus()})


def _square_tasks(n=5):
    return [lambda i=i: i * i for i in range(n)]


class TestExecutionContext:
    def test_invalid_backend_raises(self):
        with pytest.raises(ValueError):
            ExecutionContext(backend="threads")

    def test_invalid_workers_raises(self):
        with pytest.raises(ValueError):
            ExecutionContext(backend="process", workers=0)

    def test_empty_task_list(self):
        assert ExecutionContext("process", workers=2).run([]) == []

    def test_serial_preserves_order(self):
        assert ExecutionContext("serial").run(_square_tasks()) == [0, 1, 4, 9, 16]

    def test_process_preserves_order(self):
        assert ExecutionContext("process", workers=2).run(_square_tasks()) == [
            0, 1, 4, 9, 16,
        ]

    def test_single_task_runs_in_calling_process(self):
        # One task never justifies a fork; the result must come from our pid.
        results = ExecutionContext("process", workers=2).run([os.getpid])
        assert results == [os.getpid()]

    def test_multiple_tasks_fork_real_workers(self):
        pids = ExecutionContext("process", workers=2).run([os.getpid] * 4)
        assert all(pid != os.getpid() for pid in pids)

    def test_task_exception_propagates(self):
        tasks = [lambda: 1, lambda: 1 // 0]
        with pytest.raises(ZeroDivisionError):
            ExecutionContext("process", workers=2).run(tasks)
        with pytest.raises(ZeroDivisionError):
            ExecutionContext("serial").run(tasks)

    def test_unpicklable_exception_is_wrapped(self):
        class Unpicklable(Exception):
            def __init__(self):
                super().__init__("boom")
                self.payload = lambda: None  # lambdas never pickle

        def explode():
            raise Unpicklable()

        with pytest.raises(RuntimeError, match="Unpicklable"):
            ExecutionContext("process", workers=2).run([explode, explode])

    def test_closures_over_arrays_work(self):
        data = np.arange(12.0).reshape(3, 4)
        tasks = [lambda row=row: float(data[row].sum()) for row in range(3)]
        assert ExecutionContext("process", workers=2).run(tasks) == [
            6.0, 22.0, 38.0,
        ]


class TestFromEnv:
    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert ExecutionContext.from_env().backend == "serial"
        assert env_workers() == 0

    def test_env_two_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        context = ExecutionContext.from_env()
        assert context.backend == "process"
        assert context.workers == 2

    def test_env_one_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert ExecutionContext.from_env().backend == "serial"

    def test_garbage_env_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "plenty")
        assert env_workers() == 0
        assert ExecutionContext.from_env().backend == "serial"

    def test_explicit_workers_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        context = ExecutionContext.from_env(workers=1)
        assert context.backend == "serial"
        context = ExecutionContext.from_env(workers=3)
        assert context.workers == 3

    def test_resolved_workers_falls_back_to_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert ExecutionContext("process").resolved_workers() == available_cpus()
        assert ExecutionContext("process", workers=5).resolved_workers() == 5


class TestFallback:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        context = ExecutionContext("process", workers=2)
        monkeypatch.setattr(
            context,
            "_run_pool",
            lambda *a, **k: (_ for _ in ()).throw(OSError("fork refused")),
        )
        with recording() as rec:
            assert context.run(_square_tasks(3), label="unit") == [0, 1, 4]
        trace = rec.to_dict()
        events = [e for e in trace["events"] if e["name"] == "parallel.fallback"]
        assert len(events) == 1
        assert events[0]["fields"]["label"] == "unit"
        assert "fork refused" in events[0]["fields"]["reason"]
        assert trace["metrics"]["counters"]["parallel.fallbacks"] == 1.0

    def test_nested_pools_degrade_gracefully(self):
        # Daemonic pool workers cannot fork their own pools; the inner
        # context must detect the failure and run serially instead.
        def nested():
            inner = ExecutionContext("process", workers=2)
            return inner.run(_square_tasks(3), label="inner")

        outer = ExecutionContext("process", workers=2)
        assert outer.run([nested, nested]) == [[0, 1, 4], [0, 1, 4]]


class TestObsMerge:
    @staticmethod
    def _tasks():
        from repro.obs import get_recorder

        def work(i):
            recorder = get_recorder()
            recorder.inc("unit.count")
            recorder.observe("unit.hist", float(i))
            recorder.set_gauge("unit.gauge", float(i))
            recorder.emit("unit.evt", index=i)
            return i

        return [lambda i=i: work(i) for i in range(4)]

    def _trace(self, backend, workers=None):
        with recording() as rec:
            results = ExecutionContext(backend, workers=workers).run(
                self._tasks(), label="unit"
            )
        assert results == [0, 1, 2, 3]
        return rec.to_dict()

    def test_child_counters_events_and_moments_merge(self):
        serial = self._trace("serial")
        process = self._trace("process", workers=2)
        assert (
            process["metrics"]["counters"]["unit.count"]
            == serial["metrics"]["counters"]["unit.count"]
            == 4.0
        )
        serial_hist = serial["metrics"]["histograms"]["unit.hist"]
        process_hist = process["metrics"]["histograms"]["unit.hist"]
        for moment in ("count", "total", "mean", "min", "max"):
            assert process_hist[moment] == serial_hist[moment]
        assert [
            e["fields"]["index"] for e in process["events"] if e["name"] == "unit.evt"
        ] == [0, 1, 2, 3]

    def test_batch_event_reports_backend(self):
        process = self._trace("process", workers=2)
        batch = [e for e in process["events"] if e["name"] == "parallel.tasks"]
        assert len(batch) == 1
        assert batch[0]["fields"]["backend"] == "process"
        assert batch[0]["fields"]["n_tasks"] == 4


class TestSeeding:
    def test_spawn_rng_deterministic(self):
        a = spawn_rng(7, "unit", 3, 1).random(5)
        b = spawn_rng(7, "unit", 3, 1).random(5)
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        a = spawn_rng(7, "unit", 0).random(5)
        b = spawn_rng(7, "unit", 1).random(5)
        assert not np.array_equal(a, b)

    def test_distinct_domains_distinct_streams(self):
        a = spawn_rng(7, "sse.pass_probability", 0).random(5)
        b = spawn_rng(7, "ot.chunked_divergence", 0).random(5)
        assert not np.array_equal(a, b)

    def test_domain_key_is_crc32(self):
        assert domain_key("sse.pass_probability") == zlib.crc32(
            b"sse.pass_probability"
        )

    def test_spawn_rngs_match_individual_spawns(self):
        batch = spawn_rngs(7, "unit", 3, 9)
        for i, rng in enumerate(batch):
            assert np.array_equal(
                rng.random(4), spawn_rng(7, "unit", 9, i).random(4)
            )

    def test_derive_entropy_deterministic_single_draw(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        assert derive_entropy(rng_a) == derive_entropy(rng_b)
        # Exactly one draw consumed: the streams stay in lockstep.
        assert rng_a.random() == rng_b.random()


class TestParityHarness:
    def test_deterministic_tasks_pass(self):
        def factory():
            return [
                lambda i=i: float(spawn_rng(3, "unit", i).normal()) for i in range(6)
            ]

        reference = assert_backend_parity(factory, worker_counts=WORKER_COUNTS)
        assert len(reference) == 6

    def test_nondeterministic_tasks_fail(self):
        # Worker pids differ from the parent pid, so the harness must flag
        # any task whose answer depends on where it ran.
        with pytest.raises(AssertionError, match="parity mismatch"):
            assert_backend_parity(
                lambda: [os.getpid, os.getpid], worker_counts=(2,)
            )

    def test_tolerance_modes(self):
        shift = {"serial": 0.0}

        def factory():
            # First build (serial reference) returns 0.0; later builds 1e-12.
            offset = shift["serial"]
            shift["serial"] = 1e-12
            return [lambda: offset]

        with pytest.raises(AssertionError):
            assert_backend_parity(factory, worker_counts=(2,))
        shift["serial"] = 0.0
        assert_backend_parity(factory, worker_counts=(2,), atol=1e-9)

    def test_structural_comparison_covers_nested_payloads(self):
        def factory():
            return [
                lambda: {
                    "arr": np.arange(3.0),
                    "seq": [1, (2.0, 3)],
                    "scalar": 0.5,
                }
            ]

        assert_backend_parity(factory, worker_counts=(2,))

    def test_run_with_backend_returns_results(self):
        assert run_with_backend(lambda: _square_tasks(3), "serial") == [0, 1, 4]


@pytest.fixture(scope="module")
def sse_setup():
    """A lightly-trained GAIN plus splits for the SSE parity gates."""
    rng = np.random.default_rng(12345)
    from repro.data import IncompleteDataset, MinMaxNormalizer, ampute

    latent = rng.normal(size=(400, 2))
    full = latent @ rng.normal(size=(2, 6)) + 0.05 * rng.normal(size=(400, 6))
    ds = MinMaxNormalizer().fit_transform(
        ampute(IncompleteDataset(full, name="small"), 0.3, "mcar", rng)
    )
    holdout = holdout_split(ds, 0.2, rng)
    split = holdout.train.split_validation_initial(80, 80, rng)
    model = GAINImputer(seed=0)
    DIM(DimConfig(epochs=6)).train(model, split.initial, rng)
    return model, split


def _make_sse(sse_setup, context, seed=99, error_bound=0.02):
    model, split = sse_setup
    sse = SSE(
        model,
        split.validation.values,
        split.validation.mask,
        SseConfig(error_bound=error_bound),
        rng=np.random.default_rng(0),
        seed=seed,
        context=context,
    )
    sse.prepare(split.initial.values, split.initial.mask)
    return sse


@pytest.mark.parallel
class TestSseParity:
    def test_minimum_size_identical_across_backends(self, sse_setup):
        reference = _make_sse(sse_setup, ExecutionContext("serial"))
        expected = reference.estimate_minimum_size(80, 400)
        for workers in WORKER_COUNTS:
            candidate = _make_sse(
                sse_setup, ExecutionContext("process", workers=workers)
            )
            result = candidate.estimate_minimum_size(80, 400)
            assert result.minimum_size == expected.minimum_size
            assert result.n_star == expected.n_star
            assert result.evaluations == expected.evaluations

    def test_repro_workers_env_matches_serial(self, sse_setup, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        via_env = _make_sse(sse_setup, None)
        assert via_env.context.backend == "process"
        monkeypatch.delenv("REPRO_WORKERS")
        serial = _make_sse(sse_setup, None)
        assert serial.context.backend == "serial"
        assert (
            via_env.estimate_minimum_size(80, 400).n_star
            == serial.estimate_minimum_size(80, 400).n_star
        )

    def test_pass_probability_call_order_invariant(self, sse_setup):
        # Regression: pass_probability used to consume the shared generator
        # sequentially, so evaluating n=100 before n=300 changed the n=300
        # answer.  Spawn-key streams make each n a pure function of the seed.
        forward = _make_sse(sse_setup, ExecutionContext("serial"))
        p_small = forward.pass_probability(100, 80, 400, 6)
        p_large = forward.pass_probability(300, 80, 400, 6)
        backward = _make_sse(sse_setup, ExecutionContext("serial"))
        q_large = backward.pass_probability(300, 80, 400, 6)
        q_small = backward.pass_probability(100, 80, 400, 6)
        assert p_small == q_small
        assert p_large == q_large

    def test_pass_probability_backend_parity(self, sse_setup):
        serial = _make_sse(sse_setup, ExecutionContext("serial"))
        process = _make_sse(sse_setup, ExecutionContext("process", workers=2))
        for n in (100, 250, 390):
            assert serial.pass_probability(n, 80, 400, 6) == process.pass_probability(
                n, 80, 400, 6
            )

    def test_distinct_seeds_distinct_sampling(self, sse_setup):
        a = _make_sse(sse_setup, ExecutionContext("serial"), seed=1)
        b = _make_sse(sse_setup, ExecutionContext("serial"), seed=2)
        probs_a = [a.pass_probability(n, 80, 4000, 6) for n in (200, 400, 800)]
        probs_b = [b.pass_probability(n, 80, 4000, 6) for n in (200, 400, 800)]
        assert probs_a != probs_b


@pytest.mark.parallel
class TestBenchParity:
    def test_smoke_bench_rmse_table_identical(self):
        from repro.bench.runner import run_smoke_bench

        reference = run_smoke_bench(
            n_samples=64, epochs=1, context=ExecutionContext("serial")
        )
        expected = [(r.method, r.dataset, r.rmse_mean, r.sample_rate) for r in reference]
        for workers in WORKER_COUNTS:
            candidate = run_smoke_bench(
                n_samples=64,
                epochs=1,
                context=ExecutionContext("process", workers=workers),
            )
            assert [
                (r.method, r.dataset, r.rmse_mean, r.sample_rate) for r in candidate
            ] == expected

    def test_comparison_merges_bench_telemetry(self):
        from repro.bench.runner import run_smoke_bench

        with recording() as rec:
            results = run_smoke_bench(
                n_samples=64, epochs=1, context=ExecutionContext("process", workers=2)
            )
        trace = rec.to_dict()
        assert trace["metrics"]["counters"]["bench.runs"] == float(len(results))
        bench_events = [e for e in trace["events"] if e["name"] == "bench.result"]
        # Absorbed in submission order: the event order matches the table.
        assert [e["fields"]["method"] for e in bench_events] == [
            r.method for r in results
        ]


class TestChunkedDivergence:
    @pytest.fixture()
    def cloud(self, rng):
        n, d = 40, 5
        x = rng.random((n, d))
        x_bar = x + 0.1 * rng.normal(size=(n, d))
        mask = (rng.random((n, d)) > 0.3).astype(float)
        return x_bar, x, mask

    def test_single_chunk_equals_plain_divergence(self, cloud):
        from repro.ot import (
            chunked_masking_sinkhorn_divergence,
            masking_sinkhorn_divergence,
        )

        x_bar, x, mask = cloud
        assert chunked_masking_sinkhorn_divergence(
            x_bar, x, mask, SinkhornConfig(reg=0.5), chunk_size=len(x)
        ) == masking_sinkhorn_divergence(x_bar, x, mask, SinkhornConfig(reg=0.5))

    def test_backend_parity(self, cloud):
        from repro.ot import chunked_masking_sinkhorn_divergence

        x_bar, x, mask = cloud
        values = {
            backend: chunked_masking_sinkhorn_divergence(
                x_bar, x, mask, SinkhornConfig(reg=0.5), chunk_size=16,
                batched=False,  # keep the loop fan-out path exercised
                context=ExecutionContext(backend, workers=2 if backend == "process" else None),
            )
            for backend in ("serial", "process")
        }
        assert values["serial"] == values["process"]

    def test_weighted_average_of_chunks(self, cloud):
        from repro.ot import (
            chunked_masking_sinkhorn_divergence,
            masking_sinkhorn_divergence,
        )

        x_bar, x, mask = cloud
        n = len(x)
        bounds = [(0, 16), (16, 32), (32, 40)]
        manual = sum(
            (stop - start)
            * masking_sinkhorn_divergence(
                x_bar[start:stop], x[start:stop], mask[start:stop],
                SinkhornConfig(reg=0.5), batched=False,
            )
            for start, stop in bounds
        ) / n
        chunked = chunked_masking_sinkhorn_divergence(
            x_bar, x, mask, SinkhornConfig(reg=0.5), chunk_size=16, batched=False
        )
        assert chunked == pytest.approx(manual, abs=1e-15)

    def test_invalid_inputs_raise(self, cloud):
        from repro.ot import chunked_masking_sinkhorn_divergence

        x_bar, x, mask = cloud
        cfg = SinkhornConfig(reg=0.5)
        with pytest.raises(ValueError):
            chunked_masking_sinkhorn_divergence(x_bar, x, mask, cfg, chunk_size=0)
        with pytest.raises(ValueError):
            chunked_masking_sinkhorn_divergence(x_bar[:-1], x, mask, cfg)
        empty = np.zeros((0, 5))
        with pytest.raises(ValueError):
            chunked_masking_sinkhorn_divergence(empty, empty, empty, cfg)
