"""Autoencoder-based imputers: MIDAE, VAEI, MIWAE, EDDI, HIVAE."""

import numpy as np
import pytest

from repro.data import IncompleteDataset, holdout_split
from repro.models import (
    EDDIImputer,
    HIVAEImputer,
    MeanImputer,
    MIDAEImputer,
    MIWAEImputer,
    VAEImputer,
)

ALL_AE = [
    ("midae", lambda: MIDAEImputer(epochs=30, seed=0)),
    ("vaei", lambda: VAEImputer(epochs=40, seed=0)),
    ("miwae", lambda: MIWAEImputer(epochs=80, n_importance=4, seed=0)),
    ("eddi", lambda: EDDIImputer(epochs=120, seed=0)),
    ("hivae", lambda: HIVAEImputer(epochs=120, seed=0)),
]


@pytest.fixture
def case(small_incomplete, rng):
    return holdout_split(small_incomplete, 0.2, rng)


@pytest.mark.parametrize("name,factory", ALL_AE, ids=[n for n, _ in ALL_AE])
class TestAutoencoderContract:
    def test_fit_transform_shape_and_no_nan(self, case, name, factory):
        imputed = factory().fit_transform(case.train)
        assert imputed.shape == case.train.shape
        assert not np.isnan(imputed).any()

    def test_observed_cells_untouched(self, case, name, factory):
        imputed = factory().fit_transform(case.train)
        observed = case.train.mask == 1.0
        assert np.allclose(
            imputed[observed], np.nan_to_num(case.train.values)[observed]
        )

    def test_unfitted_raises(self, case, name, factory):
        with pytest.raises(RuntimeError):
            factory().transform(case.train)

    def test_reconstruct_new_rows(self, case, name, factory):
        model = factory()
        model.epochs = 2
        model.fit(case.train)
        out = model.reconstruct(case.train.values[:5], case.train.mask[:5])
        assert out.shape == (5, case.train.n_features)


class TestTrainingImproves:
    @pytest.mark.parametrize(
        "factory",
        [f for _, f in ALL_AE],
        ids=[n for n, _ in ALL_AE],
    )
    def test_competitive_with_mean(self, case, factory):
        """Trained AE imputers should land in the mean-imputer ballpark or better."""
        rmse = case.rmse(factory().fit_transform(case.train))
        mean_rmse = case.rmse(MeanImputer().fit_transform(case.train))
        assert rmse < mean_rmse * 1.3

    def test_midae_beats_untrained(self, case):
        trained = MIDAEImputer(epochs=40, seed=0)
        untrained = MIDAEImputer(epochs=0, seed=0)
        rmse_trained = case.rmse(trained.fit_transform(case.train))
        # epochs=0 leaves random weights; imputation should be worse.
        untrained._column_means = np.zeros(case.train.n_features)
        untrained._build(case.train.n_features)
        untrained._fitted = True
        rmse_untrained = case.rmse(untrained.transform(case.train))
        assert rmse_trained < rmse_untrained


class TestMIDAESpecifics:
    def test_multiple_imputation_is_average(self, case):
        model = MIDAEImputer(epochs=5, n_imputations=1, seed=0)
        imputed_once = model.fit_transform(case.train)
        model.n_imputations = 20
        imputed_many = model.transform(case.train)
        # More imputations smooth the dropout noise; values stay in range.
        assert imputed_many.shape == imputed_once.shape


class TestMIWAESpecifics:
    def test_importance_weights_normalised(self, case, rng):
        model = MIWAEImputer(epochs=3, n_importance=4, seed=0)
        model.fit(case.train)
        out = model.reconstruct(case.train.values[:10], case.train.mask[:10])
        assert np.isfinite(out).all()

    def test_single_importance_sample_ok(self, case):
        model = MIWAEImputer(epochs=2, n_importance=1, seed=0)
        assert not np.isnan(model.fit_transform(case.train)).any()


class TestHIVAESpecifics:
    def test_binary_columns_get_probabilities(self, rng):
        values = np.column_stack(
            [rng.normal(size=100), (rng.random(100) > 0.5).astype(float)]
        )
        values[rng.random(values.shape) < 0.3] = np.nan
        ds = IncompleteDataset(values, feature_types=["continuous", "binary"])
        model = HIVAEImputer(epochs=10, seed=0)
        model.fit(ds)
        recon = model.reconstruct(ds.values, ds.mask)
        assert (recon[:, 1] >= 0).all() and (recon[:, 1] <= 1).all()

    def test_defaults_to_no_binary_columns(self, case):
        model = HIVAEImputer(epochs=2, seed=0)
        model._build(case.train.n_features)
        assert not model._binary_columns.any()


class TestEDDISpecifics:
    def test_set_encoder_ignores_missing_cells(self, rng):
        """Two rows identical on observed cells but different at missing ones
        must encode identically (the encoder only sees observed cells)."""
        model = EDDIImputer(epochs=1, seed=0)
        model._column_means = np.zeros(3)
        model._build(3)
        x = np.array([[1.0, 2.0, 999.0], [1.0, 2.0, -999.0]])
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        filled = x * mask  # missing slots carry junk that the mask hides
        mean_a, _ = model._encode_set(filled, mask)
        assert np.allclose(mean_a.data[0], mean_a.data[1])
