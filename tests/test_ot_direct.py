"""Differential tests for OT-direct imputation (`SinkhornImputer`).

The suite pins the new model against its reference points: DIM on the same
smoke dataset (RMSE tolerance), the loop solver against the batched stack
(bit parity), serial execution against the fork pool (bit parity through the
shared harness), and analytic against numerical gradients on the
imputed-cell leaf parameters.
"""

import numpy as np
import pytest

from repro.bench.runner import prepare_case
from repro.core.dim import DimConfig, DimImputer
from repro.data import IncompleteDataset
from repro.models import GAINImputer, MeanImputer, SinkhornImputer, make_imputer
from repro.obs import recording
from repro.parallel import ExecutionContext
from repro.parallel.testing import assert_backend_parity
from repro.serve.registry import ModelRegistry
from repro.tensor import check_gradients


def _fast(seed=0, **overrides):
    """A quick-converging configuration for unit-level checks."""
    kwargs = dict(epochs=8, batch_size=16, mlp_epochs=3, seed=seed)
    kwargs.update(overrides)
    return SinkhornImputer(**kwargs)


@pytest.fixture
def tiny(rng):
    """A 64x5 correlated incomplete matrix in [0, 1]."""
    n, d = 64, 5
    latent = rng.normal(size=(n, 2))
    full = latent @ rng.normal(size=(2, d))
    full = (full - full.min(axis=0)) / (full.max(axis=0) - full.min(axis=0))
    mask = (rng.random((n, d)) > 0.3).astype(float)
    values = full.copy()
    values[mask == 0.0] = np.nan
    return IncompleteDataset(values, name="tiny")


class TestImputerContract:
    def test_fit_impute_shape_and_completeness(self, tiny):
        out = _fast().fit_impute(tiny)
        assert out.shape == tiny.values.shape
        assert np.isfinite(out).all()

    def test_observed_cells_byte_identical(self, tiny):
        out = _fast().fit_impute(tiny)
        observed = tiny.mask == 1.0
        assert np.array_equal(out[observed], tiny.values[observed])

    def test_transform_matches_fit_impute_on_training_data(self, tiny):
        model = _fast()
        direct = model.fit_impute(tiny)
        assert np.array_equal(model.transform(tiny), direct)

    def test_unfitted_raises(self, tiny):
        with pytest.raises(RuntimeError):
            _fast().transform(tiny)

    def test_generator_before_build_raises(self):
        with pytest.raises(RuntimeError):
            _fast().generator

    def test_out_of_sample_rows_use_the_mlp(self, tiny):
        model = _fast()
        model.fit(tiny)
        fresh = IncompleteDataset(
            np.array([[np.nan, 0.4, np.nan, 0.9, 0.1]]), name="fresh"
        )
        out = model.transform(fresh)
        assert np.isfinite(out).all()
        assert out[0, 1] == 0.4  # observed cells still pass through

    def test_without_mlp_out_of_sample_falls_back_to_column_means(self, tiny):
        model = _fast(fit_mlp=False)
        model.fit(tiny)
        fresh = IncompleteDataset(
            np.array([[np.nan, 0.4, np.nan, 0.9, 0.1]]), name="fresh"
        )
        out = model.transform(fresh)
        means = np.nanmean(tiny.values, axis=0)
        assert out[0, 0] == pytest.approx(means[0])

    def test_complete_matrix_is_a_no_op(self, rng):
        values = rng.random((16, 3))
        dataset = IncompleteDataset(values, name="complete")
        out = _fast().fit_impute(dataset)
        assert np.array_equal(out, values)

    def test_too_few_rows_raises(self):
        dataset = IncompleteDataset(np.array([[1.0, np.nan], [0.5, 0.2]]))
        with pytest.raises(ValueError, match="at least 4 rows"):
            _fast().fit(dataset)

    def test_ctor_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            SinkhornImputer(epochs=0)
        with pytest.raises(ValueError, match="batch_size"):
            SinkhornImputer(batch_size=1)
        with pytest.raises(ValueError, match="pairs_per_round"):
            SinkhornImputer(pairs_per_round=0)
        with pytest.raises(ValueError, match="policy"):
            SinkhornImputer(on_divergence="explode")

    def test_registered_by_name(self):
        model = make_imputer("otdirect", epochs=2)
        assert isinstance(model, SinkhornImputer)
        assert model.name == "otdirect"

    def test_adversarial_step_is_a_no_op(self, tiny, rng):
        model = _fast()
        model.fit(tiny)
        assert model.adversarial_step(tiny.values, tiny.mask, rng) == {}


class TestDifferentialVsDim:
    def test_rmse_within_tolerance_of_dim_on_smoke_case(self):
        """OT-direct must land in the same quality band as DIM-trained GAIN."""
        case = prepare_case("trial", n_samples=96, seed=0)
        dim = DimImputer(
            GAINImputer(epochs=2, seed=0),
            config=DimConfig(
                epochs=2, batch_size=32, sinkhorn_max_iter=50, use_adversarial=False
            ),
            seed=0,
        )
        ot = SinkhornImputer(
            epochs=20, batch_size=32, sinkhorn_max_iter=50, mlp_epochs=2, seed=0
        )
        dim_rmse = case.holdout.rmse(dim.fit_transform(case.train))
        ot_rmse = case.holdout.rmse(ot.fit_transform(case.train))
        assert ot_rmse <= dim_rmse + 0.1
        # and it must genuinely descend: better than untrained initialisation
        mean_rmse = case.holdout.rmse(MeanImputer().fit_transform(case.train))
        assert ot_rmse < mean_rmse + 0.05

    def test_loss_decreases_over_training(self, tiny):
        model = _fast(epochs=12)
        model.fit(tiny)
        losses = model.report.losses
        assert len(losses) == 12
        assert losses[-1] < losses[0]


def _assert_solver_parity(a, b):
    """Bit parity on the NumPy backend; the repo-wide 1e-8 bound elsewhere.

    The stacked and loop solvers are bit-identical under NumPy (the CI
    backend-matrix job also runs this file under ``array_api_strict``,
    where last-bit reduction order may differ — the same tolerance
    `tests/test_ot_batched.py` uses).
    """
    from repro.tensor.backend import get_backend

    if get_backend().name == "numpy":
        assert np.array_equal(a, b)
    else:
        np.testing.assert_allclose(a, b, atol=1e-8)


class TestSolveParity:
    def test_loop_vs_batched_parity(self, tiny):
        batched = _fast(batched=True).fit_impute(tiny)
        looped = _fast(batched=False).fit_impute(tiny)
        _assert_solver_parity(batched, looped)

    def test_loop_vs_batched_parity_without_warm_start(self, tiny):
        batched = _fast(batched=True, warm_start=False).fit_impute(tiny)
        looped = _fast(batched=False, warm_start=False).fit_impute(tiny)
        _assert_solver_parity(batched, looped)

    def test_round_robin_schedule_covers_all_ordered_pairs(self):
        model = SinkhornImputer()
        for n_batches in (2, 3, 5):
            seen = set()
            for round_index in range(n_batches - 1):
                pairs = model._round_pairs(round_index, n_batches)
                assert len(pairs) == n_batches
                for i, j in pairs:
                    assert i != j
                    seen.add((i, j))
            assert seen == {
                (i, j) for i in range(n_batches) for j in range(n_batches) if i != j
            }

    def test_pairs_per_round_caps_the_schedule(self):
        model = SinkhornImputer(pairs_per_round=2)
        assert len(model._round_pairs(0, 6)) == 2


class TestParallelParity:
    @pytest.mark.parallel
    def test_pair_task_parity_through_shared_harness(self, tiny):
        """The per-pair (loss, grad, duals) tasks are backend-invariant."""

        def tasks_factory():
            model = _fast()
            model._prepare(tiny, np.random.default_rng(model.seed))
            pairs = model._round_pairs(0, len(model._batch_indices))
            return model._make_pair_tasks(pairs)

        assert_backend_parity(tasks_factory, label="otdirect.pairs")

    @pytest.mark.parallel
    def test_whole_fit_serial_vs_fork_bit_parity(self, tiny):
        serial = _fast(context=ExecutionContext("serial")).fit_impute(tiny)
        forked = _fast(context=ExecutionContext("process", workers=2)).fit_impute(tiny)
        assert np.array_equal(serial, forked)


class TestGradcheck:
    def test_imputed_cell_gradients_match_finite_differences(self, tiny):
        """Gradcheck the envelope-theorem loss at the cell leaf parameters.

        The plans are held fixed (exactly what `_assemble_divergence` does),
        so the assembled divergence is a smooth function of the cells and
        central differences must match the analytic gradient.
        """
        model = _fast()
        model._prepare(tiny, np.random.default_rng(0))
        index_i, index_j = model._batch_indices[0], model._batch_indices[1]
        from repro.ot.cost import squared_euclidean_cost
        from repro.ot.divergence import _solve_stack
        from repro.tensor import no_grad

        with no_grad():
            x_i = model._gather(model._cells, index_i).data
            x_j = model._gather(model._cells, index_j).data
            results = _solve_stack(
                [
                    squared_euclidean_cost(x_i, x_j),
                    squared_euclidean_cost(x_i, x_i),
                    squared_euclidean_cost(x_j, x_j),
                ],
                model._sinkhorn_config,
                batched=True,
            )
        plans = (results[0].plan, results[1].plan, results[2].plan)
        check_gradients(
            lambda cells: model._assemble_divergence(cells, index_i, index_j, plans),
            [model._cells],
            atol=1e-6,
            rtol=1e-4,
        )


class TestRegistryRoundTrip:
    def test_save_load_impute_bit_identity(self, tiny, tmp_path):
        model = _fast()
        model.fit(tiny)
        registry = ModelRegistry(tmp_path / "registry")
        entry = registry.save(model, dataset=tiny)  # validate=True probes it
        loaded = registry.load(entry.key)
        fresh = IncompleteDataset(
            np.array(
                [
                    [np.nan, 0.4, np.nan, 0.9, 0.1],
                    [0.2, np.nan, 0.5, np.nan, np.nan],
                ]
            ),
            name="fresh",
        )
        ours = model.transform(fresh)
        theirs = loaded.model.transform(fresh)
        assert np.array_equal(ours, theirs)

    def test_transductive_only_model_is_not_persistable(self, tiny, tmp_path):
        from repro.serve.registry import RegistryError

        model = _fast(fit_mlp=False)
        model.fit(tiny)
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises((RegistryError, RuntimeError)):
            registry.save(model, dataset=tiny)


class _NanLossImputer(SinkhornImputer):
    """Deterministically injects a NaN round loss to exercise the watchdog."""

    def _pair_step(self, index_i, index_j, key):
        loss, grad, duals = super()._pair_step(index_i, index_j, key)
        return float("nan"), grad, duals


class TestHealthPolicy:
    def test_halt_policy_stops_training(self, tiny):
        model = _NanLossImputer(
            epochs=10, batch_size=16, seed=0, fit_mlp=False, on_divergence="halt"
        )
        model.fit(tiny)
        assert model.report.halted
        assert model.report.rounds == 1
        assert model.health_verdict == "nan"

    def test_warn_policy_keeps_going(self, tiny):
        model = _NanLossImputer(
            epochs=5, batch_size=16, seed=0, fit_mlp=False, on_divergence="warn"
        )
        model.fit(tiny)
        assert not model.report.halted
        assert model.report.rounds == 5
        assert model.health_verdict == "nan"


class TestTelemetry:
    def test_otdirect_events_fire_under_recording(self, tiny):
        with recording() as records:
            _fast().fit(tiny)
        names = {event.name for event in records.events}
        assert "otdirect.round" in names
        assert "otdirect.fit" in names
        assert "otdirect.mlp_epoch" in names
        fit_events = [e for e in records.events if e.name == "otdirect.fit"]
        assert fit_events[0].fields["rounds"] == 8
        assert fit_events[0].fields["health_verdict"] == "healthy"

    def test_fit_is_silent_without_a_recorder(self, tiny):
        # The no-op recorder contract: no events, no errors, same answer.
        silent = _fast().fit_impute(tiny)
        with recording():
            recorded = _fast().fit_impute(tiny)
        assert np.array_equal(silent, recorded)
