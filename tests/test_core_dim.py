"""DIM module: MS-divergence training of GAN imputers."""

import numpy as np
import pytest

from repro.core import DIM, DimConfig
from repro.data import holdout_split
from repro.models import GAINImputer, MeanImputer
from repro.nn import flatten_parameters


@pytest.fixture
def case(small_incomplete, rng):
    return holdout_split(small_incomplete, 0.2, rng)


class TestDimTraining:
    def test_builds_unbuilt_model(self, case, rng):
        model = GAINImputer(seed=0)
        DIM(DimConfig(epochs=1)).train(model, case.train, rng)
        assert model.generator.num_parameters() > 0

    def test_marks_model_fitted(self, case, rng):
        model = GAINImputer(seed=0)
        DIM(DimConfig(epochs=1)).train(model, case.train, rng)
        imputed = model.transform(case.train)
        assert not np.isnan(imputed).any()

    def test_parameters_move(self, case, rng):
        model = GAINImputer(seed=0)
        model.build(case.train.n_features)
        before = flatten_parameters(model.generator).copy()
        DIM(DimConfig(epochs=1)).train(model, case.train, rng)
        assert not np.allclose(before, flatten_parameters(model.generator))

    def test_loss_decreases_over_training(self, case, rng):
        model = GAINImputer(seed=0)
        report = DIM(DimConfig(epochs=25)).train(model, case.train, rng)
        early = np.mean(report.ms_losses[:5])
        late = np.mean(report.ms_losses[-5:])
        assert late < early

    def test_report_counts_steps(self, case, rng):
        config = DimConfig(epochs=3, batch_size=128)
        report = DIM(config).train(GAINImputer(seed=0), case.train, rng)
        batches_per_epoch = int(np.ceil(case.train.n_samples / 128))
        assert report.steps == 3 * batches_per_epoch
        assert report.seconds > 0
        assert report.final_ms_loss == report.ms_losses[-1]

    def test_epochs_override(self, case, rng):
        config = DimConfig(epochs=10)
        report = DIM(config).train(GAINImputer(seed=0), case.train, rng, epochs=1)
        assert report.epochs == 1

    def test_dim_beats_mean(self, case, rng):
        model = GAINImputer(seed=0)
        DIM(DimConfig(epochs=40)).train(model, case.train, rng)
        dim_rmse = case.rmse(model.transform(case.train))
        mean_rmse = case.rmse(MeanImputer().fit_transform(case.train))
        assert dim_rmse < mean_rmse

    def test_pure_ms_loss_without_adversarial(self, case, rng):
        config = DimConfig(epochs=5, use_adversarial=False)
        model = GAINImputer(seed=0)
        report = DIM(config).train(model, case.train, rng)
        assert report.steps > 0
        assert np.isfinite(report.ms_losses).all()

    def test_no_rec_weight(self, case, rng):
        config = DimConfig(epochs=2, rec_weight=0.0)
        report = DIM(config).train(GAINImputer(seed=0), case.train, rng)
        assert np.isfinite(report.ms_losses).all()

    def test_single_row_batches_skipped(self, rng):
        from repro.data import IncompleteDataset

        tiny = IncompleteDataset(np.array([[0.5, np.nan], [np.nan, 0.2], [0.1, 0.9]]))
        config = DimConfig(epochs=2, batch_size=2)
        report = DIM(config).train(GAINImputer(seed=0), tiny, rng)
        # batches of size 2 run; the trailing singleton is skipped
        assert report.steps == 2


class TestSinkhornCaching:
    """The acceleration layer must not change what DIM learns."""

    def _config(self, **overrides):
        base = dict(
            epochs=3,
            batch_size=64,
            use_adversarial=False,
            reg=1.0,
            sinkhorn_tol=1e-9,
            sinkhorn_max_iter=2000,
            fixed_batch_order=True,  # identical batch sequences in both runs
        )
        base.update(overrides)
        return DimConfig(**base)

    def test_cached_epoch_means_match_uncached(self, case):
        def run(cached):
            config = self._config(
                sinkhorn_warm_start=cached, sinkhorn_cache_self_terms=cached
            )
            model = GAINImputer(seed=0)
            return DIM(config).train(model, case.train, np.random.default_rng(7))

        uncached = run(False)
        cached = run(True)
        steps_per_epoch = uncached.steps // uncached.epochs
        off = np.array(uncached.ms_losses).reshape(uncached.epochs, steps_per_epoch)
        on = np.array(cached.ms_losses).reshape(cached.epochs, steps_per_epoch)
        assert np.abs(off.mean(axis=1) - on.mean(axis=1)).max() < 1e-6

    def test_selfterm_cache_and_warm_starts_counted(self, case):
        from repro.obs import recording

        model = GAINImputer(seed=0)
        with recording() as rec:
            report = DIM(self._config()).train(
                model, case.train, np.random.default_rng(0)
            )
        counters = rec.metrics.snapshot()["counters"]
        steps_per_epoch = report.steps // report.epochs
        # The data self-term is solved once per batch, then cached.
        assert counters["sinkhorn.selfterm_cache_hits"] == steps_per_epoch * (
            report.epochs - 1
        )
        # From epoch 2 on, the cross and generated-self solves warm-start.
        assert counters["sinkhorn.warm_starts"] == 2 * steps_per_epoch * (
            report.epochs - 1
        )

    def test_warm_start_reduces_iterations_after_first_epoch(self, case):
        from repro.obs import recording

        def iterations_per_epoch(cached):
            config = self._config(
                sinkhorn_warm_start=cached, sinkhorn_cache_self_terms=cached
            )
            model = GAINImputer(seed=0)
            with recording() as rec:
                DIM(config).train(model, case.train, np.random.default_rng(0))
            per_epoch, epoch = {}, 0
            for event in rec.events:
                # DIM defaults to the stacked solver; both event kinds carry
                # the stack's total iteration count in "iterations".
                if event.name in ("sinkhorn.solve", "sinkhorn.batched_solve"):
                    per_epoch[epoch] = per_epoch.get(epoch, 0) + event.fields["iterations"]
                elif event.name == "dim.epoch":
                    epoch += 1
            return per_epoch

        cold = iterations_per_epoch(False)
        warm = iterations_per_epoch(True)
        assert sum(warm[e] for e in warm if e >= 1) < sum(
            cold[e] for e in cold if e >= 1
        )

    def test_caches_reset_between_training_runs(self, case, rng):
        from repro.data import IncompleteDataset

        dim = DIM(self._config(epochs=1))
        dim.train(GAINImputer(seed=0), case.train, rng)
        first_keys = set(dim._loss._self_terms)
        assert first_keys
        other = IncompleteDataset(case.train.values[:65], name="other")
        dim.train(GAINImputer(seed=1), other, rng)
        # Stale keys from the first dataset must not survive into the second:
        # 65 rows → one 64-row batch plus a skipped singleton → exactly 1 key.
        assert len(dim._loss._self_terms) == 1


class TestDimImputer:
    def test_full_data_dim_wrapper(self, case, rng):
        from repro.core import DimConfig, DimImputer
        from repro.models import GAINImputer

        wrapper = DimImputer(GAINImputer(seed=0), DimConfig(epochs=2), seed=0)
        imputed = wrapper.fit_transform(case.train)
        assert imputed.shape == case.train.shape
        assert wrapper.sample_rate == 1.0
        assert wrapper.name == "dim-gain"
        assert wrapper.report is not None

    def test_fixed_fraction_variant(self, case):
        from repro.core import DimConfig, DimImputer
        from repro.models import GAINImputer

        wrapper = DimImputer(
            GAINImputer(seed=0), DimConfig(epochs=2), subsample_fraction=0.25, seed=0
        )
        wrapper.fit(case.train)
        assert wrapper.sample_rate == 0.25
        assert wrapper.name == "fixed-dim-gain"

    def test_invalid_fraction_raises(self):
        import pytest as _pytest

        from repro.core import DimImputer
        from repro.models import GAINImputer

        with _pytest.raises(ValueError):
            DimImputer(GAINImputer(), subsample_fraction=0.0)
        with _pytest.raises(ValueError):
            DimImputer(GAINImputer(), subsample_fraction=1.5)
