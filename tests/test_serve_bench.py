"""Serving bench: baseline shape, gated metrics, diff-flow compatibility."""

import numpy as np
import pytest

from repro.bench.baselines import diff_baselines, load_baseline
from repro.bench.serving import run_serving_bench

GATED = (
    "serving.burst_batches",
    "serving.burst_uncoalesced",
    "serving.correctness_failures",
    "serving.errors",
    "serving.p95_over_p50",
)
TIMED = (
    "serving.latency_p50_seconds",
    "serving.latency_p95_seconds",
    "serving.latency_p99_seconds",
    "serving.seconds_per_1k_rows",
)


@pytest.fixture(scope="module")
def bench_result():
    # One tiny run shared by every assertion in this module.
    return run_serving_bench(
        n_samples=48,
        epochs=1,
        burst=4,
        clients=2,
        requests_per_client=2,
        bulk_rows=8,
    )


class TestServingBench:
    def test_baseline_shape(self, bench_result):
        baseline = bench_result.baseline
        assert baseline["kind"] == "bench-baseline"
        assert baseline["name"] == "serving"
        for name in GATED + TIMED:
            assert name in baseline["metrics"], name

    def test_correctness_and_errors_are_zero(self, bench_result):
        metrics = bench_result.baseline["metrics"]
        assert metrics["serving.correctness_failures"] == 0.0
        assert metrics["serving.errors"] == 0.0

    def test_burst_fully_coalesces(self, bench_result):
        metrics = bench_result.baseline["metrics"]
        # All burst requests were queued before the dispatcher started, so
        # they coalesce into one dispatch and none miss the big batch.
        assert metrics["serving.burst_batches"] == 1.0
        assert metrics["serving.burst_uncoalesced"] == 0.0

    def test_trace_contains_serve_events(self, bench_result):
        events = bench_result.trace["events"]
        batches = [e for e in events if e["name"] == "serve.batch"]
        assert batches, "bench trace must contain serve.batch events"
        # The acceptance criterion: queue batching visibly coalesced >1
        # request into one model invocation.
        assert max(e["fields"]["n_requests"] for e in batches) > 1

    def test_workload_bookkeeping(self, bench_result):
        assert bench_result.n_requests == 4 + 2 * 2 + 1
        assert bench_result.n_rows == 4 + 2 * 2 + 8
        assert bench_result.dim_key.startswith("dim-gain-")
        assert bench_result.mean_key.startswith("mean-")
        assert np.isfinite(
            [bench_result.baseline["metrics"][n] for n in TIMED]
        ).all()

    def test_p95_over_p50_is_a_sane_ratio(self, bench_result):
        metrics = bench_result.baseline["metrics"]
        ratio = metrics["serving.p95_over_p50"]
        assert ratio >= 1.0  # p95 can never undercut p50
        assert np.isclose(
            ratio,
            metrics["serving.latency_p95_seconds"]
            / metrics["serving.latency_p50_seconds"],
        )

    def test_self_diff_is_clean(self, bench_result):
        deltas = diff_baselines(
            bench_result.baseline, bench_result.baseline, time_threshold=1e9
        )
        assert deltas
        assert not any(d.regressed for d in deltas)

    def test_committed_baseline_matches_current_schema(self, bench_result):
        import repro

        root = __import__("pathlib").Path(repro.__file__).resolve().parent.parent.parent
        committed = load_baseline(root / "BENCH_serving.json")
        assert committed["name"] == "serving"
        assert set(committed["metrics"]) == set(bench_result.baseline["metrics"])
