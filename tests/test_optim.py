"""Optimizer correctness: descent on quadratics and a regression task."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter, mse_loss
from repro.optim import SGD, Adam, Optimizer, RMSprop
from repro.tensor import Tensor


def _quadratic_steps(optimizer_factory, steps=200):
    """Minimise ||theta - target||^2; return the final parameter."""
    theta = Parameter(np.array([5.0, -3.0]))
    target = Tensor(np.array([1.0, 2.0]))
    optimizer = optimizer_factory([theta])
    for _ in range(steps):
        optimizer.zero_grad()
        diff = theta - target
        (diff * diff).sum().backward()
        optimizer.step()
    return theta.data


class TestDescent:
    def test_sgd_converges(self):
        final = _quadratic_steps(lambda p: SGD(p, lr=0.1))
        assert np.allclose(final, [1.0, 2.0], atol=1e-4)

    def test_sgd_momentum_converges(self):
        final = _quadratic_steps(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert np.allclose(final, [1.0, 2.0], atol=1e-3)

    def test_adam_converges(self):
        final = _quadratic_steps(lambda p: Adam(p, lr=0.1), steps=400)
        assert np.allclose(final, [1.0, 2.0], atol=1e-3)

    def test_rmsprop_converges(self):
        final = _quadratic_steps(lambda p: RMSprop(p, lr=0.05), steps=400)
        assert np.allclose(final, [1.0, 2.0], atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        no_decay = _quadratic_steps(lambda p: SGD(p, lr=0.1))
        decayed = _quadratic_steps(lambda p: SGD(p, lr=0.1, weight_decay=1.0))
        assert np.linalg.norm(decayed) < np.linalg.norm(no_decay)

    def test_adam_weight_decay(self):
        decayed = _quadratic_steps(lambda p: Adam(p, lr=0.1, weight_decay=1.0), steps=400)
        assert np.linalg.norm(decayed) < np.linalg.norm([1.0, 2.0])


class TestRegressionFit:
    def test_linear_layer_fits_least_squares(self, rng):
        x = rng.normal(size=(200, 3))
        w_true = np.array([[1.0], [-2.0], [0.5]])
        y = x @ w_true + 0.3
        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(layer(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
        assert np.allclose(layer.weight.data, w_true, atol=0.05)
        assert layer.bias.data[0] == pytest.approx(0.3, abs=0.05)


class TestValidation:
    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_positive_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.0)

    def test_base_step_not_implemented(self):
        opt = Optimizer([Parameter(np.zeros(2))], lr=0.1)
        with pytest.raises(NotImplementedError):
            opt.step()

    def test_step_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad accumulated; must not crash or move
        assert p.data[0] == 1.0
