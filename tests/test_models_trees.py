"""Tree substrate: CART, random forest, AdaBoost.R2."""

import numpy as np
import pytest

from repro.models import AdaBoostRegressor, DecisionTreeRegressor, RandomForestRegressor


class TestDecisionTree:
    def test_fits_step_function_exactly(self, rng):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 3.0
        tree = DecisionTreeRegressor(max_depth=2, rng=rng).fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_constant_target_single_leaf(self, rng):
        x = rng.normal(size=(50, 3))
        y = np.full(50, 2.5)
        tree = DecisionTreeRegressor(rng=rng).fit(x, y)
        assert np.allclose(tree.predict(x), 2.5)
        assert tree._root.is_leaf

    def test_max_depth_limits_tree(self, rng):
        x = rng.normal(size=(200, 1))
        y = np.sin(5 * x[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1, rng=rng).fit(x, y)
        assert len(np.unique(shallow.predict(x))) <= 2

    def test_min_samples_leaf_respected(self, rng):
        x = rng.normal(size=(20, 1))
        y = rng.normal(size=20)
        tree = DecisionTreeRegressor(min_samples_leaf=10, rng=rng).fit(x, y)

        def smallest_leaf(node, x_subset, y_subset):
            if node.is_leaf:
                return len(y_subset)
            go_left = x_subset[:, node.feature] <= node.threshold
            return min(
                smallest_leaf(node.left, x_subset[go_left], y_subset[go_left]),
                smallest_leaf(node.right, x_subset[~go_left], y_subset[~go_left]),
            )

        assert smallest_leaf(tree._root, x, y) >= 10

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))

    def test_bad_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(rng=rng).fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_fit_raises(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(rng=rng).fit(np.zeros((0, 2)), np.zeros(0))

    def test_reduces_error_vs_mean(self, rng):
        x = rng.normal(size=(300, 2))
        y = x[:, 0] * 2 + np.abs(x[:, 1])
        tree = DecisionTreeRegressor(max_depth=6, rng=rng).fit(x, y)
        tree_mse = np.mean((tree.predict(x) - y) ** 2)
        mean_mse = np.var(y)
        assert tree_mse < 0.3 * mean_mse


class TestRandomForest:
    def test_generalises_on_noise(self, rng):
        x = rng.normal(size=(400, 3))
        y = x[:, 0] + 0.5 * rng.normal(size=400)
        x_test = rng.normal(size=(100, 3))
        y_test = x_test[:, 0]
        forest = RandomForestRegressor(n_trees=15, max_depth=6, rng=rng).fit(x, y)
        mse = np.mean((forest.predict(x_test) - y_test) ** 2)
        assert mse < np.var(y_test)

    def test_prediction_is_average_of_trees(self, rng):
        x = rng.normal(size=(100, 2))
        y = x[:, 0]
        forest = RandomForestRegressor(n_trees=5, rng=rng).fit(x, y)
        manual = np.mean([t.predict(x[:5]) for t in forest._trees], axis=0)
        assert np.allclose(forest.predict(x[:5]), manual)

    def test_invalid_n_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((2, 2)))


class TestAdaBoost:
    def test_fits_smooth_function(self, rng):
        x = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(x[:, 0])
        model = AdaBoostRegressor(n_estimators=20, max_depth=3, rng=rng).fit(x, y)
        mse = np.mean((model.predict(x) - y) ** 2)
        assert mse < 0.1 * np.var(y)

    def test_perfect_fit_stops_early(self, rng):
        x = np.array([[0.0], [1.0]] * 10)
        y = x[:, 0] * 2.0
        model = AdaBoostRegressor(n_estimators=50, rng=rng).fit(x, y)
        assert len(model._estimators) < 50

    def test_weighted_median_prediction_bounded(self, rng):
        x = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = AdaBoostRegressor(n_estimators=10, rng=rng).fit(x, y)
        predictions = model.predict(x)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            AdaBoostRegressor(n_estimators=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoostRegressor().predict(np.zeros((2, 2)))
