"""SCIS orchestrator: Algorithm 1 end-to-end."""

import numpy as np
import pytest

from repro.core import SCIS, DimConfig, ScisConfig
from repro.data import holdout_split
from repro.models import GAINImputer, GINNImputer, MeanImputer


@pytest.fixture
def case(small_incomplete, rng):
    return holdout_split(small_incomplete, 0.2, rng)


def _config(**overrides):
    base = dict(
        initial_size=80,
        validation_size=80,
        error_bound=0.02,
        dim=DimConfig(epochs=15),
        seed=0,
    )
    base.update(overrides)
    return ScisConfig(**base)


class TestScisConfig:
    def test_validation_defaults_to_initial(self):
        config = ScisConfig(initial_size=123)
        assert config.validation_size == 123

    def test_shared_knobs_propagate(self):
        config = ScisConfig(reg=7.0, error_bound=0.5, confidence=0.1, beta=0.05)
        assert config.dim.reg == 7.0
        assert config.sse.reg == 7.0
        assert config.sse.error_bound == 0.5
        assert config.sse.confidence == 0.1
        assert config.sse.beta == 0.05


class TestScisRun:
    def test_end_to_end(self, case):
        result = SCIS(GAINImputer(seed=0), _config()).fit_transform(case.train)
        assert result.imputed.shape == case.train.shape
        assert not np.isnan(result.imputed).any()
        assert 80 <= result.n_star <= case.train.n_samples
        assert 0 < result.sample_rate <= 1.0

    def test_observed_cells_untouched(self, case):
        result = SCIS(GAINImputer(seed=0), _config()).fit_transform(case.train)
        observed = case.train.mask == 1.0
        assert np.allclose(
            result.imputed[observed], np.nan_to_num(case.train.values)[observed]
        )

    def test_timings_recorded(self, case):
        result = SCIS(GAINImputer(seed=0), _config()).fit_transform(case.train)
        for key in ("initial_train", "sse", "retrain", "impute", "total"):
            assert key in result.timings
        assert result.total_seconds >= result.timings["initial_train"]

    def test_retrain_skipped_when_n_star_is_initial(self, case):
        config = _config(error_bound=10.0)  # everything passes at n0
        result = SCIS(GAINImputer(seed=0), config).fit_transform(case.train)
        assert result.n_star == 80
        assert result.retrain_report is None
        assert result.timings["retrain"] == 0.0

    def test_retrain_happens_for_tight_bound(self, case):
        config = _config(error_bound=0.003)
        result = SCIS(GAINImputer(seed=0), config).fit_transform(case.train)
        assert result.n_star > 80
        assert result.retrain_report is not None

    def test_oversized_split_raises(self, case):
        config = _config(initial_size=300, validation_size=300)
        with pytest.raises(ValueError):
            SCIS(GAINImputer(seed=0), config).fit_transform(case.train)

    def test_competitive_with_plain_gain(self, case):
        """SCIS should land close to (or better than) full-data GAIN."""
        scis_result = SCIS(
            GAINImputer(seed=0), _config(dim=DimConfig(epochs=30))
        ).fit_transform(case.train)
        gain = GAINImputer(epochs=30, seed=0)
        gain_rmse = case.rmse(gain.fit_transform(case.train))
        scis_rmse = case.rmse(scis_result.imputed)
        assert scis_rmse < gain_rmse * 1.25

    def test_beats_mean_imputation(self, case):
        result = SCIS(
            GAINImputer(seed=0), _config(dim=DimConfig(epochs=30))
        ).fit_transform(case.train)
        mean_rmse = case.rmse(MeanImputer().fit_transform(case.train))
        assert case.rmse(result.imputed) < mean_rmse

    def test_works_with_ginn(self, case):
        config = _config(dim=DimConfig(epochs=5))
        result = SCIS(GINNImputer(seed=0), config).fit_transform(case.train)
        assert not np.isnan(result.imputed).any()

    def test_reproducible_with_same_seed(self, case):
        result_a = SCIS(GAINImputer(seed=0), _config()).fit_transform(case.train)
        result_b = SCIS(GAINImputer(seed=0), _config()).fit_transform(case.train)
        assert result_a.n_star == result_b.n_star
        assert np.allclose(result_a.imputed, result_b.imputed)

    def test_chunked_imputation_matches_whole(self, case):
        config = _config()
        config.impute_chunk = 37  # force many chunks
        result = SCIS(GAINImputer(seed=0), config).fit_transform(case.train)
        assert not np.isnan(result.imputed).any()
