"""Scaling bench tier: curves, timeout cells, skips, snapshot schema."""

import numpy as np
import pytest

from repro.bench import (
    ScalingConfig,
    load_baseline,
    run_scaling_bench,
    snapshot_from_scaling,
    write_baseline,
)
from repro.bench.scaling import _run_curves


def tiny_config(**overrides):
    base = dict(
        dataset="trial",
        sizes=(150, 1200),
        time_budget=0.05,  # knn stays under at 150, blows through at 1200
        epochs=1,
        seed=0,
        sharded_rows=1200,
        shard_rows=256,
        scis_initial=30,
        method_names=("mean", "knn"),
    )
    base.update(overrides)
    return ScalingConfig(**base)


class TestCurves:
    def test_timeout_becomes_dash_cell(self):
        curves = _run_curves(tiny_config())
        knn = {p.n: p for p in curves["knn"]}
        assert not knn[150].timed_out and knn[150].measured
        assert knn[1200].timed_out  # the paper's "—"
        mean = {p.n: p for p in curves["mean"]}
        assert not any(p.timed_out for p in mean.values())
        assert all(np.isfinite(p.rmse) for p in mean.values())

    def test_sizes_after_timeout_are_skipped(self):
        curves = _run_curves(tiny_config(sizes=(150, 1200, 2400)))
        knn = {p.n: p for p in curves["knn"]}
        assert knn[1200].timed_out
        # 2400 was never run: either dead-skip or extrapolation skip.
        assert knn[2400].timed_out and not knn[2400].measured
        assert knn[2400].seconds is None

    def test_unknown_method_name_raises(self):
        with pytest.raises(ValueError, match="unknown scaling methods"):
            tiny_config(method_names=("mean", "nope")).methods()

    def test_empty_sizes_raises(self):
        with pytest.raises(ValueError, match="sizes"):
            run_scaling_bench(tiny_config(sizes=()))


class TestFullRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling_bench(tiny_config())

    def test_sse_comparison_recorded(self, result):
        sse = result.sse
        assert sse["n"] == 1200
        assert 0 < sse["n_star"] <= sse["n"]
        assert sse["seconds_full"] > 0 and sse["seconds_scis"] > 0
        assert sse["rmse_gap"] == pytest.approx(
            sse["rmse_scis"] - sse["rmse_full"]
        )

    def test_sharded_tier_recorded(self, result):
        sharded = result.sharded
        assert sharded["rows"] == 1200
        # O(shard + reservoir): far below materialising everything twice.
        assert sharded["peak_resident_rows"] < 2 * sharded["rows"]
        assert sharded["peak_resident_rows"] >= sharded["reservoir_rows"]
        assert sharded["seconds_total"] > 0

    def test_snapshot_schema_and_keys(self, result, tmp_path):
        snapshot = snapshot_from_scaling(result)
        path = write_baseline(snapshot, tmp_path / "BENCH_scaling.json")
        loaded = load_baseline(path)  # validates kind/version/metrics
        metrics = loaded["metrics"]
        assert metrics["timeout.knn.n1200"] == 1.0
        assert metrics["timeout.mean.n150"] == 0.0
        assert "rmse.mean.n150" in metrics
        assert "seconds.mean.n150" in metrics
        assert "rmse.knn.n1200" not in metrics  # timed out: no rmse cell
        assert "sse.seconds_ratio" in metrics
        assert "shard.peak_resident_rows" in metrics
        # The human-readable per-cell grid rides along.
        assert "curves" in loaded or "curves" in snapshot

    def test_format_renders_dash(self, result):
        text = result.format()
        assert "—" in text
        assert "sse:" in text and "sharded:" in text
