"""Out-of-core streaming and multiple imputation."""

import csv

import numpy as np
import pytest

from repro.core import DimConfig, ScisConfig
from repro.data import (
    CsvRowStream,
    IncompleteDataset,
    generate,
    impute_csv_streaming,
    read_csv,
    reservoir_sample,
    write_csv,
)
from repro.metrics import multiple_impute, pool_estimates, pooled_statistic
from repro.models import GAINImputer


@pytest.fixture
def csv_file(tmp_path):
    generated = generate("trial", n_samples=600, seed=0)
    path = tmp_path / "stream.csv"
    write_csv(generated.dataset, path)
    return path, generated.dataset


class TestCsvRowStream:
    def test_chunks_cover_all_rows(self, csv_file):
        path, dataset = csv_file
        stream = CsvRowStream(path, chunk_size=64)
        total = sum(values.shape[0] for values, _ in stream.chunks())
        assert total == dataset.n_samples

    def test_chunk_size_respected(self, csv_file):
        path, dataset = csv_file
        sizes = [v.shape[0] for v, _ in CsvRowStream(path, chunk_size=100).chunks()]
        assert all(size == 100 for size in sizes[:-1])
        assert sizes[-1] == dataset.n_samples % 100 or sizes[-1] == 100

    def test_values_match_full_read(self, csv_file):
        path, dataset = csv_file
        stream = CsvRowStream(path, chunk_size=97)
        streamed = np.vstack([values for values, _ in stream.chunks()])
        assert np.allclose(
            np.nan_to_num(streamed), np.nan_to_num(dataset.values), atol=1e-9
        )

    def test_mask_matches_nan(self, csv_file):
        path, _ = csv_file
        for values, mask in CsvRowStream(path, chunk_size=50).chunks():
            assert np.array_equal(mask == 0.0, np.isnan(values))

    def test_count_rows(self, csv_file):
        path, dataset = csv_file
        assert CsvRowStream(path).count_rows() == dataset.n_samples

    def test_observed_ranges(self, csv_file):
        path, dataset = csv_file
        minima, maxima = CsvRowStream(path).observed_ranges()
        with np.errstate(invalid="ignore"):
            assert np.allclose(minima, np.nanmin(dataset.values, axis=0), atol=1e-9)
            assert np.allclose(maxima, np.nanmax(dataset.values, axis=0), atol=1e-9)

    def test_restartable(self, csv_file):
        path, _ = csv_file
        stream = CsvRowStream(path, chunk_size=128)
        first = sum(v.shape[0] for v, _ in stream.chunks())
        second = sum(v.shape[0] for v, _ in stream.chunks())
        assert first == second

    def test_ragged_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3,4,5\n")
        with pytest.raises(ValueError):
            list(CsvRowStream(path).chunks())

    def test_invalid_chunk_size(self, csv_file):
        with pytest.raises(ValueError):
            CsvRowStream(csv_file[0], chunk_size=0)

    def test_empty_file_ranges_raise(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            CsvRowStream(path).observed_ranges()


class TestReservoirSample:
    def test_size_and_membership(self, csv_file, rng):
        path, dataset = csv_file
        sample = reservoir_sample(CsvRowStream(path, chunk_size=64), 50, rng)
        assert sample.shape == (50, dataset.n_features)

    def test_approximately_uniform(self, tmp_path, rng):
        # Rows are 0..999; the sample mean of row ids should be ~499.5.
        path = tmp_path / "ids.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id"])
            for i in range(1000):
                writer.writerow([i])
        sample = reservoir_sample(CsvRowStream(path, chunk_size=128), 300, rng)
        assert sample.mean() == pytest.approx(499.5, abs=60)

    def test_too_few_rows_raises(self, csv_file, rng):
        path, _ = csv_file
        with pytest.raises(ValueError):
            reservoir_sample(CsvRowStream(path), 10_000, rng)

    def test_invalid_size(self, csv_file, rng):
        with pytest.raises(ValueError):
            reservoir_sample(CsvRowStream(csv_file[0]), 0, rng)


class TestScan:
    def test_scan_matches_separate_passes(self, csv_file):
        path, dataset = csv_file
        result = CsvRowStream(path, chunk_size=97).scan()
        assert result.rows == dataset.n_samples
        with np.errstate(invalid="ignore"):
            assert np.allclose(result.minima, np.nanmin(dataset.values, axis=0))
            assert np.allclose(result.maxima, np.nanmax(dataset.values, axis=0))
        assert result.sample is None

    def test_scan_reservoir_matches_algorithm_r_reference(self, csv_file):
        path, _ = csv_file
        size = 100
        scanned = CsvRowStream(path, chunk_size=64).scan(
            sample_size=size, rng=np.random.default_rng(42)
        )
        # Inline algorithm R over the same rows with the same generator state.
        ref_rng = np.random.default_rng(42)
        reservoir, seen = [], 0
        for values, _ in CsvRowStream(path, chunk_size=64).chunks():
            for row in values:
                seen += 1
                if len(reservoir) < size:
                    reservoir.append(row)
                else:
                    slot = ref_rng.integers(0, seen)
                    if slot < size:
                        reservoir[slot] = row
        assert np.allclose(
            np.nan_to_num(scanned.sample), np.nan_to_num(np.stack(reservoir))
        )

    def test_oversized_reservoir_keeps_every_row(self, csv_file, rng):
        path, dataset = csv_file
        result = CsvRowStream(path).scan(sample_size=10_000, rng=rng)
        assert result.sample.shape == (dataset.n_samples, dataset.n_features)

    def test_sample_requires_rng(self, csv_file):
        with pytest.raises(ValueError, match="rng"):
            CsvRowStream(csv_file[0]).scan(sample_size=10)

    def test_invalid_sample_size(self, csv_file, rng):
        with pytest.raises(ValueError):
            CsvRowStream(csv_file[0]).scan(sample_size=0, rng=rng)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            CsvRowStream(path).scan()


class CountingStream(CsvRowStream):
    """Test double that counts how many times the file is re-read."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.passes = 0

    def chunks(self):
        self.passes += 1
        yield from super().chunks()


class TestStreamingImputation:
    def test_end_to_end(self, csv_file, tmp_path):
        path, dataset = csv_file
        out = tmp_path / "imputed.csv"
        config = ScisConfig(
            initial_size=60,
            validation_size=60,
            error_bound=0.05,
            dim=DimConfig(epochs=5),
            seed=0,
        )
        report = impute_csv_streaming(
            path, out, GAINImputer(epochs=5, seed=0), config, chunk_size=128
        )
        assert report.rows == dataset.n_samples
        assert 0 < report.sample_rate <= 1.0
        imputed = read_csv(out)
        assert imputed.shape == dataset.shape
        assert not np.isnan(imputed.values).any()
        # Observed cells survive the normalise/denormalise round trip.
        observed = dataset.mask == 1.0
        assert np.allclose(
            imputed.values[observed], dataset.values[observed], atol=1e-6
        )

    def _config(self):
        return ScisConfig(
            initial_size=60,
            validation_size=60,
            error_bound=0.05,
            dim=DimConfig(epochs=2),
            seed=0,
        )

    def test_exactly_two_passes(self, csv_file, tmp_path):
        path, _ = csv_file
        stream = CountingStream(path, chunk_size=128)
        impute_csv_streaming(
            stream, tmp_path / "out.csv", GAINImputer(epochs=2, seed=0), self._config()
        )
        # One combined pre-training scan + one imputation pass, nothing else.
        assert stream.passes == 2

    def test_stream_instance_matches_path_input(self, csv_file, tmp_path):
        path, _ = csv_file
        out_path = tmp_path / "by_path.csv"
        out_stream = tmp_path / "by_stream.csv"
        impute_csv_streaming(
            path, out_path, GAINImputer(epochs=2, seed=0), self._config(), chunk_size=128
        )
        impute_csv_streaming(
            CsvRowStream(path, chunk_size=128),
            out_stream,
            GAINImputer(epochs=2, seed=0),
            self._config(),
        )
        assert out_path.read_bytes() == out_stream.read_bytes()

    def test_small_file_raises_with_row_count_and_minimum(self, tmp_path):
        path = tmp_path / "tiny.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["a", "b"])
            for i in range(50):
                writer.writerow([i, i + 1])
        with pytest.raises(ValueError, match=r"only 50 data rows.*120"):
            impute_csv_streaming(
                path, tmp_path / "out.csv", GAINImputer(epochs=2, seed=0), self._config()
            )


class TestStreamingCorrectness:
    """Regression tests for the streaming-pipeline bug fixes."""

    def _config(self):
        return ScisConfig(
            initial_size=60,
            validation_size=60,
            error_bound=0.05,
            dim=DimConfig(epochs=2),
            seed=0,
        )

    def _read_cells(self, path):
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        return rows[0], rows[1:]

    def test_observed_cells_byte_for_byte(self, csv_file, tmp_path):
        # Observed values must be written through verbatim, never through
        # the MinMaxNormalizer transform->inverse float round trip.
        path, dataset = csv_file
        out = tmp_path / "imputed.csv"
        impute_csv_streaming(
            path, out, GAINImputer(epochs=2, seed=0), self._config(), chunk_size=128
        )
        _, in_rows = self._read_cells(path)
        _, out_rows = self._read_cells(out)
        assert len(in_rows) == len(out_rows)
        observed_cells = 0
        for in_row, out_row in zip(in_rows, out_rows):
            for in_cell, out_cell in zip(in_row, out_row):
                if in_cell != "":  # observed in the input
                    assert out_cell == in_cell
                    observed_cells += 1
                else:  # missing: must now be filled
                    assert out_cell != ""
        assert observed_cells > 0

    @pytest.mark.parametrize("chunk_size", [1, 7, 4096])
    def test_output_invariant_to_chunk_size(self, csv_file, tmp_path, chunk_size):
        # Noise is addressed by absolute row index, so the streamed output
        # is a pure function of (input, model, config, seed) — the chunk
        # size must not leak into it.
        path, _ = csv_file
        reference = tmp_path / "reference.csv"
        impute_csv_streaming(
            path, reference, GAINImputer(epochs=2, seed=0), self._config(),
            chunk_size=128,
        )
        out = tmp_path / f"chunk{chunk_size}.csv"
        impute_csv_streaming(
            path, out, GAINImputer(epochs=2, seed=0), self._config(),
            chunk_size=chunk_size,
        )
        assert out.read_bytes() == reference.read_bytes()

    def test_header_of_empty_file_raises_value_error(self, tmp_path):
        # A bare StopIteration would escape (or corrupt a surrounding
        # generator); an empty file must be a ValueError naming the path.
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty.csv"):
            CsvRowStream(path).header

    def test_scan_of_zero_byte_file_raises_value_error(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            CsvRowStream(path).scan()

    def test_scan_of_header_only_file_mentions_no_data_rows(self, tmp_path):
        path = tmp_path / "header_only.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            CsvRowStream(path).scan()

    def test_constant_and_all_nan_columns_end_to_end(self, tmp_path):
        # Pin the ScanResult substitutions against MinMaxNormalizer.fit on
        # the same in-memory data: an all-NaN column scans to the (0, 1)
        # range and a constant column maps to 0.5 / inverts to the constant.
        rng = np.random.default_rng(0)
        n = 200
        values = rng.normal(size=(n, 4))
        values[:, 1] = 7.25  # constant column
        values[:, 2] = np.nan  # never observed
        values[rng.random(size=(n, 4)) < 0.2] = np.nan
        values[:, 3] = rng.normal(size=n)  # fully observed column
        path = tmp_path / "edge.csv"
        write_csv(IncompleteDataset(values.copy()), path)

        scan = CsvRowStream(path).scan()
        from repro.data import MinMaxNormalizer

        fitted = MinMaxNormalizer().fit(IncompleteDataset(values.copy()))
        assert np.allclose(scan.minima, fitted.minima)
        assert np.allclose(scan.maxima - scan.minima, fitted.ranges)
        assert scan.minima[2] == 0.0 and scan.maxima[2] == 1.0  # NaN->(0,1)

        out = tmp_path / "edge_imputed.csv"
        config = ScisConfig(
            initial_size=40,
            validation_size=40,
            error_bound=0.05,
            dim=DimConfig(epochs=2),
            seed=0,
        )
        impute_csv_streaming(
            path, out, GAINImputer(epochs=2, seed=0), config, chunk_size=64
        )
        imputed = read_csv(out)
        assert not np.isnan(imputed.values).any()
        # Compare against the input *as written* (the CSV's .10g cells),
        # which the pipeline must pass through exactly.
        written = read_csv(path).values
        observed = ~np.isnan(written)
        assert np.array_equal(imputed.values[observed], written[observed])
        # Constant column: every imputed cell inverts back to the constant.
        assert np.allclose(imputed.values[:, 1], 7.25)
        # All-NaN column: filled within its substituted (0, 1) range.
        assert np.all(imputed.values[:, 2] >= 0.0)
        assert np.all(imputed.values[:, 2] <= 1.0)


class TestMultipleImputation:
    @pytest.fixture
    def trained(self, small_incomplete):
        model = GAINImputer(epochs=5, seed=0)
        model.fit(small_incomplete)
        return model, small_incomplete

    def test_observed_identical_missing_vary(self, trained):
        model, dataset = trained
        draws = multiple_impute(model, dataset, m=3, seed=0)
        assert len(draws) == 3
        observed = dataset.mask == 1.0
        missing = ~observed.astype(bool)
        assert np.allclose(draws[0][observed], draws[1][observed])
        assert not np.allclose(draws[0][missing], draws[1][missing])

    def test_invalid_m(self, trained):
        model, dataset = trained
        with pytest.raises(ValueError):
            multiple_impute(model, dataset, m=0)

    def test_pool_estimates_hand_computed(self):
        pooled = pool_estimates([1.0, 2.0, 3.0], variances=[0.1, 0.1, 0.1])
        assert pooled.estimate == pytest.approx(2.0)
        assert pooled.within_variance == pytest.approx(0.1)
        assert pooled.between_variance == pytest.approx(1.0)
        assert pooled.total_variance == pytest.approx(0.1 + (1 + 1 / 3) * 1.0)
        low, high = pooled.confidence_interval()
        assert low < 2.0 < high

    def test_pool_without_within_variance(self):
        pooled = pool_estimates([1.0, 1.2])
        assert pooled.within_variance == 0.0
        assert pooled.total_variance > 0.0

    def test_pool_needs_two(self):
        with pytest.raises(ValueError):
            pool_estimates([1.0])

    def test_pool_variance_length_mismatch(self):
        with pytest.raises(ValueError):
            pool_estimates([1.0, 2.0], variances=[0.1])

    def test_pooled_statistic(self, trained):
        model, dataset = trained
        pooled = pooled_statistic(
            model, dataset, statistic=lambda imputed: float(imputed.mean()), m=3
        )
        assert pooled.m == 3
        assert np.isfinite(pooled.estimate)
        assert pooled.standard_error >= 0.0
