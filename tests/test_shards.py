"""Shard store: round trips, manifest statistics, scan parity, integrity."""

import json

import numpy as np
import pytest

from repro.data import (
    CsvRowStream,
    IncompleteDataset,
    MinMaxNormalizer,
    ShardStore,
    ShardWriter,
    generate,
    generate_sharded,
    write_csv,
    write_dataset_sharded,
)
from repro.data.shards import MANIFEST_NAME, combine_fingerprint


@pytest.fixture
def small_store(tmp_path):
    generated = generate("trial", n_samples=300, seed=1)
    store = write_dataset_sharded(
        generated.dataset, tmp_path / "store", shard_rows=97, labels=generated.labels
    )
    return store, generated


class TestRoundTrip:
    def test_values_and_schema_survive(self, small_store):
        store, generated = small_store
        back = store.to_dataset()
        assert np.array_equal(
            np.nan_to_num(back.values), np.nan_to_num(generated.dataset.values)
        )
        assert back.feature_names == generated.dataset.feature_names
        assert back.feature_types == generated.dataset.feature_types
        assert back.name == generated.dataset.name

    def test_labels_survive(self, small_store):
        store, generated = small_store
        assert np.array_equal(store.labels(), generated.labels)

    def test_shard_layout(self, small_store):
        store, generated = small_store
        assert store.rows == generated.dataset.n_samples
        assert store.n_shards == 4  # ceil(300 / 97)
        assert [info.rows for info in store.manifest.shards] == [97, 97, 97, 9]
        assert store.shard_offsets() == [0, 97, 194, 291]

    def test_mask_matches_nan(self, small_store):
        store, _ = small_store
        for _, values, mask in store.iter_shards():
            assert np.array_equal(mask == 0.0, np.isnan(values))

    def test_writer_incremental_appends(self, tmp_path):
        # Appending row-by-row and in one block must build identical stores.
        rng = np.random.default_rng(3)
        values = rng.normal(size=(57, 4))
        values[rng.random(size=values.shape) < 0.3] = np.nan
        with ShardWriter(tmp_path / "a", shard_rows=10) as writer:
            for row in values:
                writer.append(row[None, :])
        with ShardWriter(tmp_path / "b", shard_rows=10) as writer:
            writer.append(values)
        a, b = ShardStore(tmp_path / "a"), ShardStore(tmp_path / "b")
        assert a.manifest.fingerprint == b.manifest.fingerprint

    def test_writer_rejects_misshapen_input(self, tmp_path):
        writer = ShardWriter(tmp_path / "w", shard_rows=10)
        writer.append(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="columns"):
            writer.append(np.zeros((2, 4)))
        with pytest.raises(ValueError, match="labels"):
            writer.append(np.zeros((2, 3)), labels=np.zeros(2))

    def test_empty_writer_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no rows"):
            ShardWriter(tmp_path / "w", shard_rows=10).close()

    def test_invalid_shard_rows(self, tmp_path):
        with pytest.raises(ValueError):
            ShardWriter(tmp_path / "w", shard_rows=0)


class TestManifestStatistics:
    def test_merged_ranges_match_normalizer_fit(self, small_store):
        # The manifest-only merge must equal MinMaxNormalizer.fit on the
        # materialised data — including its NaN->(0,1) substitution.
        store, generated = small_store
        fitted = MinMaxNormalizer().fit(generated.dataset)
        minima, maxima = store.merged_ranges()
        assert np.array_equal(minima, fitted.minima)
        assert np.array_equal(maxima - minima, fitted.ranges)

    def test_constant_and_all_nan_columns(self, tmp_path):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(120, 4))
        values[:, 1] = 2.5  # constant
        values[:, 2] = np.nan  # never observed anywhere
        values[rng.random(size=values.shape) < 0.2] = np.nan
        dataset = IncompleteDataset(values.copy())
        store = write_dataset_sharded(dataset, tmp_path / "edge", shard_rows=31)
        fitted = MinMaxNormalizer().fit(dataset)
        minima, maxima = store.merged_ranges()
        assert np.array_equal(minima, fitted.minima)
        assert np.array_equal(maxima - minima, fitted.ranges)
        assert minima[2] == 0.0 and maxima[2] == 1.0

    def test_per_shard_missing_cells_sum(self, small_store):
        store, generated = small_store
        total = sum(info.missing_cells for info in store.manifest.shards)
        assert total == int(np.isnan(generated.dataset.values).sum())


class TestScanParity:
    def test_scan_matches_csv_scan_bit_for_bit(self, small_store, tmp_path):
        # Same rows, same order, same rng => the shard scan and the CSV
        # scan must consume the generator identically and return the same
        # reservoir.  (The CSV write truncates to .10g, so compare the
        # reservoir's row *indices* via nan patterns + close values.)
        store, generated = small_store
        path = tmp_path / "same.csv"
        write_csv(generated.dataset, path)
        scanned_store = store.scan(sample_size=50, rng=np.random.default_rng(9))
        scanned_csv = CsvRowStream(path, chunk_size=64).scan(
            sample_size=50, rng=np.random.default_rng(9)
        )
        assert scanned_store.rows == scanned_csv.rows
        assert np.allclose(
            np.nan_to_num(scanned_store.sample),
            np.nan_to_num(scanned_csv.sample),
            atol=1e-9,
        )
        assert np.allclose(scanned_store.minima, scanned_csv.minima, atol=1e-9)
        assert np.allclose(scanned_store.maxima, scanned_csv.maxima, atol=1e-9)

    def test_scan_reservoir_independent_of_shard_layout(self, small_store, tmp_path):
        store, generated = small_store
        other = write_dataset_sharded(
            generated.dataset, tmp_path / "other", shard_rows=23
        )
        a = store.scan(sample_size=40, rng=np.random.default_rng(4))
        b = other.scan(sample_size=40, rng=np.random.default_rng(4))
        assert np.array_equal(np.nan_to_num(a.sample), np.nan_to_num(b.sample))

    def test_scan_without_sample_reads_no_shards(self, small_store):
        from repro.obs.recorder import recording

        store, _ = small_store
        with recording() as rec:
            result = ShardStore(store.path).scan()
        assert result.rows == store.rows
        counters = rec.to_dict()["metrics"]["counters"]
        assert counters.get("shard.reads", 0) == 0

    def test_sample_requires_rng(self, small_store):
        with pytest.raises(ValueError, match="rng"):
            small_store[0].scan(sample_size=10)


class TestIntegrity:
    def test_validate_accepts_untouched_store(self, small_store):
        small_store[0].validate()

    def test_validate_rejects_tampered_shard(self, small_store):
        store, _ = small_store
        info = store.manifest.shards[1]
        values = store.shard_values(1)
        labels = store.shard_labels(1)
        values[0, 0] = 123456.0
        with (store.path / info.file).open("wb") as handle:
            np.savez(handle, values=values, labels=labels)
        with pytest.raises(ValueError, match="does not match manifest"):
            ShardStore(store.path).validate()

    def test_fingerprint_is_order_sensitive(self, small_store):
        infos = list(small_store[0].manifest.shards)
        assert combine_fingerprint(infos) != combine_fingerprint(infos[::-1])

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "not_a_store").mkdir()
        with pytest.raises(ValueError, match=MANIFEST_NAME):
            ShardStore(tmp_path / "not_a_store")

    def test_wrong_kind_raises(self, tmp_path):
        target = tmp_path / "wrong"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a shard-store manifest"):
            ShardStore(target)


class TestGenerateSharded:
    def test_deterministic(self, tmp_path):
        a = generate_sharded("trial", tmp_path / "a", n_samples=400, seed=7, shard_rows=128)
        b = generate_sharded("trial", tmp_path / "b", n_samples=400, seed=7, shard_rows=128)
        assert a.manifest.fingerprint == b.manifest.fingerprint

    def test_seed_changes_data(self, tmp_path):
        a = generate_sharded("trial", tmp_path / "a", n_samples=400, seed=7, shard_rows=128)
        b = generate_sharded("trial", tmp_path / "b", n_samples=400, seed=8, shard_rows=128)
        assert a.manifest.fingerprint != b.manifest.fingerprint

    def test_spec_shape_and_missing_rate(self, tmp_path):
        store = generate_sharded(
            "trial", tmp_path / "s", n_samples=2000, seed=0, shard_rows=512
        )
        assert store.rows == 2000
        assert store.n_features == 9
        missing = sum(info.missing_cells for info in store.manifest.shards)
        rate = missing / (2000 * 9)
        assert rate == pytest.approx(0.0963, abs=0.02)
        assert store.manifest.has_labels
        labels = store.labels()
        assert set(np.unique(labels)) <= {0.0, 1.0}  # trial is classification

    def test_feature_types_follow_spec(self, tmp_path):
        store = generate_sharded(
            "trial", tmp_path / "s", n_samples=300, seed=0, shard_rows=128
        )
        types = store.manifest.feature_types
        # 30% of 9 features -> trailing 3 columns discretised.
        assert all(t == "continuous" for t in types[:6])
        assert all(t in ("binary", "categorical") for t in types[6:])

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(KeyError, match="unknown dataset"):
            generate_sharded("nope", tmp_path / "s", n_samples=100)

    def test_bad_missing_rate_raises(self, tmp_path):
        with pytest.raises(ValueError, match="missing rate"):
            generate_sharded("trial", tmp_path / "s", n_samples=100, missing_rate=1.5)


class TestTelemetry:
    def test_shard_events_and_counters(self, tmp_path):
        from repro.obs.recorder import recording

        with recording() as rec:
            store = generate_sharded(
                "trial", tmp_path / "s", n_samples=200, seed=0, shard_rows=64
            )
            store.shard(0)
        trace = rec.to_dict()
        counters = trace["metrics"]["counters"]
        assert counters["shard.writes"] == store.n_shards
        assert counters["shard.reads"] == 1
        names = {event["name"] for event in trace["events"]}
        assert {"shard.write", "shard.read", "shard.manifest"} <= names
