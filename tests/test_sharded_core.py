"""Sharded fit/impute driver: dense parity, parallel parity, memory contract."""

import numpy as np
import pytest

from repro.core import DimConfig, ScisConfig, fit_impute_dense, fit_impute_sharded
from repro.core.sharded import DenseScan
from repro.data import ShardStore, generate_sharded, write_dataset_sharded
from repro.models import GAINImputer
from repro.parallel import ExecutionContext


def make_model():
    return GAINImputer(hidden=8, epochs=2, seed=0)


def make_config():
    return ScisConfig(
        initial_size=40,
        validation_size=40,
        error_bound=0.05,
        dim=DimConfig(epochs=2, batch_size=32),
        seed=0,
    )


@pytest.fixture
def store(tmp_path):
    return generate_sharded(
        "trial", tmp_path / "store", n_samples=400, seed=5, shard_rows=96
    )


class TestDenseParity:
    def test_sharded_bit_identical_to_dense(self, store, tmp_path):
        # The acceptance bar: same seed, serial context, same rows =>
        # identical bytes out of both drivers.
        report = fit_impute_sharded(
            store,
            tmp_path / "out",
            make_model(),
            make_config(),
            seed=11,
            context=ExecutionContext(backend="serial"),
        )
        dense_out, dense_result = fit_impute_dense(
            store.to_dataset(), make_model(), make_config(), seed=11
        )
        sharded_out = ShardStore(report.output_path).to_dataset().values
        assert np.array_equal(sharded_out, dense_out)
        assert report.n_star == dense_result.n_star

    def test_output_independent_of_shard_layout(self, store, tmp_path):
        # Re-shard the same rows differently; the imputed table must not move.
        dataset = store.to_dataset()
        other = write_dataset_sharded(dataset, tmp_path / "other", shard_rows=57)
        r1 = fit_impute_sharded(
            store, tmp_path / "out1", make_model(), make_config(), seed=11
        )
        r2 = fit_impute_sharded(
            other, tmp_path / "out2", make_model(), make_config(), seed=11
        )
        a = ShardStore(r1.output_path).to_dataset().values
        b = ShardStore(r2.output_path).to_dataset().values
        assert np.array_equal(a, b)

    def test_dense_chunk_size_invariant(self, store):
        dataset = store.to_dataset()
        a, _ = fit_impute_dense(dataset, make_model(), make_config(), seed=11, chunk_size=64)
        b, _ = fit_impute_dense(dataset, make_model(), make_config(), seed=11, chunk_size=4096)
        assert np.array_equal(a, b)

    def test_observed_cells_pass_through_verbatim(self, store, tmp_path):
        report = fit_impute_sharded(
            store, tmp_path / "out", make_model(), make_config(), seed=11
        )
        original = store.to_dataset().values
        imputed = ShardStore(report.output_path).to_dataset().values
        observed = ~np.isnan(original)
        assert np.array_equal(imputed[observed], original[observed])
        assert not np.isnan(imputed).any()

    def test_dense_scan_matches_store_scan(self, store):
        a = store.scan(sample_size=64, rng=np.random.default_rng(3))
        b = DenseScan(store.to_dataset().values).scan(
            sample_size=64, rng=np.random.default_rng(3)
        )
        assert a.rows == b.rows
        assert np.array_equal(a.minima, b.minima)
        assert np.array_equal(a.maxima, b.maxima)
        assert np.array_equal(np.nan_to_num(a.sample), np.nan_to_num(b.sample))


@pytest.mark.parallel
class TestParallelParity:
    def test_serial_and_process_outputs_bit_identical(self, store, tmp_path):
        serial = fit_impute_sharded(
            store,
            tmp_path / "serial",
            make_model(),
            make_config(),
            seed=11,
            context=ExecutionContext(backend="serial"),
        )
        parallel = fit_impute_sharded(
            store,
            tmp_path / "parallel",
            make_model(),
            make_config(),
            seed=11,
            context=ExecutionContext(backend="process", workers=2),
        )
        assert serial.output_fingerprint == parallel.output_fingerprint
        a = ShardStore(serial.output_path).to_dataset().values
        b = ShardStore(parallel.output_path).to_dataset().values
        assert np.array_equal(a, b)
        ShardStore(parallel.output_path).validate()


class TestReportAndTelemetry:
    def test_report_fields(self, store, tmp_path):
        report = fit_impute_sharded(
            store, tmp_path / "out", make_model(), make_config(), seed=11
        )
        assert report.rows == 400
        assert report.n_shards == store.n_shards
        assert report.n_star >= report.n_initial
        assert 0 < report.sample_rate <= 1.0
        # Memory contract: one shard + the reservoir, nothing proportional
        # to the table.
        max_shard = max(info.rows for info in store.manifest.shards)
        assert report.peak_resident_rows == max_shard + report.reservoir_rows
        assert report.reservoir_rows <= report.rows
        assert report.training_seconds > 0
        assert report.total_seconds >= report.impute_seconds

    def test_output_store_is_valid_and_labelled(self, store, tmp_path):
        report = fit_impute_sharded(
            store, tmp_path / "out", make_model(), make_config(), seed=11
        )
        out = ShardStore(report.output_path)
        out.validate()
        assert out.manifest.fingerprint == report.output_fingerprint
        assert np.array_equal(out.labels(), store.labels())
        assert out.manifest.feature_types == store.manifest.feature_types

    def test_telemetry(self, store, tmp_path):
        from repro.obs.recorder import recording

        with recording() as rec:
            fit_impute_sharded(
                store, tmp_path / "out", make_model(), make_config(), seed=11
            )
        trace = rec.to_dict()
        counters = trace["metrics"]["counters"]
        assert counters["shard.imputed"] == store.n_shards
        gauges = trace["metrics"]["gauges"]
        assert gauges["shard.peak_resident_rows"] > 0
        names = {event["name"] for event in trace["events"]}
        assert "shard.fit_impute" in names

    def test_too_few_rows_raises_with_guidance(self, tmp_path):
        tiny = generate_sharded(
            "trial", tmp_path / "tiny", n_samples=50, seed=0, shard_rows=32
        )
        with pytest.raises(ValueError, match=r"only 50 data rows"):
            fit_impute_sharded(
                tiny, tmp_path / "out", make_model(), make_config(), seed=0
            )
