"""Metrics: masked RMSE/MAE, AUC, and the downstream prediction harness."""

import numpy as np
import pytest

from repro.metrics import (
    DownstreamConfig,
    accuracy_score,
    auc_score,
    evaluate_downstream,
    masked_mae,
    masked_rmse,
)


class TestMaskedErrors:
    def test_rmse_hand_computed(self):
        prediction = np.array([[1.0, 5.0], [2.0, 0.0]])
        truth = np.array([[0.0, 5.0], [0.0, 9.0]])
        mask = np.array([[1.0, 1.0], [1.0, 0.0]])
        assert masked_rmse(prediction, truth, mask) == pytest.approx(
            np.sqrt((1 + 0 + 4) / 3)
        )

    def test_mae_hand_computed(self):
        prediction = np.array([[1.0, 5.0]])
        truth = np.array([[0.0, 2.0]])
        mask = np.array([[1.0, 1.0]])
        assert masked_mae(prediction, truth, mask) == pytest.approx(2.0)

    def test_masked_cells_ignored(self):
        prediction = np.array([[1.0, 1e9]])
        truth = np.zeros((1, 2))
        mask = np.array([[1.0, 0.0]])
        assert masked_rmse(prediction, truth, mask) == pytest.approx(1.0)

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            masked_rmse(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            masked_rmse(np.zeros((2, 2)), np.zeros((2, 3)), np.ones((2, 2)))

    def test_perfect_prediction_zero(self, rng):
        truth = rng.normal(size=(10, 4))
        mask = np.ones((10, 4))
        assert masked_rmse(truth, truth, mask) == 0.0
        assert masked_mae(truth, truth, mask) == 0.0


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_perfectly_wrong(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 0.0

    def test_random_scores_near_half(self, rng):
        labels = (rng.random(4000) > 0.5).astype(float)
        scores = rng.random(4000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_score(labels, scores) == pytest.approx(0.5)

    def test_hand_computed_case(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.3, 0.1])
        # pairs: (0.9>0.8)=1, (0.9>0.1)=1, (0.3<0.8)=0, (0.3>0.1)=1 -> 3/4
        assert auc_score(labels, scores) == pytest.approx(0.75)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.ones(5), np.linspace(0, 1, 5))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.zeros(3), np.zeros(4))

    def test_invariant_to_monotone_transform(self, rng):
        labels = (rng.random(200) > 0.5).astype(float)
        scores = rng.normal(size=200)
        assert auc_score(labels, scores) == pytest.approx(
            auc_score(labels, np.exp(scores))
        )


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])


class TestDownstream:
    def test_classification_on_learnable_data(self, rng):
        x = rng.normal(size=(600, 5))
        labels = (x[:, 0] + x[:, 1] > 0).astype(float)
        result = evaluate_downstream(
            x, labels, "classification", DownstreamConfig(epochs=30, dropout=0.2)
        )
        assert result.metric == "auc"
        assert result.score > 0.8

    def test_regression_on_learnable_data(self, rng):
        x = rng.normal(size=(600, 5))
        target = 2.0 * x[:, 0] - x[:, 2]
        result = evaluate_downstream(
            x, target, "regression", DownstreamConfig(epochs=40, dropout=0.0)
        )
        assert result.metric == "mae"
        assert result.score < np.abs(target).mean()

    def test_nan_input_raises(self, rng):
        x = rng.normal(size=(50, 3))
        x[0, 0] = np.nan
        with pytest.raises(ValueError):
            evaluate_downstream(x, np.zeros(50), "classification")

    def test_unknown_task_raises(self, rng):
        with pytest.raises(ValueError):
            evaluate_downstream(rng.normal(size=(50, 3)), np.zeros(50), "ranking")

    def test_row_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            evaluate_downstream(rng.normal(size=(50, 3)), np.zeros(40), "regression")
