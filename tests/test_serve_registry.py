"""Model registry: round-trip bit-identity, key stability, error paths."""

import json

import numpy as np
import pytest

from repro.core import DimConfig, DimImputer
from repro.data import IncompleteDataset, MinMaxNormalizer, generate
from repro.models import GAINImputer, MeanImputer, make_imputer
from repro.serve import (
    ModelRegistry,
    RegistryError,
    config_id,
    registry_key,
    schema_fingerprint,
    schema_of,
)


@pytest.fixture
def trained(tmp_path):
    """A small dataset, a fitted normalizer, and a fresh registry."""
    generated = generate("trial", n_samples=60, seed=0)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(generated.dataset)
    registry = ModelRegistry(tmp_path / "registry")
    return generated.dataset, normalized, normalizer, registry


def _roundtrip_identical(registry, model, dataset, normalized, normalizer):
    """Save, reload, and assert bit-identical imputations on fresh data."""
    entry = registry.save(model, dataset=dataset, normalizer=normalizer)
    loaded = registry.load(entry.key)
    reference = model.transform(normalized)
    candidate = loaded.model.transform(normalized)
    np.testing.assert_array_equal(reference, candidate)
    return entry, loaded


class TestRoundTrip:
    def test_gain_roundtrip_bit_identical(self, trained):
        dataset, normalized, normalizer, registry = trained
        model = GAINImputer(epochs=2, seed=0)
        model.fit(normalized)
        entry, loaded = _roundtrip_identical(
            registry, model, dataset, normalized, normalizer
        )
        assert entry.kind == "generative"
        assert entry.model_name == "gain"
        assert loaded.normalizer is not None

    def test_dim_roundtrip_bit_identical(self, trained):
        dataset, normalized, normalizer, registry = trained
        model = DimImputer(
            GAINImputer(epochs=2, seed=0), config=DimConfig(epochs=2), seed=0
        )
        model.fit(normalized)
        entry, _ = _roundtrip_identical(
            registry, model, dataset, normalized, normalizer
        )
        # The wrapper is persisted under its own name but rebuilt as the
        # inner generative model (transform delegates, so outputs match).
        assert entry.model_name == "dim-gain"
        assert entry.inner_name == "gain"
        assert entry.extra_config.get("epochs") == 2

    def test_mean_roundtrip_bit_identical(self, trained):
        dataset, normalized, normalizer, registry = trained
        model = MeanImputer().fit(normalized)
        entry, _ = _roundtrip_identical(
            registry, model, dataset, normalized, normalizer
        )
        assert entry.kind == "column_stats"

    def test_knn_roundtrip_bit_identical(self, trained):
        dataset, normalized, normalizer, registry = trained
        model = make_imputer("knn")
        model.fit(normalized)
        entry, _ = _roundtrip_identical(
            registry, model, dataset, normalized, normalizer
        )
        assert entry.kind == "knn"

    def test_unfitted_model_is_rejected(self, trained):
        dataset, _, _, registry = trained
        with pytest.raises(RegistryError, match="unfitted"):
            registry.save(MeanImputer(), dataset=dataset)


class TestKeys:
    def test_fingerprint_is_stable_and_schema_sensitive(self, trained):
        dataset, _, _, _ = trained
        fp = schema_fingerprint(dataset)
        assert fp == schema_fingerprint(schema_of(dataset))
        assert len(fp) == 12
        other = dict(schema_of(dataset))
        other["feature_names"] = list(other["feature_names"])[::-1]
        assert schema_fingerprint(other) != fp

    def test_config_id_distinguishes_configs(self):
        a = config_id("gain", {"epochs": 2, "seed": 0})
        b = config_id("gain", {"epochs": 3, "seed": 0})
        assert a != b
        assert config_id("gain", {"epochs": 2, "seed": 0}) == a

    def test_key_format(self, trained):
        dataset, normalized, normalizer, registry = trained
        entry = registry.save(
            MeanImputer().fit(normalized), dataset=dataset, normalizer=normalizer
        )
        assert entry.key == registry_key(
            entry.model_name, entry.schema_fp, entry.config_id
        )
        assert entry.key.startswith("mean-")

    def test_different_configs_occupy_distinct_entries(self, trained):
        dataset, normalized, normalizer, registry = trained
        m2 = GAINImputer(epochs=2, seed=0)
        m3 = GAINImputer(epochs=3, seed=0)
        m2.fit(normalized)
        m3.fit(normalized)
        k2 = registry.save(m2, dataset=dataset, normalizer=normalizer).key
        k3 = registry.save(m3, dataset=dataset, normalizer=normalizer).key
        assert k2 != k3
        assert sorted(registry.keys()) == sorted([k2, k3])


class TestErrorPaths:
    def test_missing_key_names_key_and_known_keys(self, trained):
        dataset, normalized, normalizer, registry = trained
        entry = registry.save(
            MeanImputer().fit(normalized), dataset=dataset, normalizer=normalizer
        )
        with pytest.raises(RegistryError, match="'nope'") as excinfo:
            registry.load("nope")
        assert excinfo.value.key == "nope"
        assert entry.key in str(excinfo.value)  # known keys listed

    def test_missing_registry(self, tmp_path):
        with pytest.raises(RegistryError, match="no model registry"):
            ModelRegistry(tmp_path / "nowhere").load("any")

    def test_corrupt_manifest(self, tmp_path):
        root = tmp_path / "registry"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(RegistryError, match="corrupt registry manifest"):
            ModelRegistry(root).keys()

    def test_wrong_kind_manifest(self, tmp_path):
        root = tmp_path / "registry"
        root.mkdir()
        (root / "manifest.json").write_text(json.dumps({"kind": "other"}))
        with pytest.raises(RegistryError, match="not a model-registry manifest"):
            ModelRegistry(root).keys()

    def test_unsupported_manifest_version(self, tmp_path):
        root = tmp_path / "registry"
        root.mkdir()
        (root / "manifest.json").write_text(
            json.dumps({"kind": "model-registry", "version": 99, "entries": {}})
        )
        with pytest.raises(RegistryError, match="version 99"):
            ModelRegistry(root).keys()

    def test_corrupt_entry_json_names_key(self, trained):
        dataset, normalized, normalizer, registry = trained
        entry = registry.save(
            MeanImputer().fit(normalized), dataset=dataset, normalizer=normalizer
        )
        (registry.root / entry.key / "entry.json").write_text("{broken")
        with pytest.raises(RegistryError, match=entry.key) as excinfo:
            registry.load(entry.key)
        assert excinfo.value.key == entry.key

    def test_corrupt_weights_names_key(self, trained):
        dataset, normalized, normalizer, registry = trained
        entry = registry.save(
            MeanImputer().fit(normalized), dataset=dataset, normalizer=normalizer
        )
        (registry.root / entry.key / "weights.npz").write_bytes(b"not an npz")
        with pytest.raises(RegistryError, match=entry.key) as excinfo:
            registry.load(entry.key)
        assert excinfo.value.key == entry.key

    def test_schema_mismatch_rejected(self, trained):
        dataset, normalized, normalizer, registry = trained
        entry = registry.save(
            MeanImputer().fit(normalized), dataset=dataset, normalizer=normalizer
        )
        other = IncompleteDataset(
            np.ones((3, 2)), feature_names=["a", "b"], name="other"
        )
        with pytest.raises(RegistryError, match="schema mismatch") as excinfo:
            registry.check_schema(entry, other)
        assert excinfo.value.key == entry.key
        assert entry.schema_fp in str(excinfo.value)
        registry.check_schema(entry, dataset)  # matching schema passes

    def test_delete_removes_entry(self, trained):
        dataset, normalized, normalizer, registry = trained
        entry = registry.save(
            MeanImputer().fit(normalized), dataset=dataset, normalizer=normalizer
        )
        registry.delete(entry.key)
        assert registry.keys() == []
        with pytest.raises(RegistryError):
            registry.load(entry.key)
