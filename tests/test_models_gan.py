"""GAN imputers: GAIN, GINN, and the GenerativeImputer contract."""

import numpy as np
import pytest

from repro.data import holdout_split
from repro.models import GAINImputer, GINNImputer, MeanImputer, knn_graph_adjacency
from repro.nn import flatten_parameters


@pytest.fixture
def case(small_incomplete, rng):
    return holdout_split(small_incomplete, 0.2, rng)


GAN_FACTORIES = [
    ("gain", lambda: GAINImputer(epochs=60, seed=0)),
    ("ginn", lambda: GINNImputer(epochs=25, seed=0)),
]


@pytest.mark.parametrize("name,factory", GAN_FACTORIES, ids=[n for n, _ in GAN_FACTORIES])
class TestGanContract:
    def test_fit_transform(self, case, name, factory):
        imputed = factory().fit_transform(case.train)
        assert imputed.shape == case.train.shape
        assert not np.isnan(imputed).any()

    def test_observed_cells_untouched(self, case, name, factory):
        imputed = factory().fit_transform(case.train)
        observed = case.train.mask == 1.0
        assert np.allclose(
            imputed[observed], np.nan_to_num(case.train.values)[observed]
        )

    def test_generator_before_build_raises(self, name, factory):
        with pytest.raises(RuntimeError):
            _ = factory().generator

    def test_build_creates_generator(self, name, factory):
        model = factory()
        model.build(5)
        assert model.generator.num_parameters() > 0

    def test_reconstruct_batch_is_differentiable(self, case, name, factory):
        model = factory()
        model.build(case.train.n_features)
        values = case.train.values[:16]
        mask = case.train.mask[:16]
        noise = model.sample_noise(mask.shape, np.random.default_rng(0))
        out = model.reconstruct_batch(values, mask, noise)
        assert out.requires_grad
        out.sum().backward()
        grads = [p.grad for p in model.generator.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_adversarial_step_updates_generator(self, case, name, factory):
        model = factory()
        model.build(case.train.n_features)
        before = flatten_parameters(model.generator).copy()
        model.adversarial_step(
            case.train.values[:32], case.train.mask[:32], np.random.default_rng(0)
        )
        after = flatten_parameters(model.generator)
        assert not np.allclose(before, after)

    def test_reconstruction_in_unit_interval(self, case, name, factory):
        model = factory()
        model.build(case.train.n_features)
        noise = model.sample_noise(case.train.mask[:8].shape, np.random.default_rng(0))
        out = model.reconstruct_batch(case.train.values[:8], case.train.mask[:8], noise)
        assert (out.data >= 0).all() and (out.data <= 1).all()


class TestGAINSpecifics:
    def test_beats_mean_on_correlated_data(self, case):
        gain_rmse = case.rmse(GAINImputer(epochs=100, seed=0).fit_transform(case.train))
        mean_rmse = case.rmse(MeanImputer().fit_transform(case.train))
        assert gain_rmse < mean_rmse

    def test_adversarial_losses_finite(self, case):
        model = GAINImputer(seed=0)
        model.build(case.train.n_features)
        stats = model.adversarial_step(
            case.train.values[:32], case.train.mask[:32], np.random.default_rng(0)
        )
        assert np.isfinite(stats["d_loss"]) and np.isfinite(stats["g_loss"])

    def test_noise_scale(self):
        model = GAINImputer(noise_scale=0.01)
        noise = model.sample_noise((100, 5), np.random.default_rng(0))
        assert noise.min() >= 0.0 and noise.max() <= 0.01

    def test_hidden_defaults_to_feature_count(self):
        model = GAINImputer()
        model.build(12)
        assert model.generator.layers[0].out_features == 12

    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0, -1e-9])
    def test_hint_rate_outside_unit_interval_rejected(self, bad):
        with pytest.raises(ValueError, match="hint_rate"):
            GAINImputer(hint_rate=bad)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_hint_rate_boundary_values_accepted(self, ok):
        assert GAINImputer(hint_rate=ok).hint_rate == ok


class TestKnnGraph:
    def test_symmetric(self, rng):
        adjacency = knn_graph_adjacency(rng.normal(size=(20, 3)), k=4)
        assert np.allclose(adjacency, adjacency.T)

    def test_self_loops_on_diagonal(self, rng):
        adjacency = knn_graph_adjacency(rng.normal(size=(10, 2)), k=2)
        assert (np.diag(adjacency) > 0).all()

    def test_normalisation_bounded(self, rng):
        adjacency = knn_graph_adjacency(rng.normal(size=(30, 3)), k=5)
        eigenvalues = np.linalg.eigvalsh(adjacency)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_two_clusters_not_connected(self):
        cluster_a = np.zeros((5, 2))
        cluster_b = np.full((5, 2), 100.0)
        features = np.vstack([cluster_a + 0.01 * np.arange(5)[:, None], cluster_b])
        adjacency = knn_graph_adjacency(features, k=2)
        assert np.allclose(adjacency[:5, 5:], 0.0)

    def test_tiny_input(self):
        adjacency = knn_graph_adjacency(np.zeros((1, 2)), k=3)
        assert adjacency.shape == (1, 1)


class TestGINNSpecifics:
    def test_critic_steps_configurable(self, case):
        model = GINNImputer(critic_steps=2, seed=0)
        model.build(case.train.n_features)
        stats = model.adversarial_step(
            case.train.values[:16], case.train.mask[:16], np.random.default_rng(0)
        )
        assert np.isfinite(stats["d_loss"])

    def test_gcn_uses_graph_structure(self, case):
        """Permuting rows must permute the reconstruction consistently."""
        model = GINNImputer(seed=0)
        model.build(case.train.n_features)
        values = case.train.values[:12]
        mask = case.train.mask[:12]
        noise = model.sample_noise(mask.shape, np.random.default_rng(0))
        base = model.reconstruct_batch(values, mask, noise).data
        perm = np.random.default_rng(1).permutation(12)
        permuted = model.reconstruct_batch(values[perm], mask[perm], noise[perm]).data
        assert np.allclose(permuted, base[perm], atol=1e-8)
