"""Autodiff graph mechanics: accumulation, reuse, no_grad, error paths."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, no_grad, ops, set_grad_enabled
from repro.tensor.gradcheck import numerical_gradient


class TestBackwardMechanics:
    def test_scalar_backward_seeds_ones(self):
        a = Tensor(3.0, requires_grad=True)
        (a * a).backward()
        assert a.grad == pytest.approx(6.0)

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(2.0, requires_grad=True)
        (a * 3.0).backward()
        (a * 3.0).backward()
        assert a.grad == pytest.approx(6.0)

    def test_zero_grad_resets(self):
        a = Tensor(2.0, requires_grad=True)
        (a * 3.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_tensor_reused_twice_in_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * a + a  # df/da = 2a + 1
        out.sum().backward()
        assert np.allclose(a.grad, 2 * a.data + 1)

    def test_diamond_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b + c).backward()
        assert a.grad == pytest.approx(7.0)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(1.0, requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1e-6
        out.backward()
        assert a.grad == pytest.approx(1.0)

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_seed_gradient_shape_mismatch_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            a.backward(np.ones(3))

    def test_explicit_seed_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [2.0, 20.0])

    def test_constant_branch_gets_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # constant
        (a * b).backward()
        assert b.grad is None


class TestGradMode:
    def test_no_grad_blocks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        with no_grad():
            pass
        a = Tensor([1.0], requires_grad=True)
        assert (a * 2.0).requires_grad

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            a = Tensor([1.0], requires_grad=True)
            assert not (a * 2.0).requires_grad

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            a = Tensor([1.0], requires_grad=True)
            assert not a.requires_grad
        finally:
            set_grad_enabled(True)

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3.0).detach()
        assert not b.requires_grad
        assert np.allclose(b.data, [6.0])


class TestTensorBasics:
    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_as_tensor_from_list(self):
        t = as_tensor([1, 2, 3])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_shape_ndim_size_len(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3

    def test_item_and_numpy(self):
        t = Tensor(5.0)
        assert t.item() == 5.0
        assert isinstance(t.numpy(), np.ndarray)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))


class TestNumericalGradient:
    def test_matches_analytic_for_quadratic(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        numeric = numerical_gradient(lambda a: (a * a).sum(), [a], 0)
        assert np.allclose(numeric, 2 * a.data, atol=1e-5)
