"""Gaussian EM imputer and the missingness profiler."""

import numpy as np
import pytest

from repro.data import IncompleteDataset, ampute, holdout_split, profile_missingness
from repro.models import GaussianEMImputer, MeanImputer, make_imputer


@pytest.fixture
def gaussian_case(rng):
    """Correlated Gaussian data — EM's home turf."""
    n, d = 500, 4
    cov = np.array(
        [
            [1.0, 0.8, 0.3, 0.0],
            [0.8, 1.0, 0.4, 0.1],
            [0.3, 0.4, 1.0, 0.5],
            [0.0, 0.1, 0.5, 1.0],
        ]
    )
    full = rng.multivariate_normal(np.array([1.0, -2.0, 0.5, 3.0]), cov, size=n)
    ds = ampute(IncompleteDataset(full, name="gauss"), 0.3, "mcar", rng)
    return holdout_split(ds, 0.2, rng)


class TestGaussianEM:
    def test_beats_mean_on_gaussian_data(self, gaussian_case):
        em_rmse = gaussian_case.rmse(GaussianEMImputer().fit_transform(gaussian_case.train))
        mean_rmse = gaussian_case.rmse(MeanImputer().fit_transform(gaussian_case.train))
        # With max |corr| = 0.8 the conditional std leaves ~0.6-0.9 of the
        # marginal RMSE achievable; EM must realise a clear chunk of it.
        assert em_rmse < 0.9 * mean_rmse

    def test_recovers_moments(self, gaussian_case):
        model = GaussianEMImputer().fit(gaussian_case.train)
        assert np.allclose(model.mean_, [1.0, -2.0, 0.5, 3.0], atol=0.3)
        assert model.covariance_[0, 1] > 0.5  # strong positive correlation found

    def test_converges(self, gaussian_case):
        model = GaussianEMImputer(max_iterations=50).fit(gaussian_case.train)
        assert model.n_iterations_ < 50

    def test_observed_cells_untouched(self, gaussian_case):
        imputed = GaussianEMImputer().fit_transform(gaussian_case.train)
        observed = gaussian_case.train.mask == 1.0
        assert np.allclose(
            imputed[observed], np.nan_to_num(gaussian_case.train.values)[observed]
        )

    def test_handles_fully_missing_row(self, rng):
        values = rng.normal(size=(50, 3))
        values[0, :] = np.nan
        ds = IncompleteDataset(values)
        imputed = GaussianEMImputer().fit_transform(ds)
        assert not np.isnan(imputed).any()
        # A fully-missing row gets the marginal mean.
        assert np.allclose(imputed[0], GaussianEMImputer().fit(ds).mean_, atol=1e-9)

    def test_reconstruct_new_rows(self, gaussian_case, rng):
        model = GaussianEMImputer().fit(gaussian_case.train)
        new = rng.normal(size=(5, 4))
        mask = np.ones((5, 4))
        mask[:, 2] = 0.0
        out = model.reconstruct(new, mask)
        assert np.isfinite(out).all()

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            GaussianEMImputer(max_iterations=0)

    def test_registered(self):
        assert make_imputer("em").name == "em"

    def test_unfitted_raises(self, gaussian_case):
        with pytest.raises(RuntimeError):
            GaussianEMImputer().transform(gaussian_case.train)


class TestProfiler:
    def test_basic_counts(self):
        ds = IncompleteDataset(
            np.array([[1.0, np.nan], [2.0, 3.0], [np.nan, 4.0]]),
            feature_names=["a", "b"],
        )
        profile = profile_missingness(ds)
        assert profile.n_samples == 3
        assert profile.n_features == 2
        assert profile.complete_rows == 1
        assert profile.overall_missing_rate == pytest.approx(2 / 6)

    def test_column_stats(self):
        ds = IncompleteDataset(np.array([[1.0, 10.0], [3.0, np.nan]]))
        profile = profile_missingness(ds)
        col_a = profile.columns[0]
        assert col_a.missing_rate == 0.0
        assert col_a.mean == pytest.approx(2.0)
        assert profile.columns[1].observed_count == 1

    def test_pattern_counts_sorted(self, rng):
        values = rng.normal(size=(100, 3))
        values[:70, 0] = np.nan  # dominant pattern: first column missing
        profile = profile_missingness(IncompleteDataset(values))
        top_pattern, top_count = profile.pattern_counts[0]
        assert top_pattern == "011"
        assert top_count == 70

    def test_mnar_flagged_as_suspect(self, rng):
        # Column 0's value drives its own missingness (strong MNAR).
        values = rng.normal(size=(2000, 2))
        drop = values[:, 0] > 0.3
        observed_pair = values.copy()
        observed_pair[drop, 1] = np.nan  # column 1 goes missing when col 0 large
        profile = profile_missingness(IncompleteDataset(observed_pair))
        assert profile.mcar_suspects  # the f0-vs-missing(f1) shift is detected

    def test_mcar_clean_data_has_few_suspects(self, rng):
        values = rng.normal(size=(1000, 3))
        ds = ampute(IncompleteDataset(values), 0.3, "mcar", rng)
        profile = profile_missingness(ds, mcar_threshold=4.0)
        assert len(profile.mcar_suspects) <= 1

    def test_summary_renders(self, small_incomplete):
        text = profile_missingness(small_incomplete).summary()
        assert "rows" in text
        assert "column" in text

    def test_pattern_counting_skipped_for_huge_tables(self, rng):
        ds = IncompleteDataset(rng.normal(size=(50, 2)))
        profile = profile_missingness(ds, max_pattern_rows=10)
        assert profile.pattern_counts == []
