"""ImputationServer: coalescing, pass-through, error isolation, JSONL loop."""

import io
import json

import numpy as np
import pytest

from repro.data import MinMaxNormalizer, generate, read_csv, write_csv
from repro.models import GAINImputer, MeanImputer
from repro.obs import recording, trace_to_dict
from repro.serve import (
    ImputationServer,
    ModelRegistry,
    ServeConfig,
    serve_jsonl,
)


@pytest.fixture
def served(tmp_path):
    """A registry with a GAIN and a mean entry, plus the raw dataset."""
    generated = generate("trial", n_samples=60, seed=0)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(generated.dataset)
    registry = ModelRegistry(tmp_path / "registry")
    gain = GAINImputer(epochs=2, seed=0)
    gain.fit(normalized)
    gain_key = registry.save(
        gain, dataset=generated.dataset, normalizer=normalizer
    ).key
    mean_key = registry.save(
        MeanImputer().fit(normalized),
        dataset=generated.dataset,
        normalizer=normalizer,
    ).key
    return registry, generated.dataset, gain_key, mean_key


def _server(registry, **config_kwargs):
    config_kwargs.setdefault("batch_window_seconds", 0.002)
    return ImputationServer(registry, config=ServeConfig(**config_kwargs))


class TestServing:
    def test_single_row_passthrough_and_finite(self, served):
        registry, dataset, gain_key, _ = served
        server = _server(registry).start()
        try:
            row = dataset.values[0].copy()
            response = server.impute_rows(gain_key, row, timeout=60)
            assert response.ok
            mask = ~np.isnan(row)
            # Observed cells pass through bit-exactly; missing cells filled.
            np.testing.assert_array_equal(row[mask], response.values[0][mask])
            assert np.isfinite(response.values).all()
        finally:
            server.shutdown()

    def test_burst_coalesces_into_one_batch(self, served):
        registry, dataset, _, mean_key = served
        with recording() as rec:
            server = _server(registry)
            rows = [dataset.values[i].copy() for i in range(6)]
            # Enqueue before start: the dispatcher's first drain must
            # coalesce all six into a single model invocation.
            futures = [server.submit(mean_key, row) for row in rows]
            server.start()
            responses = [f.result(timeout=60) for f in futures]
            server.shutdown()
        assert all(r.ok for r in responses)
        assert all(r.coalesced == 6 for r in responses)
        trace = trace_to_dict(rec)
        batches = [e for e in trace["events"] if e["name"] == "serve.batch"]
        assert len(batches) == 1
        assert batches[0]["fields"]["n_requests"] == 6
        requests = [e for e in trace["events"] if e["name"] == "serve.request"]
        assert len(requests) == 6
        assert all(e["fields"]["coalesced"] == 6 for e in requests)
        assert trace["metrics"]["counters"]["serve.requests"] == 6
        assert trace["metrics"]["counters"]["serve.batches"] == 1
        assert "serve.queue_depth" in trace["metrics"]["gauges"]

    def test_batch_respects_max_batch_requests(self, served):
        registry, dataset, _, mean_key = served
        server = _server(registry, max_batch_requests=2)
        futures = [
            server.submit(mean_key, dataset.values[i].copy()) for i in range(5)
        ]
        server.start()
        responses = [f.result(timeout=60) for f in futures]
        server.shutdown()
        assert all(r.ok for r in responses)
        assert max(r.coalesced for r in responses) <= 2

    def test_bulk_csv(self, served, tmp_path):
        registry, dataset, gain_key, _ = served
        in_path = tmp_path / "in.csv"
        out_path = tmp_path / "out.csv"
        write_csv(dataset.take(list(range(10)), name="bulk"), in_path)
        server = _server(registry).start()
        try:
            response = server.impute_csv(gain_key, str(in_path), str(out_path))
        finally:
            server.shutdown()
        assert response.ok
        assert response.values.shape[0] == 10
        completed = read_csv(out_path)
        assert completed.missing_rate == 0.0
        raw = read_csv(in_path).values
        mask = ~np.isnan(raw)
        np.testing.assert_allclose(
            raw[mask], completed.values[mask], rtol=0, atol=1e-9
        )

    def test_unknown_key_fails_request_not_server(self, served):
        registry, dataset, gain_key, _ = served
        server = _server(registry).start()
        try:
            bad = server.impute_rows("nope", dataset.values[0].copy(), timeout=60)
            assert not bad.ok
            assert "nope" in bad.error
            good = server.impute_rows(gain_key, dataset.values[0].copy(), timeout=60)
            assert good.ok  # the server survived the bad request
        finally:
            server.shutdown()

    def test_width_mismatch_names_key(self, served):
        registry, _, gain_key, _ = served
        server = _server(registry).start()
        try:
            bad = server.impute_rows(gain_key, np.array([1.0, np.nan]), timeout=60)
        finally:
            server.shutdown()
        assert not bad.ok
        assert gain_key in bad.error
        assert "2" in bad.error

    def test_shutdown_drains_queued_requests(self, served):
        registry, dataset, _, mean_key = served
        server = _server(registry)
        futures = [
            server.submit(mean_key, dataset.values[i].copy()) for i in range(4)
        ]
        server.start()
        server.shutdown(drain=True)
        responses = [f.result(timeout=60) for f in futures]
        assert all(r.ok for r in responses)
        assert server.served_requests == 4

    def test_submit_after_shutdown_raises(self, served):
        registry, dataset, _, mean_key = served
        server = _server(registry).start()
        server.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            server.submit(mean_key, dataset.values[0].copy())

    def test_lru_eviction_emits_event(self, served):
        registry, dataset, gain_key, mean_key = served
        with recording() as rec:
            server = _server(registry, max_models=1).start()
            try:
                assert server.impute_rows(gain_key, dataset.values[0].copy(), timeout=60).ok
                assert server.impute_rows(mean_key, dataset.values[0].copy(), timeout=60).ok
                # gain was evicted; using it again transparently reloads.
                assert server.impute_rows(gain_key, dataset.values[1].copy(), timeout=60).ok
            finally:
                server.shutdown()
        trace = trace_to_dict(rec)
        evictions = [e for e in trace["events"] if e["name"] == "serve.evict"]
        assert len(evictions) >= 2
        assert evictions[0]["fields"]["key"] == gain_key

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_batch_requests"):
            ServeConfig(max_batch_requests=0)
        with pytest.raises(ValueError, match="batch_window_seconds"):
            ServeConfig(batch_window_seconds=-1.0)


class TestJsonl:
    def _run(self, served, lines, tmp_path=None):
        registry, _, _, _ = served
        server = _server(registry)
        out = io.StringIO()
        stats = serve_jsonl(server, io.StringIO("".join(lines)), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        return stats, {r["id"]: r for r in responses}, server

    def test_full_protocol(self, served, tmp_path):
        registry, dataset, gain_key, _ = served
        in_path, out_path = tmp_path / "b.csv", tmp_path / "b_out.csv"
        write_csv(dataset.take([0, 1, 2], name="bulk"), in_path)
        row = [
            None if np.isnan(v) else float(v) for v in dataset.values[0]
        ]
        lines = [
            json.dumps({"op": "ping", "id": "p"}) + "\n",
            json.dumps({"op": "keys", "id": "k"}) + "\n",
            json.dumps({"op": "impute", "id": "i", "key": gain_key, "rows": [row]}) + "\n",
            json.dumps(
                {
                    "op": "impute_csv",
                    "id": "c",
                    "key": gain_key,
                    "input": str(in_path),
                    "output": str(out_path),
                }
            )
            + "\n",
            json.dumps({"op": "shutdown", "id": "s"}) + "\n",
        ]
        stats, by_id, server = self._run(served, lines)
        assert by_id["p"]["op"] == "pong"
        assert gain_key in by_id["k"]["keys"]
        assert by_id["i"]["ok"] and len(by_id["i"]["rows"]) == 1
        assert all(c is not None for c in by_id["i"]["rows"][0])
        assert by_id["c"]["ok"] and by_id["c"]["n_rows"] == 3
        assert out_path.exists()
        # The shutdown ack arrives last, after every response has drained.
        assert by_id["s"]["ok"]
        assert by_id["s"]["served_requests"] == server.served_requests
        assert stats["errors"] == 0

    def test_eof_is_graceful_shutdown(self, served):
        registry, dataset, gain_key, _ = served
        row = [None if np.isnan(v) else float(v) for v in dataset.values[0]]
        lines = [
            json.dumps({"op": "impute", "id": "i", "key": gain_key, "rows": [row]})
            + "\n"
        ]
        stats, by_id, _ = self._run(served, lines)
        assert by_id["i"]["ok"]  # response written even though no shutdown op
        assert stats["responses"] == 1

    def test_bad_requests_answered_not_fatal(self, served):
        registry, dataset, gain_key, _ = served
        row = [None if np.isnan(v) else float(v) for v in dataset.values[0]]
        lines = [
            "not json\n",
            json.dumps({"op": "wat", "id": "w"}) + "\n",
            json.dumps({"op": "impute", "id": "m"}) + "\n",  # missing key/rows
            json.dumps({"op": "impute", "id": "i", "key": gain_key, "rows": [row]})
            + "\n",
        ]
        stats, by_id, _ = self._run(served, lines)
        assert stats["errors"] == 3
        assert by_id["i"]["ok"]  # the valid request still served

    def test_null_cells_are_missing_and_filled(self, served):
        registry, dataset, gain_key, _ = served
        width = dataset.n_features
        row = [None] * width
        lines = [
            json.dumps({"op": "impute", "id": "n", "key": gain_key, "rows": [row]})
            + "\n"
        ]
        _, by_id, _ = self._run(served, lines)
        assert by_id["n"]["ok"]
        assert all(isinstance(c, float) for c in by_id["n"]["rows"][0])
