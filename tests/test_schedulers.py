"""Learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    Adam,
    CosineAnnealing,
    ExponentialDecay,
    LinearWarmup,
    Scheduler,
    StepDecay,
)


def _optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestStepDecay:
    def test_decays_at_period(self):
        scheduler = StepDecay(_optimizer(), period=3, gamma=0.5)
        lrs = [scheduler.step() for _ in range(7)]
        assert lrs[:2] == [1.0, 1.0]
        assert lrs[2] == pytest.approx(0.5)
        assert lrs[5] == pytest.approx(0.25)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepDecay(_optimizer(), period=0)
        with pytest.raises(ValueError):
            StepDecay(_optimizer(), period=2, gamma=0.0)


class TestExponentialDecay:
    def test_geometric_sequence(self):
        scheduler = ExponentialDecay(_optimizer(), gamma=0.9)
        lrs = [scheduler.step() for _ in range(3)]
        assert lrs == pytest.approx([0.9, 0.81, 0.729])

    def test_gamma_one_is_constant(self):
        scheduler = ExponentialDecay(_optimizer(), gamma=1.0)
        assert scheduler.step() == 1.0


class TestCosineAnnealing:
    def test_endpoints(self):
        scheduler = CosineAnnealing(_optimizer(), period=10, minimum_lr=0.1)
        first = scheduler.step()
        for _ in range(9):
            last = scheduler.step()
        assert first < 1.0
        assert last == pytest.approx(0.1)

    def test_holds_minimum_after_period(self):
        scheduler = CosineAnnealing(_optimizer(), period=2, minimum_lr=0.05)
        for _ in range(5):
            lr = scheduler.step()
        assert lr == pytest.approx(0.05)

    def test_monotone_decreasing(self):
        scheduler = CosineAnnealing(_optimizer(), period=20)
        lrs = [scheduler.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestLinearWarmup:
    def test_ramps_then_holds(self):
        scheduler = LinearWarmup(_optimizer(), warmup=4)
        lrs = [scheduler.step() for _ in range(6)]
        assert lrs[:4] == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert lrs[4:] == [1.0, 1.0]

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            LinearWarmup(_optimizer(), warmup=0)


class TestSchedulerIntegration:
    def test_mutates_optimizer_lr(self):
        optimizer = _optimizer()
        scheduler = ExponentialDecay(optimizer, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)

    def test_base_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Scheduler(_optimizer()).step()

    def test_works_with_adam_training(self, rng):
        param = Parameter(np.array([4.0]))
        optimizer = Adam([param], lr=0.2)
        scheduler = CosineAnnealing(optimizer, period=100, minimum_lr=1e-4)
        for _ in range(100):
            optimizer.zero_grad()
            (param * param).backward()
            optimizer.step()
            scheduler.step()
        assert abs(param.data[0]) < 0.2
