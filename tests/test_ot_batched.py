"""Batched Sinkhorn: stacked-vs-loop parity, the SinkhornConfig redesign,
and the one-release deprecation shim for the old knob-argument spelling."""

import numpy as np
import pytest

from repro.ot import (
    BatchedSinkhornResult,
    SinkhornConfig,
    masking_sinkhorn_divergence,
    sinkhorn,
    sinkhorn_batched,
    sinkhorn_divergence,
)

PARITY_TOL = 1e-8


def _random_stack(rng, batch, n, m, scale=1.0):
    return scale * rng.random((batch, n, m))


def _loop_solve(cost, config, a=None, b=None, init=None):
    return [
        sinkhorn(
            cost[k],
            config,
            a=None if a is None else a[k],
            b=None if b is None else b[k],
            init=None if init is None else (init[0][k], init[1][k]),
        )
        for k in range(cost.shape[0])
    ]


def _assert_parity(stacked, looped):
    assert len(stacked) == len(looped)
    for k, single in enumerate(looped):
        problem = stacked.problem(k)
        np.testing.assert_allclose(problem.plan, single.plan, atol=PARITY_TOL)
        assert problem.value == pytest.approx(single.value, abs=PARITY_TOL)
        assert problem.transport_cost == pytest.approx(
            single.transport_cost, abs=PARITY_TOL
        )
        np.testing.assert_allclose(problem.f, single.f, atol=PARITY_TOL)
        np.testing.assert_allclose(problem.g, single.g, atol=PARITY_TOL)
        assert problem.iterations == single.iterations
        assert problem.converged == single.converged


class TestBatchedLoopParity:
    @pytest.mark.parametrize("batch", [1, 2, 7])
    def test_values_duals_iterations_match_loop(self, rng, batch):
        cost = _random_stack(rng, batch, 9, 6)
        config = SinkhornConfig(reg=0.3, max_iter=400, tol=1e-10)
        _assert_parity(sinkhorn_batched(cost, config), _loop_solve(cost, config))

    def test_uneven_marginals_match_loop(self, rng):
        batch, n, m = 4, 7, 5
        cost = _random_stack(rng, batch, n, m)
        a = rng.random((batch, n)) + 0.1
        a /= a.sum(axis=1, keepdims=True)
        b = rng.random((batch, m)) + 0.1
        b /= b.sum(axis=1, keepdims=True)
        config = SinkhornConfig(reg=0.4, max_iter=500, tol=1e-10)
        _assert_parity(
            sinkhorn_batched(cost, config, a=a, b=b),
            _loop_solve(cost, config, a=a, b=b),
        )

    def test_shared_marginal_vector_matches_loop(self, rng):
        batch, n, m = 3, 6, 6
        cost = _random_stack(rng, batch, n, m)
        a = np.full(n, 1.0 / n)
        b = rng.random(m) + 0.5
        b /= b.sum()
        config = SinkhornConfig(reg=0.5, max_iter=300, tol=1e-9)
        stacked = sinkhorn_batched(cost, config, a=a, b=b)
        looped = [sinkhorn(cost[k], config, a=a, b=b) for k in range(batch)]
        _assert_parity(stacked, looped)

    def test_early_converged_problem_inside_running_stack(self, rng):
        # Mixed difficulty: near-constant costs converge in a sweep or two
        # while sharp ones keep iterating; each frozen problem must report
        # exactly the loop solver's iteration count and duals.
        easy = 1e-3 * rng.random((2, 8, 8))
        hard = 5.0 * rng.random((3, 8, 8))
        cost = np.concatenate([easy[:1], hard[:2], easy[1:], hard[2:]])
        config = SinkhornConfig(reg=0.2, max_iter=600, tol=1e-10)
        stacked = sinkhorn_batched(cost, config)
        looped = _loop_solve(cost, config)
        iterations = [r.iterations for r in looped]
        assert min(iterations) < max(iterations)  # the mix actually mixes
        _assert_parity(stacked, looped)

    def test_nonconverged_problems_flagged(self, rng):
        cost = 10.0 * rng.random((2, 10, 10))
        config = SinkhornConfig(reg=0.05, max_iter=2, tol=1e-12)
        result = sinkhorn_batched(cost, config)
        assert not result.converged.any()
        assert (result.iterations == 2).all()
        assert (result.marginal_violation > config.tol).all()

    def test_stacked_warm_start_matches_loop_and_cuts_sweeps(self, rng):
        cost = _random_stack(rng, 3, 10, 10)
        config = SinkhornConfig(reg=0.3, max_iter=500, tol=1e-9)
        cold = sinkhorn_batched(cost, config)
        nearby = cost + 1e-4 * rng.random(cost.shape)
        warm = sinkhorn_batched(nearby, config, init=(cold.f, cold.g))
        _assert_parity(warm, _loop_solve(nearby, config, init=(cold.f, cold.g)))
        assert warm.iterations.sum() < cold.iterations.sum()

    def test_zero_init_rows_equal_cold_start(self, rng):
        # A partially warm stack expresses cold slots as zero rows; those
        # slots must behave exactly like an init-free solve.
        cost = _random_stack(rng, 2, 6, 6)
        config = SinkhornConfig(reg=0.4, max_iter=300, tol=1e-9)
        cold = sinkhorn_batched(cost, config)
        half_warm = sinkhorn_batched(
            cost,
            config,
            init=(
                np.vstack([cold.f[0], np.zeros(6)]),
                np.vstack([cold.g[0], np.zeros(6)]),
            ),
        )
        np.testing.assert_allclose(
            half_warm.plan[1], cold.plan[1], atol=PARITY_TOL
        )
        assert half_warm.iterations[1] == cold.iterations[1]

    def test_divergences_agree_between_paths(self, rng):
        x = rng.random((12, 4))
        y = rng.random((12, 4))
        mask = (rng.random((12, 4)) > 0.3).astype(float)
        config = SinkhornConfig(reg=0.5)
        assert sinkhorn_divergence(x, y, config) == pytest.approx(
            sinkhorn_divergence(x, y, config, batched=False), abs=PARITY_TOL
        )
        assert masking_sinkhorn_divergence(y, x, mask, config) == pytest.approx(
            masking_sinkhorn_divergence(y, x, mask, config, batched=False),
            abs=PARITY_TOL,
        )

    def test_unequal_row_counts_fall_back_to_loop(self, rng):
        # The three divergence problems have different shapes here, so the
        # stacked fast path cannot apply; the fallback must still answer.
        x = rng.random((8, 3))
        y = rng.random((5, 3))
        value = sinkhorn_divergence(x, y, SinkhornConfig(reg=0.5))
        assert np.isfinite(value)
        assert value == pytest.approx(
            sinkhorn_divergence(x, y, SinkhornConfig(reg=0.5), batched=False),
            abs=PARITY_TOL,
        )


class TestBatchedResult:
    def test_len_and_problem_roundtrip(self, rng):
        cost = _random_stack(rng, 3, 5, 4)
        result = sinkhorn_batched(cost, SinkhornConfig(reg=0.5))
        assert len(result) == 3
        single = result.problem(1)
        assert single.plan.shape == (5, 4)
        assert isinstance(single.value, float)
        assert isinstance(single.iterations, int)
        assert isinstance(single.converged, bool)

    def test_plan_marginals_match_requested(self, rng):
        batch, n, m = 3, 6, 4
        cost = _random_stack(rng, batch, n, m)
        a = rng.random((batch, n)) + 0.2
        a /= a.sum(axis=1, keepdims=True)
        result = sinkhorn_batched(
            cost, SinkhornConfig(reg=0.5, tol=1e-10), a=a
        )
        np.testing.assert_allclose(result.plan.sum(axis=2), a, atol=1e-9)
        np.testing.assert_allclose(
            result.plan.sum(axis=1), np.full((batch, m), 1.0 / m), atol=1e-9
        )


class TestBatchedValidation:
    def test_rejects_non_3d_cost(self, rng):
        with pytest.raises(ValueError, match=r"stacked \(B, n, m\)"):
            sinkhorn_batched(rng.random((4, 4)), SinkhornConfig(reg=0.5))

    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError, match="empty problem stack"):
            sinkhorn_batched(np.zeros((0, 3, 3)), SinkhornConfig(reg=0.5))

    def test_rejects_bad_marginal_shape(self, rng):
        cost = _random_stack(rng, 2, 4, 4)
        with pytest.raises(ValueError, match="marginal 'a'"):
            sinkhorn_batched(cost, SinkhornConfig(reg=0.5), a=np.full(3, 1 / 3))

    def test_nonpositive_marginal_names_problem_and_index(self, rng):
        cost = _random_stack(rng, 2, 4, 4)
        b = np.full((2, 4), 0.25)
        b[1, 2] = 0.0
        with pytest.raises(ValueError, match=r"b\[1\]\[2\]"):
            sinkhorn_batched(cost, SinkhornConfig(reg=0.5), b=b)

    def test_rejects_misshapen_init(self, rng):
        cost = _random_stack(rng, 2, 4, 4)
        with pytest.raises(ValueError, match="init duals"):
            sinkhorn_batched(
                cost,
                SinkhornConfig(reg=0.5),
                init=(np.zeros((2, 3)), np.zeros((2, 4))),
            )


class TestSinkhornConfig:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            SinkhornConfig(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="regulariser must be positive"):
            SinkhornConfig(reg=0.0)
        with pytest.raises(ValueError, match="regulariser must be positive"):
            SinkhornConfig(reg=float("nan"))
        with pytest.raises(ValueError, match="max_iter"):
            SinkhornConfig(reg=0.5, max_iter=0)
        with pytest.raises(ValueError, match="tol"):
            SinkhornConfig(reg=0.5, tol=0.0)

    def test_frozen(self):
        config = SinkhornConfig(reg=0.5)
        with pytest.raises(AttributeError):
            config.reg = 1.0


class TestDeprecationShim:
    @pytest.fixture()
    def cost(self, rng):
        return rng.random((5, 5))

    def test_positional_reg_warns_and_matches_config(self, cost):
        with pytest.warns(DeprecationWarning, match="SinkhornConfig"):
            legacy = sinkhorn(cost, 0.5, max_iter=200, tol=1e-8)
        fresh = sinkhorn(cost, SinkhornConfig(reg=0.5, max_iter=200, tol=1e-8))
        np.testing.assert_array_equal(legacy.plan, fresh.plan)
        assert legacy.value == fresh.value

    def test_keyword_reg_warns(self, cost):
        with pytest.warns(DeprecationWarning):
            sinkhorn(cost, reg=0.5)

    def test_batched_shares_the_shim(self, cost):
        with pytest.warns(DeprecationWarning):
            stacked = sinkhorn_batched(cost[None], 0.5)
        assert len(stacked) == 1

    def test_config_plus_legacy_kwargs_rejected(self, cost):
        with pytest.raises(TypeError, match="both a SinkhornConfig"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), max_iter=10)

    def test_double_reg_rejected(self, cost):
        with pytest.raises(TypeError, match="multiple values for 'reg'"):
            sinkhorn(cost, 0.5, reg=0.5)

    def test_unknown_kwarg_rejected(self, cost):
        with pytest.raises(TypeError, match="unexpected keyword"):
            sinkhorn(cost, 0.5, regularizer=0.5)

    def test_missing_reg_rejected(self, cost):
        with pytest.raises(TypeError, match="needs a SinkhornConfig"):
            sinkhorn(cost)

    def test_divergences_accept_legacy_form(self, rng):
        x = rng.random((6, 3))
        with pytest.warns(DeprecationWarning):
            legacy = sinkhorn_divergence(x, x, reg=0.5)
        assert legacy == pytest.approx(
            sinkhorn_divergence(x, x, SinkhornConfig(reg=0.5)), abs=1e-12
        )


class TestLossGradientParity:
    @pytest.fixture()
    def cloud(self, rng):
        n, d = 10, 4
        x = rng.random((n, d))
        x_bar = x + 0.1 * rng.normal(size=(n, d))
        mask = (rng.random((n, d)) > 0.3).astype(float)
        return x_bar, x, mask

    def _grad(self, batched, cloud):
        from repro.ot import MaskingSinkhornLoss
        from repro.tensor import Tensor

        x_bar, x, mask = cloud
        loss_fn = MaskingSinkhornLoss(
            reg=0.5, max_iter=500, tol=1e-9, batched=batched
        )
        x_bar_t = Tensor(x_bar, requires_grad=True)
        loss = loss_fn(x_bar_t, x, mask)
        loss.backward()
        return float(loss.data), x_bar_t.grad

    def test_batched_and_loop_losses_agree_to_gradient(self, cloud):
        value_b, grad_b = self._grad(True, cloud)
        value_l, grad_l = self._grad(False, cloud)
        assert value_b == pytest.approx(value_l, abs=PARITY_TOL)
        np.testing.assert_allclose(grad_b, grad_l, atol=PARITY_TOL)

    def test_batched_loss_gradcheck(self, rng):
        from repro.ot import MaskingSinkhornLoss
        from repro.tensor import Tensor, check_gradients

        n, d = 5, 3
        x = rng.random((n, d))
        mask = (rng.random((n, d)) > 0.3).astype(float)
        x_bar = Tensor(x + 0.1 * rng.normal(size=(n, d)), requires_grad=True)
        loss_fn = MaskingSinkhornLoss(
            reg=1.0, max_iter=1000, tol=1e-12, batched=True
        )
        check_gradients(
            lambda t: loss_fn(t, x, mask), [x_bar], atol=1e-4, rtol=1e-3
        )


class TestBatchedTelemetry:
    def test_counters_and_event_fields(self, rng):
        from repro.obs import recording

        cost = _random_stack(rng, 3, 6, 6)
        config = SinkhornConfig(reg=0.5, tol=1e-9)
        with recording() as rec:
            result = sinkhorn_batched(cost, config)
        counters = rec.metrics.snapshot()["counters"]
        assert counters["sinkhorn.solves"] == 3.0
        assert counters["sinkhorn.batched_solves"] == 1.0
        assert counters["sinkhorn.batched_problems"] == 3.0
        assert "sinkhorn.loop_solves" not in counters
        events = [e for e in rec.events if e.name == "sinkhorn.batched_solve"]
        assert len(events) == 1
        fields = events[0].fields
        assert fields["stack"] == 3
        assert fields["sweeps"] == int(result.iterations.max())
        assert fields["iterations"] == int(result.iterations.sum())
        assert fields["converged"] == 3
        assert fields["warm_started"] is False
