"""ASCII charts and the ε calibration utility."""

import numpy as np
import pytest

from repro.bench import ascii_chart, sparkline
from repro.core import calibrate_error_bounds
from repro.models import GAINImputer


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_constant_series(self):
        assert set(sparkline([5, 5, 5])) == {"▄"}

    def test_nan_renders_blank(self):
        line = sparkline([1.0, float("nan"), 2.0])
        assert line[1] == " "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "


class TestAsciiChart:
    def test_contains_axis_labels_and_legend(self):
        chart = ascii_chart(
            [0.1, 0.5, 0.9],
            {"gain": [1.0, 2.0, 3.0], "scis": [1.5, 1.5, 1.5]},
            title="demo",
        )
        assert "demo" in chart
        assert "* gain" in chart
        assert "o scis" in chart
        assert "0.1" in chart and "0.9" in chart

    def test_extremes_on_grid_edges(self):
        chart = ascii_chart([0, 1], {"y": [0.0, 10.0]}, height=5, width=20)
        lines = chart.splitlines()
        assert "10.0000" in lines[0]
        assert "0.0000" in lines[4]

    def test_no_finite_data(self):
        assert "no finite data" in ascii_chart([0], {"y": [float("nan")]})

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart([0, 1, 2], {"y": [2.0, 2.0, 2.0]})
        assert "2.0000" in chart


class TestCalibration:
    def test_curve_monotone(self, small_incomplete):
        from repro.core import DimConfig

        points = calibrate_error_bounds(
            GAINImputer(seed=0),
            small_incomplete,
            error_bounds=[0.005, 0.02, 0.08],
            initial_size=60,
            dim_config=DimConfig(epochs=8),
            seed=0,
        )
        assert [p.error_bound for p in points] == [0.005, 0.02, 0.08]
        # Larger tolerated error -> (weakly) fewer samples.
        assert points[0].n_star >= points[-1].n_star
        for point in points:
            assert 60 <= point.n_star <= small_incomplete.n_samples
            assert point.sample_rate == pytest.approx(
                point.n_star / small_incomplete.n_samples
            )

    def test_empty_bounds_raises(self, small_incomplete):
        with pytest.raises(ValueError):
            calibrate_error_bounds(GAINImputer(seed=0), small_incomplete, [])

    def test_oversized_split_raises(self, small_incomplete):
        with pytest.raises(ValueError):
            calibrate_error_bounds(
                GAINImputer(seed=0),
                small_incomplete,
                [0.01],
                initial_size=small_incomplete.n_samples,
            )
