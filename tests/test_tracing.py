"""Request-scoped tracing and the live telemetry plane.

The acceptance criterion pinned here: a JSONL serving session run under
``recording()`` yields, for every request, a single trace whose lifecycle
child spans (queue-wait, coalesce, execute, reply) account for >= 95% of
the request's measured wall-clock — including requests executed in fork
workers, whose absorbed spans must carry the parent trace_id.
"""

import io
import json
import threading
import time

import numpy as np
import pytest

from repro.data import MinMaxNormalizer, generate
from repro.models import KNNImputer, MeanImputer
from repro.obs import (
    InMemoryRecorder,
    LiveAggregator,
    QuantileDigest,
    SlidingWindow,
    StreamingRecorder,
    TraceContext,
    current_trace,
    format_trace_index,
    format_waterfall,
    prometheus_exposition,
    record_span,
    recording,
    span,
    spans_of_trace,
    start_trace,
    tail_events,
    trace_context,
    trace_ids,
    trace_to_dict,
)
from repro.parallel import ExecutionContext
from repro.serve import ImputationServer, ModelRegistry, ServeConfig, serve_jsonl


@pytest.fixture
def served(tmp_path):
    """A registry with two fast statistical entries plus the raw dataset."""
    generated = generate("trial", n_samples=60, seed=0)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(generated.dataset)
    registry = ModelRegistry(tmp_path / "registry")
    mean_key = registry.save(
        MeanImputer().fit(normalized), dataset=generated.dataset, normalizer=normalizer
    ).key
    knn_key = registry.save(
        KNNImputer().fit(normalized), dataset=generated.dataset, normalizer=normalizer
    ).key
    return registry, generated.dataset, mean_key, knn_key


LIFECYCLE = {"serve.queue_wait", "serve.coalesce", "serve.execute", "serve.reply"}


def _request_traces(trace):
    """Map trace_id -> spans for every serve.request-rooted trace."""
    out = {}
    for tid in trace_ids(trace):
        spans = spans_of_trace(trace, trace_id=tid)
        roots = [s for s in spans if s["parent_span_id"] is None]
        if len(roots) == 1 and roots[0]["name"] == "serve.request":
            out[tid] = spans
    return out


def _lifecycle_coverage(spans):
    """Fraction of the root's wall-clock covered by its lifecycle children."""
    root = next(s for s in spans if s["parent_span_id"] is None)
    children = [
        s
        for s in spans
        if s["parent_span_id"] == root["span_id"] and s["name"] in LIFECYCLE
    ]
    assert {s["name"] for s in children} == LIFECYCLE
    return sum(s["seconds"] for s in children) / root["seconds"]


class TestTraceContext:
    def test_child_links_to_parent(self):
        root = start_trace()
        assert root.parent_span_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id

    def test_round_trips_through_dict(self):
        ctx = start_trace().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_fresh_traces_have_distinct_ids(self):
        ids = {start_trace().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_trace_context_scopes_and_restores(self):
        assert current_trace() is None
        ctx = start_trace()
        with trace_context(ctx):
            assert current_trace() is ctx
            inner = ctx.child()
            with trace_context(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None


class TestSpan:
    def test_nested_spans_chain_contexts(self):
        with recording() as rec:
            with span("outer") as outer_ctx:
                with span("inner") as inner_ctx:
                    pass
        assert inner_ctx.trace_id == outer_ctx.trace_id
        assert inner_ctx.parent_span_id == outer_ctx.span_id
        spans = spans_of_trace(rec, trace_id=outer_ctx.trace_id)
        assert {s["name"] for s in spans} == {"outer", "inner"}
        inner = next(s for s in spans if s["name"] == "inner")
        outer = next(s for s in spans if s["name"] == "outer")
        # Start offsets are on the recorder clock and properly nested.
        assert outer["start"] <= inner["start"]
        assert inner["start"] + inner["seconds"] <= (
            outer["start"] + outer["seconds"] + 1e-6
        )

    def test_span_is_noop_when_disabled(self):
        with span("unrecorded") as ctx:
            assert ctx is None
        assert current_trace() is None

    def test_span_restores_context_on_exception(self):
        with recording():
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
            assert current_trace() is None

    def test_record_span_emits_fields_and_histogram(self):
        rec = InMemoryRecorder()
        ctx = start_trace()
        record_span("manual", ctx, 0.25, start=1.0, recorder=rec, shard=3)
        [event] = rec.events
        assert event.name == "span"
        assert event.fields["span"] == "manual"
        assert event.fields["seconds"] == 0.25
        assert event.fields["start"] == 1.0
        assert event.fields["shard"] == 3
        assert event.fields["trace_id"] == ctx.trace_id
        summary = rec.metrics.histogram("span.manual.seconds").summary()
        assert summary["count"] == 1

    def test_spans_of_trace_falls_back_to_event_time(self):
        rec = InMemoryRecorder()
        ctx = start_trace()
        record_span("no-start", ctx, 0.5, recorder=rec)
        [record] = spans_of_trace(rec)
        [event] = rec.events
        assert record["start"] == pytest.approx(event.t - 0.5)


class TestWaterfall:
    def test_renders_nested_bars(self):
        with recording() as rec:
            with span("root") as ctx:
                with span("step"):
                    time.sleep(0.002)
        text = format_waterfall(rec, ctx.trace_id)
        lines = text.splitlines()
        assert ctx.trace_id in lines[0]
        assert "root" in lines[1] and "#" in lines[1]
        # Child is indented under its parent.
        assert lines[2].index("step") > lines[1].index("root")

    def test_unknown_trace_id_raises(self):
        with recording() as rec:
            with span("root"):
                pass
        with pytest.raises(ValueError, match="no-such-id"):
            format_waterfall(rec, "no-such-id")

    def test_trace_index_lists_roots(self):
        with recording() as rec:
            with span("alpha") as a_ctx:
                pass
            with span("beta"):
                pass
        index = trace_ids(rec)
        assert len(index) == 2
        assert index[a_ctx.trace_id]["root"] == "alpha"
        assert a_ctx.trace_id in format_trace_index(rec)


class TestServingTraceAcceptance:
    def test_jsonl_session_spans_cover_wallclock_serial(self, served):
        registry, dataset, mean_key, _ = served
        requests = [
            json.dumps(
                {
                    "op": "impute",
                    "id": f"q{i}",
                    "key": mean_key,
                    "rows": [[None if c % 3 == 0 else float(c) for c in range(9)]],
                }
            )
            for i in range(5)
        ]
        stream = io.StringIO("\n".join(requests) + "\n")
        out = io.StringIO()
        with recording() as rec:
            server = ImputationServer(
                registry, config=ServeConfig(batch_window_seconds=0.002)
            )
            stats = serve_jsonl(server, stream, out)
        assert stats["errors"] == 0
        trace = trace_to_dict(rec)
        traces = _request_traces(trace)
        assert len(traces) == 5  # one trace per request
        for spans in traces.values():
            coverage = _lifecycle_coverage(spans)
            assert coverage >= 0.95
            # The four lifecycle children tile the root exactly.
            assert coverage == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parallel
    def test_fork_worker_spans_carry_parent_trace_id(self, served):
        registry, dataset, mean_key, knn_key = served
        with recording() as rec:
            server = ImputationServer(
                registry,
                config=ServeConfig(batch_window_seconds=0.002),
                context=ExecutionContext(backend="process", workers=2),
            )
            # Two keys enqueued before start -> the first dispatch holds two
            # groups, which is what sends execution through the fork pool.
            futures = [
                server.submit(mean_key if i % 2 == 0 else knn_key, dataset.values[i])
                for i in range(4)
            ]
            stream = io.StringIO(json.dumps({"op": "shutdown", "id": "bye"}) + "\n")
            out = io.StringIO()
            stats = serve_jsonl(server, stream, out)
        assert all(f.result().ok for f in futures)
        trace = trace_to_dict(rec)
        pool_batches = [
            e
            for e in trace["events"]
            if e["name"] == "parallel.tasks" and e["fields"]["backend"] == "process"
        ]
        assert pool_batches, "the two-key burst must engage the fork pool"
        traces = _request_traces(trace)
        assert len(traces) == 4
        for tid, spans in traces.items():
            assert _lifecycle_coverage(spans) >= 0.95
            # The model span was emitted inside a fork child, absorbed by
            # the parent, and still links into this request's trace.
            model = [s for s in spans if s["name"] == "serve.model"]
            assert len(model) == 1
            assert model[0]["trace_id"] == tid
            execute = next(s for s in spans if s["name"] == "serve.execute")
            assert model[0]["parent_span_id"] == execute["span_id"]
            # Clock anchoring: the child-recorded span's start lands inside
            # the parent-recorded execute window, not at trace t=0.
            assert model[0]["start"] >= execute["start"] - 1e-3

    def test_queue_wait_reflects_pre_start_delay(self, served):
        registry, dataset, mean_key, _ = served
        with recording() as rec:
            server = ImputationServer(
                registry, config=ServeConfig(batch_window_seconds=0.0)
            )
            future = server.submit(mean_key, dataset.values[0])
            time.sleep(0.05)  # queued, dispatcher not yet started
            server.start()
            assert future.result(timeout=60).ok
            server.shutdown()
        [spans] = _request_traces(trace_to_dict(rec)).values()
        queue_wait = next(s for s in spans if s["name"] == "serve.queue_wait")
        assert queue_wait["seconds"] >= 0.04


class TestServingTelemetrySatellites:
    def test_default_request_ids_are_monotonic_and_unique(self, served):
        registry, dataset, mean_key, _ = served
        server = ImputationServer(registry).start()
        try:
            ids = []
            for _ in range(8):
                # Sequential submits let each future die between requests —
                # the old id(future)-based ids could collide after GC.
                response = server.impute_rows(mean_key, dataset.values[0], timeout=60)
                ids.append(response.id)
        finally:
            server.shutdown()
        assert len(set(ids)) == 8
        numbers = [int(i[1:]) for i in ids]
        assert numbers == sorted(numbers)

    def test_errored_requests_observe_latency_and_name_the_key(self, served):
        registry, dataset, mean_key, _ = served
        with recording() as rec:
            server = ImputationServer(registry).start()
            ok = server.impute_rows(mean_key, dataset.values[0], timeout=60)
            bad = server.impute_rows("no-such-key", dataset.values[0], timeout=60)
            server.shutdown()
        assert ok.ok and not bad.ok
        trace = trace_to_dict(rec)
        latency = trace["metrics"]["histograms"]["serve.latency_seconds"]
        assert latency["count"] == 2  # error path observes too
        errors = [
            e
            for e in trace["events"]
            if e["name"] == "serve.request" and "error" in e["fields"]
        ]
        assert len(errors) == 1
        assert errors[0]["fields"]["key"] == "no-such-key"
        assert errors[0]["fields"]["latency_seconds"] > 0
        assert errors[0]["fields"]["trace_id"]
        # The errored request still gets a root span for its trace.
        spans = spans_of_trace(trace, trace_id=errors[0]["fields"]["trace_id"])
        assert [s["name"] for s in spans] == ["serve.request"]
        assert spans[0]["error"] is True

    def test_metrics_op_returns_wellformed_exposition(self, served):
        import re

        registry, dataset, mean_key, _ = served
        impute = json.dumps(
            {"op": "impute", "id": "r1", "key": mean_key, "rows": [[None] + [1.0] * 8]}
        )
        out = io.StringIO()
        with recording():
            # First session completes the impute (latency observed at drain);
            # the second session's metrics op then sees settled aggregates —
            # within one session the op is answered inline by the intake loop
            # and could race the dispatcher.
            serve_jsonl(
                ImputationServer(registry), io.StringIO(impute + "\n"), io.StringIO()
            )
            serve_jsonl(
                ImputationServer(registry),
                io.StringIO(json.dumps({"op": "metrics", "id": "m"}) + "\n"),
                out,
            )
        responses = {r["id"]: r for r in map(json.loads, out.getvalue().splitlines())}
        assert responses["m"]["ok"] and responses["m"]["op"] == "metrics"
        exposition = responses["m"]["exposition"]
        assert "# TYPE repro_serve_requests counter" in exposition
        assert 'repro_serve_latency_seconds{quantile="0.95"}' in exposition
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+(e[+-]?\d+)?$"
        )
        for line in exposition.strip().splitlines():
            assert line.startswith("#") or sample.match(line), line

    def test_metrics_op_without_recorder_is_a_placeholder(self, served):
        registry, *_ = served
        out = io.StringIO()
        server = ImputationServer(registry)
        serve_jsonl(
            server, io.StringIO(json.dumps({"op": "metrics", "id": "m"}) + "\n"), out
        )
        [response] = [json.loads(line) for line in out.getvalue().splitlines()]
        assert response["ok"]
        assert response["exposition"].startswith("#")


class TestShardedTracing:
    def test_sharded_run_emits_linked_spans(self, tmp_path):
        from repro.core.scis import ScisConfig
        from repro.core.sharded import fit_impute_sharded
        from repro.data.shards import write_dataset_sharded
        from repro.models import GAINImputer

        generated = generate("trial", n_samples=240, seed=0)
        store = write_dataset_sharded(generated.dataset, tmp_path / "in", shard_rows=80)
        with recording() as rec:
            fit_impute_sharded(
                store,
                tmp_path / "out",
                GAINImputer(epochs=1, seed=0),
                scis_config=ScisConfig(initial_size=40, error_bound=0.1, seed=0),
                seed=0,
            )
        index = trace_ids(rec)
        assert len(index) == 1
        tid = next(iter(index))
        assert index[tid]["root"] == "shard.fit_impute"
        spans = spans_of_trace(rec, trace_id=tid)
        root = next(s for s in spans if s["parent_span_id"] is None)
        children = [s for s in spans if s["parent_span_id"] == root["span_id"]]
        names = sorted(s["name"] for s in children)
        assert names == ["shard.impute", "shard.impute", "shard.impute", "shard.train"]
        shards = sorted(
            s["shard"] for s in children if s["name"] == "shard.impute"
        )
        assert shards == [0, 1, 2]


class TestQuantileDigestAndWindows:
    def test_digest_quantiles_track_uniform_stream(self):
        digest = QuantileDigest(max_centroids=128)
        values = [((i * 7919) % 10007) / 10007.0 for i in range(5000)]
        for value in values:
            digest.add(value)
        exact = sorted(values)
        for q in (0.5, 0.95, 0.99):
            estimate = digest.quantile(q)
            truth = exact[int(q * (len(exact) - 1))]
            assert abs(estimate - truth) < 0.03, (q, estimate, truth)
        assert digest.min == min(values)
        assert digest.max == max(values)
        assert digest.count == len(values)

    def test_digest_is_deterministic(self):
        def build():
            digest = QuantileDigest(max_centroids=32)
            for i in range(1000):
                digest.add((i * 31) % 97)
            return digest

        assert build().summary() == build().summary()

    def test_digest_merge_matches_single_stream(self):
        left, right, both = QuantileDigest(), QuantileDigest(), QuantileDigest()
        for i in range(500):
            (left if i % 2 else right).add(float(i))
            both.add(float(i))
        left.merge(right)
        assert left.count == both.count
        assert left.quantile(0.5) == pytest.approx(both.quantile(0.5), rel=0.05)

    def test_digest_empty_and_bounds(self):
        digest = QuantileDigest()
        assert digest.quantile(0.5) is None
        digest.add(3.0)
        assert digest.quantile(0.0) == 3.0
        assert digest.quantile(1.0) == 3.0
        with pytest.raises(ValueError):
            digest.quantile(1.5)

    def test_sliding_window_ages_out_old_buckets(self):
        window = SlidingWindow(window_seconds=10.0, buckets=10)
        for t in range(5):
            window.observe(float(t), 100.0)  # old regime
        for t in range(20, 25):
            window.observe(float(t), 1.0)  # new regime
        snap = window.snapshot(now=25.0)
        assert snap["count"] == 5  # the old regime aged out
        assert snap["p50"] == pytest.approx(1.0)
        assert snap["window_seconds"] == 10.0

    def test_live_aggregator_routes_latency_and_spans(self):
        aggregator = LiveAggregator(window_seconds=60.0)
        for i in range(10):
            aggregator.ingest(
                {
                    "name": "serve.request",
                    "t": float(i),
                    "fields": {"latency_seconds": 0.01 * (i + 1)},
                }
            )
            aggregator.ingest(
                {
                    "name": "span",
                    "t": float(i),
                    "fields": {"span": "serve.execute", "seconds": 0.002},
                }
            )
        assert set(aggregator.windows) == {
            "serve.latency_seconds",
            "span.serve.execute.seconds",
        }
        text = aggregator.render()
        assert "serve.latency_seconds" in text
        assert "p95" in text


class TestPrometheusExposition:
    def test_counters_gauges_histograms(self):
        rec = InMemoryRecorder()
        rec.inc("serve.requests", 3)
        rec.set_gauge("serve.queue_depth", 2)
        for value in (0.01, 0.02, 0.03):
            rec.observe("serve.latency_seconds", value)
        text = prometheus_exposition(rec.metrics.snapshot())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 3.0" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_latency_seconds summary" in text
        assert 'repro_serve_latency_seconds{quantile="0.5"} 0.02' in text
        assert "repro_serve_latency_seconds_sum" in text
        assert "repro_serve_latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_accepts_trace_dict_and_skips_unset_gauges(self):
        rec = InMemoryRecorder()
        rec.inc("a.b")
        rec.metrics.gauge("unset.gauge")  # created but never set
        text = prometheus_exposition(rec.to_dict())
        assert "repro_a_b" in text
        assert "unset_gauge" not in text

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            prometheus_exposition(42)


class TestStreamingAndTail:
    def test_streaming_recorder_tees_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with StreamingRecorder(path) as rec:
            rec.emit("alpha", x=1)
            rec.emit("beta", y="z")
        events = list(tail_events(path))
        assert [e["name"] for e in events] == ["alpha", "beta"]
        assert events[0]["fields"] == {"x": 1}
        # The in-memory side still has the full trace.
        assert [e.name for e in rec.events] == ["alpha", "beta"]

    def test_tail_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"name": "good", "t": 0.0, "fields": {}})
            + "\nnot json\n\n"
            + json.dumps({"name": "also-good", "t": 1.0, "fields": {}})
            + "\n"
        )
        assert [e["name"] for e in tail_events(path)] == ["good", "also-good"]

    def test_tail_follow_sees_appended_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"name": "first", "t": 0.0, "fields": {}}) + "\n")
        seen = []
        done = threading.Event()

        def consume():
            for event in tail_events(
                path, follow=True, poll_seconds=0.01, should_stop=done.is_set
            ):
                seen.append(event["name"])
                if len(seen) == 2:
                    done.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.05)
        with open(path, "a") as handle:
            handle.write(json.dumps({"name": "second", "t": 1.0, "fields": {}}) + "\n")
        consumer.join(timeout=5)
        assert not consumer.is_alive()
        assert seen == ["first", "second"]

    def test_serve_streams_live_events_for_tailing(self, served, tmp_path):
        registry, dataset, mean_key, _ = served
        path = tmp_path / "live.jsonl"
        with recording(StreamingRecorder(path)) as rec:
            server = ImputationServer(registry).start()
            server.impute_rows(mean_key, dataset.values[0], timeout=60)
            server.shutdown()
        rec.close()
        aggregator = LiveAggregator()
        for event in tail_events(path):
            aggregator.ingest(event)
        assert "serve.latency_seconds" in aggregator.windows
        assert any(name.startswith("span.serve.") for name in aggregator.windows)
