"""Gradient checks and semantics for every autodiff op."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, ops


def _t(rng, *shape, positive=False):
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestBinaryOps:
    def test_add_gradcheck(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradients(lambda a, b: a + b, [a, b])

    def test_sub_gradcheck(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradients(lambda a, b: a - b, [a, b])

    def test_mul_gradcheck(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        check_gradients(lambda a, b: a * b, [a, b])

    def test_div_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        b = _t(rng, 3, 4, positive=True)
        check_gradients(lambda a, b: a / b, [a, b])

    def test_broadcast_row_vector(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda a, b: a + b, [a, b])
        check_gradients(lambda a, b: a * b, [a, b])

    def test_broadcast_column_vector(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 1)
        check_gradients(lambda a, b: a * b, [a, b])

    def test_broadcast_scalar_constant(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda a: 2.5 * a + 1.0 - a / 2.0, [a])

    def test_rsub_rdiv(self, rng):
        a = _t(rng, 3, positive=True)
        check_gradients(lambda a: 1.0 - a, [a])
        check_gradients(lambda a: 1.0 / a, [a])

    def test_pow_gradcheck(self, rng):
        a = _t(rng, 3, 4, positive=True)
        check_gradients(lambda a: a**3, [a])
        check_gradients(lambda a: a**0.5, [a])

    def test_neg(self, rng):
        a = _t(rng, 5)
        check_gradients(lambda a: -a, [a])


class TestMatmul:
    def test_matrix_matrix(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 5)
        check_gradients(lambda a, b: a @ b, [a, b])

    def test_vector_matrix(self, rng):
        v, m = _t(rng, 4), _t(rng, 4, 2)
        check_gradients(lambda v, m: v @ m, [v, m])

    def test_matrix_vector(self, rng):
        m, v = _t(rng, 2, 4), _t(rng, 4)
        check_gradients(lambda m, v: m @ v, [m, v])

    def test_inner_product(self, rng):
        u, v = _t(rng, 4), _t(rng, 4)
        check_gradients(lambda u, v: u @ v, [u, v])

    def test_value_matches_numpy(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 5)
        assert np.allclose((a @ b).data, a.data @ b.data)


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        [ops.exp, ops.tanh, ops.sigmoid, ops.softplus, ops.relu, ops.leaky_relu, ops.abs],
    )
    def test_gradcheck(self, rng, op):
        a = Tensor(rng.normal(size=(4, 3)) + 0.05, requires_grad=True)
        check_gradients(lambda a: op(a), [a])

    def test_log_gradcheck(self, rng):
        a = _t(rng, 4, 3, positive=True)
        check_gradients(lambda a: ops.log(a), [a])

    def test_sqrt_gradcheck(self, rng):
        a = _t(rng, 4, 3, positive=True)
        check_gradients(lambda a: ops.sqrt(a), [a])

    def test_sigmoid_range(self, rng):
        a = _t(rng, 10)
        out = ops.sigmoid(a).data
        assert (out > 0).all() and (out < 1).all()

    def test_relu_zeroes_negatives(self):
        out = ops.relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.array_equal(out.data, [0.0, 0.0, 2.0])

    def test_softplus_stable_at_extremes(self):
        out = ops.softplus(Tensor([-1000.0, 0.0, 1000.0]))
        assert np.isfinite(out.data).all()
        assert out.data[2] == pytest.approx(1000.0)

    def test_clip_gradient_masked(self, rng):
        a = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        ops.clip(a, -1.0, 1.0).sum().backward()
        assert np.array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self, rng):
        a = _t(rng, 5, 7)
        out = ops.softmax(a, axis=1).data
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_softmax_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        weights = Tensor(rng.normal(size=(4,)))
        check_gradients(lambda a: ops.softmax(a, axis=1) @ weights, [a])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        a = _t(rng, 3, 4)
        assert np.allclose(
            ops.log_softmax(a, axis=1).data, np.log(ops.softmax(a, axis=1).data)
        )

    def test_log_softmax_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda a: ops.log_softmax(a, axis=-1).mean(), [a])


class TestReductions:
    @pytest.mark.parametrize("axis", [None, 0, 1])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_sum_gradcheck(self, rng, axis, keepdims):
        a = _t(rng, 3, 4)
        check_gradients(lambda a: a.sum(axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean_gradcheck(self, rng, axis):
        a = _t(rng, 3, 4)
        check_gradients(lambda a: a.mean(axis=axis), [a])

    def test_mean_value(self, rng):
        a = _t(rng, 3, 4)
        assert a.mean().item() == pytest.approx(a.data.mean())

    def test_max_gradcheck(self, rng):
        a = _t(rng, 4, 5)
        check_gradients(lambda a: ops.max(a, axis=0), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor([2.0, 2.0, 1.0], requires_grad=True)
        ops.max(a).backward()
        assert np.allclose(a.grad, [0.5, 0.5, 0.0])

    def test_sum_tuple_axis(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradients(lambda a: a.sum(axis=(0, 2)), [a])


class TestShapeOps:
    def test_reshape_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda a: a.reshape(2, 6), [a])
        check_gradients(lambda a: a.reshape(-1), [a])

    def test_transpose_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda a: a.T, [a])

    def test_transpose_axes(self, rng):
        a = _t(rng, 2, 3, 4)
        check_gradients(lambda a: a.transpose((2, 0, 1)), [a])

    def test_concat_gradcheck(self, rng):
        a, b = _t(rng, 3, 2), _t(rng, 3, 4)
        check_gradients(lambda a, b: ops.concat([a, b], axis=1), [a, b])

    def test_concat_axis0(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 4, 3)
        out = ops.concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda a, b: ops.concat([a, b], axis=0), [a, b])

    def test_getitem_slice(self, rng):
        a = _t(rng, 5, 4)
        check_gradients(lambda a: a[1:4, :2], [a])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        out = a[np.array([0, 0, 2])]
        out.sum().backward()
        assert np.array_equal(a.grad, [2.0, 0.0, 1.0])

    def test_where_gradcheck(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 3, 4)
        condition = rng.random((3, 4)) > 0.5
        check_gradients(lambda a, b: ops.where(condition, a, b), [a, b])


def _sweep_cases(rng):
    """One gradcheck case per differentiable op in ``ops.__all__``.

    Inputs steer clear of kinks (relu/abs at 0, clip at its bounds, max
    ties) so finite differences stay well-posed.
    """

    def t(*shape, shift=0.0):
        return Tensor(rng.normal(size=shape) + shift, requires_grad=True)

    def pos(*shape):
        return Tensor(np.abs(rng.normal(size=shape)) + 0.5, requires_grad=True)

    condition = rng.random((3, 4)) > 0.5
    weights = Tensor(rng.normal(size=(4,)))
    clip_data = Tensor(
        np.array([[-2.0, -0.5, 0.3, 1.7], [0.6, -1.6, 2.1, 0.0]]),
        requires_grad=True,
    )
    return {
        "add": (lambda a, b: ops.add(a, b), [t(3, 4), t(3, 4)]),
        "sub": (lambda a, b: ops.sub(a, b), [t(3, 4), t(3, 4)]),
        "mul": (lambda a, b: ops.mul(a, b), [t(3, 4), t(3, 4)]),
        "div": (lambda a, b: ops.div(a, b), [t(3, 4), pos(3, 4)]),
        "neg": (lambda a: ops.neg(a), [t(3, 4)]),
        "pow": (lambda a: ops.pow(a, 3.0), [pos(3, 4)]),
        "matmul": (lambda a, b: ops.matmul(a, b), [t(3, 4), t(4, 2)]),
        "exp": (lambda a: ops.exp(a), [t(4, 3)]),
        "log": (lambda a: ops.log(a), [pos(4, 3)]),
        "sqrt": (lambda a: ops.sqrt(a), [pos(4, 3)]),
        "abs": (lambda a: ops.abs(a), [t(4, 3, shift=0.05)]),
        "tanh": (lambda a: ops.tanh(a), [t(4, 3)]),
        "sigmoid": (lambda a: ops.sigmoid(a), [t(4, 3)]),
        "relu": (lambda a: ops.relu(a), [t(4, 3, shift=0.05)]),
        "leaky_relu": (lambda a: ops.leaky_relu(a), [t(4, 3, shift=0.05)]),
        "softplus": (lambda a: ops.softplus(a), [t(4, 3)]),
        "softmax": (lambda a: ops.softmax(a, axis=1) @ weights, [t(3, 4)]),
        "log_softmax": (
            lambda a: ops.log_softmax(a, axis=-1).mean(),
            [t(3, 4)],
        ),
        "logsumexp": (lambda a: ops.logsumexp(a, axis=1), [t(3, 4)]),
        "clip": (lambda a: ops.clip(a, -1.0, 1.0), [clip_data]),
        "sum": (lambda a: ops.sum(a, axis=1), [t(3, 4)]),
        "mean": (lambda a: ops.mean(a, axis=0), [t(3, 4)]),
        "max": (lambda a: ops.max(a, axis=0), [t(4, 5)]),
        "reshape": (lambda a: ops.reshape(a, (2, 6)), [t(3, 4)]),
        "transpose": (lambda a: ops.transpose(a), [t(3, 4)]),
        "concat": (
            lambda a, b: ops.concat([a, b], axis=1),
            [t(3, 2), t(3, 4)],
        ),
        "getitem": (lambda a: ops.getitem(a, (slice(1, 4), slice(0, 2))), [t(5, 4)]),
        "where": (lambda a, b: ops.where(condition, a, b), [t(3, 4), t(3, 4)]),
    }


class TestGradcheckSweep:
    """Coverage gate: every op in ``ops.__all__`` must carry a gradcheck case.

    Adding an op to the table without extending ``_sweep_cases`` fails here
    by construction, so autodiff coverage cannot silently rot.
    """

    # Ops that return plain ndarrays and never touch the tape.
    NON_TAPE_OPS = {"dropout_mask"}

    @pytest.mark.parametrize("name", sorted(ops.__all__))
    def test_op_has_passing_gradcheck(self, rng, name):
        if name in self.NON_TAPE_OPS:
            out = ops.dropout_mask((3, 4), 0.25, rng)
            assert isinstance(out, np.ndarray) and not isinstance(out, Tensor)
            return
        cases = _sweep_cases(rng)
        assert name in cases, (
            f"ops.{name} has no gradcheck case; add one to _sweep_cases"
        )
        fn, inputs = cases[name]
        check_gradients(fn, inputs)

    def test_sweep_has_no_stale_entries(self, rng):
        stale = set(_sweep_cases(rng)) - set(ops.__all__)
        assert not stale, f"_sweep_cases covers removed ops: {stale}"


class TestDropoutMask:
    def test_zero_rate_is_identity(self, rng):
        mask = ops.dropout_mask((100, 10), 0.0, rng)
        assert np.array_equal(mask, np.ones((100, 10)))

    def test_mean_preserving(self, rng):
        mask = ops.dropout_mask((2000, 50), 0.5, rng)
        assert mask.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            ops.dropout_mask((2, 2), 1.0, rng)
        with pytest.raises(ValueError):
            ops.dropout_mask((2, 2), -0.1, rng)
