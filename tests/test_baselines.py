"""Bench baselines: snapshots, diffing, the smoke bench, and the diff CLI."""

import json
import subprocess
import sys

import pytest

from repro.bench import MethodResult, run_smoke_bench
from repro.bench.baselines import (
    DEFAULT_TIME_THRESHOLD,
    diff_baselines,
    format_diff,
    is_time_metric,
    load_baseline,
    snapshot_from_results,
    snapshot_from_trace,
    write_baseline,
)
from repro.obs import recording, trace_to_dict, write_json_trace


def _results():
    return [
        MethodResult(
            method="mean", dataset="trial", rmse_mean=0.3, rmse_std=0.0, seconds=0.01
        ),
        MethodResult(
            method="dim-gain",
            dataset="trial",
            rmse_mean=0.2,
            rmse_std=0.01,
            seconds=1.5,
        ),
    ]


class TestSnapshots:
    def test_snapshot_from_results_schema(self):
        baseline = snapshot_from_results(_results(), name="unit")
        assert baseline["kind"] == "bench-baseline"
        assert baseline["version"] == 1
        assert baseline["metrics"]["rmse.mean.trial"] == 0.3
        assert baseline["metrics"]["seconds.dim-gain.trial"] == 1.5

    def test_snapshot_skips_non_finite(self):
        results = [MethodResult(method="m", dataset="d")]  # all-nan defaults
        metrics = snapshot_from_results(results, name="x")["metrics"]
        assert "rmse.m.d" not in metrics and "seconds.m.d" not in metrics

    def test_snapshot_from_trace_pulls_bench_and_solver_metrics(self):
        trace = {
            "events": [
                {
                    "name": "bench.result",
                    "t": 0.0,
                    "fields": {
                        "method": "mean",
                        "dataset": "trial",
                        "rmse_mean": 0.31,
                        "seconds": 0.02,
                        "timed_out": False,
                    },
                },
                {
                    "name": "bench.result",
                    "t": 0.1,
                    "fields": {"method": "slow", "dataset": "trial", "timed_out": True},
                },
            ],
            "metrics": {
                "histograms": {
                    "sinkhorn.iterations": {"count": 4, "mean": 12.5},
                    "span.dim.epoch.seconds": {"count": 2, "mean": 0.8},
                }
            },
        }
        metrics = snapshot_from_trace(trace, name="t")["metrics"]
        assert metrics["rmse.mean.trial"] == 0.31
        assert metrics["sinkhorn.iterations"] == 12.5
        assert metrics["dim.epoch_seconds"] == 0.8
        assert not any("slow" in key for key in metrics)  # timed-out run skipped

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        write_baseline(snapshot_from_results(_results(), name="unit"), path)
        loaded = load_baseline(path)
        assert loaded["name"] == "unit"
        assert loaded["metrics"]["rmse.dim-gain.trial"] == 0.2

    def test_load_rejects_wrong_kind_and_version(self, tmp_path):
        bad_kind = tmp_path / "a.json"
        bad_kind.write_text(json.dumps({"kind": "other", "metrics": {}}))
        with pytest.raises(ValueError):
            load_baseline(bad_kind)
        bad_version = tmp_path / "b.json"
        bad_version.write_text(
            json.dumps({"kind": "bench-baseline", "version": 99, "metrics": {}})
        )
        with pytest.raises(ValueError):
            load_baseline(bad_version)

    def test_load_distills_raw_trace(self, tmp_path):
        with recording() as rec:
            rec.emit(
                "bench.result",
                method="mean",
                dataset="trial",
                rmse_mean=0.3,
                seconds=0.1,
                timed_out=False,
            )
        path = write_json_trace(rec, tmp_path / "trace.json")
        baseline = load_baseline(path)
        assert baseline["kind"] == "bench-baseline"
        assert baseline["metrics"]["rmse.mean.trial"] == 0.3


class TestDiff:
    def test_time_metrics_classified(self):
        assert is_time_metric("seconds.mean.trial")
        assert is_time_metric("dim.epoch_seconds")
        assert not is_time_metric("rmse.mean.trial")
        assert not is_time_metric("sinkhorn.iterations")

    def test_identical_baselines_have_no_regressions(self):
        baseline = snapshot_from_results(_results(), name="a")
        deltas = diff_baselines(baseline, baseline)
        assert deltas and not any(d.regressed for d in deltas)

    def test_detects_2x_slowdown(self):
        """Acceptance: an injected 2x slowdown must regress at defaults."""
        base = snapshot_from_results(_results(), name="a")
        cand = json.loads(json.dumps(base))
        cand["metrics"]["seconds.dim-gain.trial"] *= 2.0
        deltas = diff_baselines(base, cand)
        bad = [d for d in deltas if d.regressed]
        assert [d.metric for d in bad] == ["seconds.dim-gain.trial"]
        assert bad[0].rel_change == pytest.approx(1.0)

    def test_time_threshold_separates_rmse_gate(self):
        base = snapshot_from_results(_results(), name="a")
        cand = json.loads(json.dumps(base))
        cand["metrics"]["seconds.dim-gain.trial"] *= 2.0
        cand["metrics"]["rmse.mean.trial"] *= 1.3  # +30% > 0.25 gate
        deltas = diff_baselines(base, cand, time_threshold=1e9)
        bad = {d.metric for d in deltas if d.regressed}
        assert bad == {"rmse.mean.trial"}  # timings muted, rmse still gated

    def test_improvements_never_regress(self):
        base = snapshot_from_results(_results(), name="a")
        cand = json.loads(json.dumps(base))
        for key in cand["metrics"]:
            cand["metrics"][key] *= 0.5
        assert not any(d.regressed for d in diff_baselines(base, cand))

    def test_one_sided_metrics_reported_but_not_regressed(self):
        base = snapshot_from_results(_results(), name="a")
        cand = json.loads(json.dumps(base))
        cand["metrics"]["extra.metric"] = 1.0
        del cand["metrics"]["rmse.mean.trial"]
        deltas = {d.metric: d for d in diff_baselines(base, cand)}
        assert deltas["extra.metric"].missing
        assert deltas["rmse.mean.trial"].missing
        assert not deltas["extra.metric"].regressed

    def test_format_diff_marks_regressions(self):
        base = snapshot_from_results(_results(), name="a")
        cand = json.loads(json.dumps(base))
        cand["metrics"]["seconds.dim-gain.trial"] *= 2.0
        text = format_diff(diff_baselines(base, cand))
        flagged = [line for line in text.splitlines() if line.startswith("!")]
        assert len(flagged) == 1 and "seconds.dim-gain.trial" in flagged[0]
        assert "1 regression" in text

    def test_default_time_threshold_catches_doubling(self):
        assert 1.0 > DEFAULT_TIME_THRESHOLD


class TestSmokeBenchAndCli:
    def test_run_smoke_bench_produces_five_methods(self):
        with recording() as rec:
            results = run_smoke_bench(n_samples=48, epochs=1)
        assert {r.method for r in results} == {
            "mean", "knn", "dim-gain", "dim-gain-adv", "otdirect",
        }
        assert all(r.available for r in results)
        metrics = snapshot_from_trace(trace_to_dict(rec), name="s")["metrics"]
        assert "sinkhorn.iterations" in metrics  # the DIM leg exercises the solver

    def test_cli_diff_exit_codes(self, tmp_path):
        base_path = tmp_path / "BENCH_a.json"
        write_baseline(snapshot_from_results(_results(), name="a"), base_path)
        cand = snapshot_from_results(_results(), name="b")
        cand["metrics"]["seconds.dim-gain.trial"] *= 2.0
        cand_path = tmp_path / "BENCH_b.json"
        write_baseline(cand, cand_path)

        def run(*argv):
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                capture_output=True,
                text=True,
            )

        same = run("obs", "diff", str(base_path), str(base_path))
        assert same.returncode == 0
        slow = run("obs", "diff", str(base_path), str(cand_path))
        assert slow.returncode == 1
        assert "seconds.dim-gain.trial" in slow.stdout
        muted = run(
            "obs", "diff", str(base_path), str(cand_path), "--time-threshold", "1e9"
        )
        assert muted.returncode == 0
        missing = run("obs", "diff", str(base_path), str(tmp_path / "nope.json"))
        assert missing.returncode == 2
        assert len(missing.stderr.strip().splitlines()) == 1
        one_arg = run("obs", "diff", str(base_path))
        assert one_arg.returncode == 2
