"""LayerNorm, BatchNorm1d, and DIM early stopping."""

import numpy as np
import pytest

from repro.core import DIM, DimConfig
from repro.data import holdout_split
from repro.models import GAINImputer
from repro.nn import BatchNorm1d, LayerNorm, Linear, Sequential
from repro.tensor import Tensor, check_gradients


class TestLayerNorm:
    def test_normalises_rows(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.normal(3.0, 5.0, size=(10, 6)))).data
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        layer = LayerNorm(4)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x], atol=1e-4)

    def test_affine_parameters_learnable(self, rng):
        layer = LayerNorm(4)
        assert len(layer.parameters()) == 2
        x = Tensor(rng.normal(size=(3, 4)))
        layer(x).sum().backward()
        assert layer.gain.grad is not None

    def test_stacks_with_linear(self, rng):
        net = Sequential(Linear(5, 8, rng=rng), LayerNorm(8), Linear(8, 2, rng=rng))
        out = net(Tensor(rng.normal(size=(4, 5))))
        assert out.shape == (4, 2)


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm1d(3)
        out = layer(Tensor(rng.normal(2.0, 3.0, size=(200, 3)))).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_converge(self, rng):
        layer = BatchNorm1d(2, momentum=0.5)
        data = rng.normal(5.0, 2.0, size=(500, 2))
        for _ in range(20):
            layer(Tensor(data))
        assert np.allclose(layer.running_mean, 5.0, atol=0.5)
        assert np.allclose(layer.running_var, 4.0, atol=1.0)

    def test_eval_mode_uses_running_stats(self, rng):
        layer = BatchNorm1d(2, momentum=1.0)
        data = rng.normal(size=(100, 2))
        layer(Tensor(data))  # sets running stats to batch stats
        layer.eval()
        single = layer(Tensor(data[:1])).data
        assert np.isfinite(single).all()

    def test_gradcheck_training_mode(self, rng):
        layer = BatchNorm1d(3)

        def f(x):
            # Freeze running-stat side effects for the finite-difference probe.
            layer.running_mean = np.zeros(3)
            layer.running_var = np.ones(3)
            return layer(x)

        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        check_gradients(f, [x], atol=1e-4)


class TestDimEarlyStopping:
    def test_stops_before_budget(self, small_incomplete, rng):
        holdout = holdout_split(small_incomplete, 0.2, rng)
        config = DimConfig(
            epochs=60,
            early_stopping_patience=2,
            early_stopping_min_delta=1e-3,
        )
        report = DIM(config).train(GAINImputer(seed=0), holdout.train, rng)
        assert report.epochs < 60

    def test_disabled_by_default(self, small_incomplete, rng):
        holdout = holdout_split(small_incomplete, 0.2, rng)
        report = DIM(DimConfig(epochs=5)).train(GAINImputer(seed=0), holdout.train, rng)
        assert report.epochs == 5

    def test_huge_patience_runs_full_budget(self, small_incomplete, rng):
        holdout = holdout_split(small_incomplete, 0.2, rng)
        config = DimConfig(epochs=4, early_stopping_patience=100)
        report = DIM(config).train(GAINImputer(seed=0), holdout.train, rng)
        assert report.epochs == 4
