"""Data layer: dataset container, normalisation, missingness, generators, IO."""

import numpy as np
import pytest

from repro.data import (
    SPECS,
    IncompleteDataset,
    MinMaxNormalizer,
    Standardizer,
    ampute,
    dataset_names,
    generate,
    holdout_split,
    iterate_batches,
    read_csv,
    write_csv,
)


@pytest.fixture
def toy():
    values = np.array(
        [
            [1.0, np.nan, 3.0],
            [4.0, 5.0, np.nan],
            [7.0, 8.0, 9.0],
        ]
    )
    return IncompleteDataset(values, name="toy")


class TestIncompleteDataset:
    def test_mask_tracks_nan(self, toy):
        expected = np.array([[1, 0, 1], [1, 1, 0], [1, 1, 1]], dtype=float)
        assert np.array_equal(toy.mask, expected)

    def test_missing_rate(self, toy):
        assert toy.missing_rate == pytest.approx(2 / 9)

    def test_default_feature_names(self, toy):
        assert toy.feature_names == ["f0", "f1", "f2"]

    def test_shape_accessors(self, toy):
        assert toy.shape == (3, 3)
        assert toy.n_samples == 3
        assert toy.n_features == 3
        assert len(toy) == 3

    def test_filled(self, toy):
        filled = toy.filled(-1.0)
        assert filled[0, 1] == -1.0
        assert filled[0, 0] == 1.0

    def test_from_mask_constructor(self):
        full = np.arange(6, dtype=float).reshape(2, 3)
        mask = np.array([[1, 0, 1], [1, 1, 1]])
        ds = IncompleteDataset.from_mask(full, mask)
        assert np.isnan(ds.values[0, 1])
        assert ds.values[1, 2] == 5.0

    def test_take_copies(self, toy):
        subset = toy.take([0, 2])
        subset.values[0, 0] = 99.0
        assert toy.values[0, 0] == 1.0

    def test_subsample_size_check(self, toy, rng):
        with pytest.raises(ValueError):
            toy.subsample(10, rng)

    def test_split_disjoint(self, rng):
        ds = IncompleteDataset(rng.normal(size=(100, 3)))
        split = ds.split_validation_initial(20, 30, rng)
        assert split.validation.n_samples == 20
        assert split.initial.n_samples == 30
        assert not set(split.validation_indices) & set(split.initial_indices)

    def test_split_too_large_raises(self, rng):
        ds = IncompleteDataset(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            ds.split_validation_initial(6, 6, rng)

    def test_column_means_ignore_missing(self, toy):
        means = toy.column_means()
        assert means[1] == pytest.approx((5.0 + 8.0) / 2)

    def test_invalid_feature_type_raises(self):
        with pytest.raises(ValueError):
            IncompleteDataset(np.zeros((2, 2)), feature_types=["continuous", "weird"])

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            IncompleteDataset(np.zeros(5))

    def test_observed_count(self, toy):
        assert toy.observed_count() == 7

    def test_repr(self, toy):
        assert "toy" in repr(toy)


class TestMinMaxNormalizer:
    def test_observed_range_is_unit(self, small_incomplete):
        obs = small_incomplete.values[small_incomplete.mask == 1]
        assert obs.min() >= 0.0
        assert obs.max() <= 1.0 + 1e-12

    def test_roundtrip(self, rng):
        ds = IncompleteDataset(rng.normal(size=(50, 4)) * 10 + 3)
        norm = MinMaxNormalizer()
        transformed = norm.fit_transform(ds)
        back = norm.inverse_transform(transformed.values)
        assert np.allclose(back, ds.values)

    def test_constant_column_maps_to_half(self):
        ds = IncompleteDataset(np.column_stack([np.full(5, 7.0), np.arange(5.0)]))
        transformed = MinMaxNormalizer().fit_transform(ds)
        assert np.allclose(transformed.values[:, 0], 0.5)

    def test_nan_passthrough(self, toy):
        transformed = MinMaxNormalizer().fit_transform(toy)
        assert np.isnan(transformed.values[0, 1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.zeros((2, 2)))

    def test_mask_preserved(self, toy):
        transformed = MinMaxNormalizer().fit_transform(toy)
        assert np.array_equal(transformed.mask, toy.mask)


class TestStandardizer:
    def test_observed_moments(self, rng):
        ds = IncompleteDataset(rng.normal(5.0, 3.0, size=(500, 2)))
        std = Standardizer().fit(ds)
        z = std.transform(ds.values)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_roundtrip(self, rng):
        ds = IncompleteDataset(rng.normal(size=(30, 3)))
        std = Standardizer().fit(ds)
        assert np.allclose(std.inverse_transform(std.transform(ds.values)), ds.values)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))


class TestAmpute:
    def test_mcar_hits_target_rate(self, rng):
        ds = IncompleteDataset(rng.normal(size=(2000, 5)))
        out = ampute(ds, 0.3, "mcar", rng)
        assert out.missing_rate == pytest.approx(0.3, abs=0.03)

    @pytest.mark.parametrize("mechanism", ["mar", "mnar"])
    def test_informative_mechanisms_hit_rate(self, rng, mechanism):
        ds = IncompleteDataset(rng.normal(size=(2000, 5)))
        out = ampute(ds, 0.3, mechanism, rng)
        assert out.missing_rate == pytest.approx(0.3, abs=0.05)

    def test_mnar_drops_larger_values(self, rng):
        values = rng.normal(size=(5000, 1))
        ds = IncompleteDataset(values.copy())
        out = ampute(ds, 0.3, "mnar", rng, strength=3.0)
        dropped = values[np.isnan(out.values)]
        kept = values[~np.isnan(out.values)]
        assert dropped.mean() > kept.mean()

    def test_never_restores_missing(self, toy, rng):
        out = ampute(toy, 0.5, "mcar", rng)
        assert np.isnan(out.values[0, 1])

    def test_only_removes(self, rng):
        ds = IncompleteDataset(rng.normal(size=(100, 4)))
        out = ampute(ds, 0.4, "mcar", rng)
        newly_missing = np.isnan(out.values) & ~np.isnan(ds.values)
        assert newly_missing.sum() > 0
        unchanged = ~np.isnan(out.values)
        assert np.array_equal(out.values[unchanged], ds.values[unchanged])

    def test_invalid_rate_raises(self, toy, rng):
        with pytest.raises(ValueError):
            ampute(toy, 1.0, "mcar", rng)

    def test_unknown_mechanism_raises(self, toy, rng):
        with pytest.raises(ValueError):
            ampute(toy, 0.2, "fancy", rng)


class TestHoldoutSplit:
    def test_hides_roughly_rate(self, rng):
        ds = IncompleteDataset(rng.normal(size=(1000, 5)))
        hs = holdout_split(ds, 0.2, rng)
        hidden_fraction = hs.holdout_mask.sum() / ds.mask.sum()
        assert hidden_fraction == pytest.approx(0.2, abs=0.03)

    def test_truth_matches_original(self, rng):
        ds = IncompleteDataset(rng.normal(size=(100, 4)))
        hs = holdout_split(ds, 0.3, rng)
        hidden = hs.holdout_mask == 1.0
        assert np.allclose(hs.truth[hidden], ds.values[hidden])

    def test_rmse_of_truth_is_zero(self, rng):
        ds = IncompleteDataset(rng.normal(size=(100, 4)))
        hs = holdout_split(ds, 0.3, rng)
        assert hs.rmse(hs.truth) == pytest.approx(0.0)

    def test_rmse_hand_computed(self):
        ds = IncompleteDataset(np.array([[1.0, 2.0]]))
        hs = holdout_split(ds, 0.5, np.random.default_rng(0))
        # Force a known configuration for the check.
        hs.holdout_mask[...] = np.array([[1.0, 0.0]])
        object.__setattr__(hs, "truth", np.array([[3.0, 0.0]]))
        assert hs.rmse(np.array([[1.0, 0.0]])) == pytest.approx(2.0)
        assert hs.mae(np.array([[1.0, 0.0]])) == pytest.approx(2.0)

    def test_train_is_superset_missing(self, rng):
        ds = IncompleteDataset(rng.normal(size=(100, 4)))
        hs = holdout_split(ds, 0.3, rng)
        assert hs.train.missing_rate > ds.missing_rate

    def test_invalid_rate_raises(self, rng):
        ds = IncompleteDataset(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            holdout_split(ds, 0.0, rng)


class TestCovidGenerators:
    @pytest.mark.parametrize("name", dataset_names())
    def test_schema_matches_spec(self, name):
        generated = generate(name, n_samples=500, seed=0)
        spec = SPECS[name]
        assert generated.dataset.n_features == spec.n_features
        assert generated.dataset.n_samples == 500
        assert generated.dataset.missing_rate == pytest.approx(
            spec.missing_rate, abs=0.05
        )
        assert generated.labels.shape == (500,)

    def test_reproducible(self):
        a = generate("trial", n_samples=100, seed=42)
        b = generate("trial", n_samples=100, seed=42)
        assert np.array_equal(
            np.nan_to_num(a.dataset.values), np.nan_to_num(b.dataset.values)
        )

    def test_different_seeds_differ(self):
        a = generate("trial", n_samples=100, seed=1)
        b = generate("trial", n_samples=100, seed=2)
        assert not np.array_equal(
            np.nan_to_num(a.dataset.values), np.nan_to_num(b.dataset.values)
        )

    def test_classification_labels_binary(self):
        generated = generate("surveil", n_samples=200, seed=0)
        assert set(np.unique(generated.labels)) <= {0.0, 1.0}

    def test_missing_rate_override(self):
        generated = generate("trial", n_samples=1000, seed=0, missing_rate=0.5)
        assert generated.dataset.missing_rate == pytest.approx(0.5, abs=0.05)

    def test_columns_are_correlated(self):
        """The latent-factor design must make imputation learnable."""
        generated = generate("weather", n_samples=2000, seed=0)
        corr = np.corrcoef(generated.complete.T)
        off_diagonal = np.abs(corr - np.diag(np.diag(corr)))
        assert off_diagonal.max() > 0.3

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            generate("nonexistent")

    def test_tiny_n_raises(self):
        with pytest.raises(ValueError):
            generate("trial", n_samples=1)

    def test_complete_matrix_has_no_nan(self):
        generated = generate("emergency", n_samples=100, seed=0)
        assert not np.isnan(generated.complete).any()


class TestBatches:
    def test_covers_all_rows(self, small_incomplete, rng):
        seen = sum(v.shape[0] for v, _ in iterate_batches(small_incomplete, 32, rng))
        assert seen == small_incomplete.n_samples

    def test_drop_last(self, small_incomplete, rng):
        batches = list(iterate_batches(small_incomplete, 60, rng, drop_last=True))
        assert all(v.shape[0] == 60 for v, _ in batches)

    def test_no_shuffle_is_ordered(self, small_incomplete):
        values, _ = next(iterate_batches(small_incomplete, 10, shuffle=False))
        assert np.array_equal(
            np.nan_to_num(values), np.nan_to_num(small_incomplete.values[:10])
        )

    def test_mask_aligned_with_values(self, small_incomplete, rng):
        for values, mask in iterate_batches(small_incomplete, 32, rng):
            assert np.array_equal(mask == 0.0, np.isnan(values))

    def test_invalid_batch_size(self, small_incomplete):
        with pytest.raises(ValueError):
            list(iterate_batches(small_incomplete, 0))


class TestBatchPlan:
    def test_uniform_bounds(self):
        from repro.data import BatchPlan

        assert BatchPlan(batch_size=4).bounds(10) == [(0, 4), (4, 8), (8, 10)]
        assert BatchPlan(batch_size=4, drop_last=True).bounds(10) == [
            (0, 4),
            (4, 8),
        ]

    def test_of_sizes_bounds(self):
        from repro.data import BatchPlan

        plan = BatchPlan.of_sizes([3, 1, 6])
        assert plan.bounds(10) == [(0, 3), (3, 4), (4, 10)]
        with pytest.raises(ValueError):
            plan.bounds(9)

    def test_row_order(self, rng):
        from repro.data import BatchPlan

        n = 12
        assert np.array_equal(BatchPlan(batch_size=4).bounds(0), [])
        assert np.array_equal(
            BatchPlan(batch_size=4).row_order(n), np.arange(n)
        )
        perm = rng.permutation(n)
        fixed = BatchPlan(batch_size=4, order="fixed", permutation=perm)
        assert np.array_equal(fixed.row_order(n), perm)
        shuffled = BatchPlan(batch_size=4, order="shuffled")
        assert sorted(shuffled.row_order(n, np.random.default_rng(0))) == list(
            range(n)
        )

    def test_validation_errors(self, rng):
        from repro.data import BatchPlan

        with pytest.raises(ValueError):
            BatchPlan()  # neither batch_size nor sizes
        with pytest.raises(ValueError):
            BatchPlan(batch_size=4, sizes=(4,))  # both
        with pytest.raises(ValueError):
            BatchPlan(batch_size=0)
        with pytest.raises(ValueError):
            BatchPlan(sizes=(4, 0))
        with pytest.raises(ValueError):
            BatchPlan(sizes=(4, 4), drop_last=True)
        with pytest.raises(ValueError):
            BatchPlan(sizes=(4, 4), order="shuffled")
        with pytest.raises(ValueError):
            BatchPlan(batch_size=4, order="random")
        with pytest.raises(ValueError):
            BatchPlan(batch_size=4, order="fixed")  # missing permutation
        with pytest.raises(ValueError):
            BatchPlan(batch_size=4, permutation=rng.permutation(8))
        with pytest.raises(ValueError):
            BatchPlan(
                batch_size=4, order="fixed", permutation=np.arange(8).reshape(2, 4)
            )

    def test_plan_matches_legacy_flags(self, small_incomplete):
        from repro.data import BatchPlan

        n = small_incomplete.n_samples
        perm = np.random.default_rng(3).permutation(n)
        legacy = list(
            iterate_batches(small_incomplete, 32, order=perm, yield_indices=True)
        )
        plan = BatchPlan(
            batch_size=32, order="fixed", permutation=perm, yield_indices=True
        )
        planned = list(iterate_batches(small_incomplete, plan=plan))
        assert len(legacy) == len(planned)
        for (lv, lm, li), (pv, pm, pi) in zip(legacy, planned):
            assert np.array_equal(li, pi)
            assert np.array_equal(np.nan_to_num(lv), np.nan_to_num(pv))
            assert np.array_equal(lm, pm)

    def test_shuffled_plan_matches_legacy_shuffle(self, small_incomplete):
        from repro.data import BatchPlan

        legacy = list(
            iterate_batches(small_incomplete, 32, np.random.default_rng(5))
        )
        planned = list(
            iterate_batches(
                small_incomplete,
                rng=np.random.default_rng(5),
                plan=BatchPlan(batch_size=32, order="shuffled"),
            )
        )
        for (lv, _), (pv, _) in zip(legacy, planned):
            assert np.array_equal(np.nan_to_num(lv), np.nan_to_num(pv))

    def test_plan_plus_legacy_flags_raise(self, small_incomplete):
        from repro.data import BatchPlan

        plan = BatchPlan(batch_size=8)
        with pytest.raises(TypeError):
            list(iterate_batches(small_incomplete, 8, plan=plan))
        with pytest.raises(ValueError):
            list(iterate_batches(small_incomplete))

    def test_fixed_permutation_must_cover_all_rows(self, small_incomplete):
        from repro.data import BatchPlan

        plan = BatchPlan(batch_size=8, order="fixed", permutation=np.arange(3))
        with pytest.raises(ValueError):
            list(iterate_batches(small_incomplete, plan=plan))


class TestCsvIO:
    def test_roundtrip(self, toy, tmp_path):
        path = tmp_path / "toy.csv"
        write_csv(toy, path)
        loaded = read_csv(path)
        assert np.array_equal(np.isnan(loaded.values), np.isnan(toy.values))
        observed = ~np.isnan(toy.values)
        assert np.allclose(loaded.values[observed], toy.values[observed])
        assert loaded.feature_names == toy.feature_names

    def test_missing_tokens(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,c\n1,NA,3\n?,nan,6\n")
        loaded = read_csv(path)
        assert np.isnan(loaded.values[0, 1])
        assert np.isnan(loaded.values[1, 0])
        assert loaded.values[1, 2] == 6.0

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_no_header_mode(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,2\n3,4\n")
        loaded = read_csv(path, has_header=False)
        assert loaded.shape == (2, 2)
