"""Optimal transport: exact LP, Sinkhorn, and the masking Sinkhorn divergence."""

import numpy as np
import pytest

from repro.ot import (
    MaskingSinkhornLoss,
    SinkhornConfig,
    entropy,
    exact_ot,
    masked_cost_matrix,
    masked_cost_matrix_tensor,
    masking_sinkhorn_divergence,
    regularized_ot_value,
    sinkhorn,
    sinkhorn_divergence,
    squared_euclidean_cost,
    squared_euclidean_cost_tensor,
)
from repro.tensor import Tensor, check_gradients


@pytest.fixture
def clouds(rng):
    x = rng.normal(size=(6, 3))
    y = rng.normal(size=(6, 3)) + 0.5
    return x, y


class TestCostMatrices:
    def test_squared_euclidean_matches_direct(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        direct = np.array([[np.sum((a - b) ** 2) for b in y] for a in x])
        assert np.allclose(cost, direct)

    def test_cost_nonnegative_and_zero_diagonal(self, clouds):
        x, _ = clouds
        cost = squared_euclidean_cost(x, x)
        assert (cost >= 0).all()
        assert np.allclose(np.diag(cost), 0.0)

    def test_masked_cost_applies_own_masks(self, rng, clouds):
        x, y = clouds
        mx = (rng.random(x.shape) > 0.3).astype(float)
        my = (rng.random(y.shape) > 0.3).astype(float)
        cost = masked_cost_matrix(x, mx, y, my)
        direct = squared_euclidean_cost(x * mx, y * my)
        assert np.allclose(cost, direct)

    def test_tensor_cost_matches_numpy(self, clouds):
        x, y = clouds
        t = squared_euclidean_cost_tensor(Tensor(x), Tensor(y))
        assert np.allclose(t.data, squared_euclidean_cost(x, y), atol=1e-10)

    def test_tensor_cost_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        check_gradients(lambda a, b: squared_euclidean_cost_tensor(a, b), [a, b])

    def test_masked_tensor_cost_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        mask = (rng.random((4, 2)) > 0.4).astype(float)
        check_gradients(
            lambda a, b: masked_cost_matrix_tensor(a, mask, b, mask), [a, b]
        )


class TestExactOT:
    def test_identity_cost_zero(self, clouds):
        x, _ = clouds
        value, plan = exact_ot(squared_euclidean_cost(x, x))
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_plan_marginals(self, clouds):
        x, y = clouds
        _, plan = exact_ot(squared_euclidean_cost(x, y))
        n = x.shape[0]
        assert np.allclose(plan.sum(axis=1), 1.0 / n, atol=1e-8)
        assert np.allclose(plan.sum(axis=0), 1.0 / n, atol=1e-8)

    def test_1d_sorted_matching(self):
        # For 1-D squared costs the optimal coupling is the monotone one.
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([[0.1], [1.1], [2.1]])
        value, plan = exact_ot(squared_euclidean_cost(x, y))
        assert value == pytest.approx(0.01, abs=1e-8)
        assert np.allclose(plan, np.eye(3) / 3.0, atol=1e-8)

    def test_unbalanced_marginals_raise(self):
        with pytest.raises(ValueError):
            exact_ot(np.ones((2, 2)), a=np.array([0.5, 0.5]), b=np.array([0.3, 0.3]))

    def test_rectangular_cost(self, rng):
        cost = np.abs(rng.normal(size=(3, 5)))
        value, plan = exact_ot(cost)
        assert plan.shape == (3, 5)
        assert np.allclose(plan.sum(axis=1), 1 / 3, atol=1e-8)
        assert np.allclose(plan.sum(axis=0), 1 / 5, atol=1e-8)


class TestSinkhorn:
    def test_plan_marginals(self, clouds):
        x, y = clouds
        result = sinkhorn(squared_euclidean_cost(x, y), SinkhornConfig(reg=0.5))
        n = x.shape[0]
        assert result.converged
        assert np.allclose(result.plan.sum(axis=1), 1.0 / n, atol=1e-7)
        assert np.allclose(result.plan.sum(axis=0), 1.0 / n, atol=1e-7)

    def test_converges_to_exact_as_reg_vanishes(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        exact_value, _ = exact_ot(cost)
        approx = sinkhorn(cost, SinkhornConfig(reg=0.005, max_iter=20000, tol=1e-10))
        assert approx.transport_cost == pytest.approx(exact_value, abs=0.02)

    def test_transport_cost_increases_with_reg(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        low = sinkhorn(cost, SinkhornConfig(reg=0.05, max_iter=5000)).transport_cost
        high = sinkhorn(cost, SinkhornConfig(reg=5.0, max_iter=5000)).transport_cost
        assert high >= low - 1e-9

    def test_plan_positive(self, clouds):
        x, y = clouds
        result = sinkhorn(squared_euclidean_cost(x, y), SinkhornConfig(reg=1.0))
        assert (result.plan > 0).all()

    def test_invalid_reg_raises(self):
        with pytest.raises(ValueError):
            sinkhorn(np.ones((2, 2)), SinkhornConfig(reg=0.0))

    def test_value_consistent_with_helper(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        result = sinkhorn(cost, SinkhornConfig(reg=0.7))
        assert result.value == pytest.approx(
            regularized_ot_value(result.plan, cost, 0.7)
        )

    def test_entropy_zero_log_zero(self):
        plan = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert entropy(plan) == pytest.approx(2 * 0.5 * np.log(0.5))


class TestMarginalValidation:
    """Degenerate marginals must raise instead of silently producing NaNs."""

    def test_zero_entry_raises_with_index(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        a = np.full(x.shape[0], 1.0 / x.shape[0])
        a[2] = 0.0
        with pytest.raises(ValueError, match=r"a\[2\]"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), a=a)

    def test_negative_entry_raises_with_index(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        b = np.full(y.shape[0], 1.0 / y.shape[0])
        b[0] = -0.1
        with pytest.raises(ValueError, match=r"b\[0\]"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), b=b)

    def test_nan_entry_raises(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        a = np.full(x.shape[0], 1.0 / x.shape[0])
        a[1] = np.nan
        with pytest.raises(ValueError, match=r"a\[1\]"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), a=a)

    def test_wrong_length_raises(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        with pytest.raises(ValueError, match="length"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), a=np.full(x.shape[0] + 1, 0.1))
        with pytest.raises(ValueError, match="length"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), b=np.full(y.shape[0] - 1, 0.2))

    def test_valid_marginals_still_accepted(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        a = np.linspace(1.0, 2.0, x.shape[0])
        a /= a.sum()
        result = sinkhorn(cost, SinkhornConfig(reg=0.5), a=a)
        assert np.allclose(result.plan.sum(axis=1), a, atol=1e-7)


class TestWarmStart:
    def test_result_carries_consistent_duals(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        result = sinkhorn(cost, SinkhornConfig(reg=0.5))
        rebuilt = np.exp(-cost / 0.5 + result.f[:, None] + result.g[None, :])
        assert np.allclose(rebuilt, result.plan, atol=1e-12)

    def test_warm_and_cold_converge_to_same_plan(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        cold = sinkhorn(cost, SinkhornConfig(reg=0.5, tol=1e-11))
        # Perturb the problem slightly, as one DIM epoch does, and solve it
        # both cold and warm-started from the previous duals.
        shifted = squared_euclidean_cost(x + 0.01, y)
        cold_next = sinkhorn(shifted, SinkhornConfig(reg=0.5, tol=1e-11))
        warm_next = sinkhorn(shifted, SinkhornConfig(reg=0.5, tol=1e-11), init=(cold.f, cold.g))
        assert warm_next.converged
        assert np.allclose(warm_next.plan, cold_next.plan, atol=1e-9)

    def test_warm_start_on_same_problem_is_cheaper(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        cold = sinkhorn(cost, SinkhornConfig(reg=0.5, tol=1e-9, max_iter=5000))
        assert cold.converged
        warm = sinkhorn(cost, SinkhornConfig(reg=0.5, tol=1e-9, max_iter=5000), init=(cold.f, cold.g))
        assert warm.iterations <= cold.iterations
        assert warm.iterations <= 2  # starting at the fixed point

    def test_bad_init_shape_raises(self, clouds):
        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        with pytest.raises(ValueError, match="init"):
            sinkhorn(cost, SinkhornConfig(reg=0.5), init=(np.zeros(3), np.zeros(y.shape[0])))

    def test_warm_start_counters_recorded(self, clouds):
        from repro.obs import recording

        x, y = clouds
        cost = squared_euclidean_cost(x, y)
        with recording() as rec:
            cold = sinkhorn(cost, SinkhornConfig(reg=0.5))
            sinkhorn(cost, SinkhornConfig(reg=0.5), init=(cold.f, cold.g))
        counters = rec.metrics.snapshot()["counters"]
        assert counters["sinkhorn.solves"] == 2
        assert counters["sinkhorn.warm_starts"] == 1
        histograms = rec.metrics.snapshot()["histograms"]
        assert histograms["sinkhorn.warm_iterations"]["count"] == 1
        solve_events = [e for e in rec.events if e.name == "sinkhorn.solve"]
        assert [e.fields["warm_started"] for e in solve_events] == [False, True]


class TestSinkhornDivergence:
    def test_zero_on_identical_clouds(self, clouds):
        x, _ = clouds
        assert sinkhorn_divergence(x, x, SinkhornConfig(reg=0.5)) == pytest.approx(
            0.0, abs=1e-7
        )

    def test_positive_on_distinct_clouds(self, clouds):
        x, y = clouds
        assert sinkhorn_divergence(x, y, SinkhornConfig(reg=0.5)) > 0.0

    def test_symmetry(self, clouds):
        x, y = clouds
        forward = sinkhorn_divergence(x, y, SinkhornConfig(reg=0.5))
        backward = sinkhorn_divergence(y, x, SinkhornConfig(reg=0.5))
        assert forward == pytest.approx(backward, rel=1e-6)

    def test_grows_with_separation(self, clouds):
        x, _ = clouds
        near = sinkhorn_divergence(x, x + 0.1, SinkhornConfig(reg=0.5))
        far = sinkhorn_divergence(x, x + 2.0, SinkhornConfig(reg=0.5))
        assert far > near


class TestMaskingSinkhornDivergence:
    def test_zero_on_identical(self, rng, clouds):
        x, _ = clouds
        mask = (rng.random(x.shape) > 0.3).astype(float)
        value = masking_sinkhorn_divergence(x, x, mask, SinkhornConfig(reg=0.5))
        assert value == pytest.approx(0.0, abs=1e-7)

    def test_full_mask_matches_unmasked(self, clouds):
        x, y = clouds
        mask = np.ones_like(x)
        masked = masking_sinkhorn_divergence(x, y, mask, SinkhornConfig(reg=0.5))
        plain = sinkhorn_divergence(x, y, SinkhornConfig(reg=0.5))
        assert masked == pytest.approx(plain, rel=1e-6)

    def test_zero_mask_collapses_to_zero(self, clouds):
        x, y = clouds
        mask = np.zeros_like(x)
        value = masking_sinkhorn_divergence(x, y, mask, SinkhornConfig(reg=0.5))
        assert value == pytest.approx(0.0, abs=1e-7)

    def test_positive_on_shifted(self, rng, clouds):
        x, _ = clouds
        mask = (rng.random(x.shape) > 0.3).astype(float)
        assert masking_sinkhorn_divergence(x + 1.0, x, mask, SinkhornConfig(reg=0.5)) > 0.0


class TestMaskingSinkhornLoss:
    def test_envelope_gradient_matches_divergence_finite_diff(self, rng):
        """Proposition 1: the plan-fixed gradient equals the full derivative."""
        x = rng.normal(size=(5, 2))
        y = rng.normal(size=(5, 2)) + 0.3
        mask = (rng.random(x.shape) > 0.3).astype(float)
        loss_fn = MaskingSinkhornLoss(reg=0.5, max_iter=3000, tol=1e-11)
        x_bar = Tensor(x, requires_grad=True)
        loss_fn(x_bar, y, mask).backward()
        analytic = x_bar.grad

        eps = 1e-5
        numeric = np.zeros_like(x)
        n = x.shape[0]
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                perturbed = x.copy()
                perturbed[i, j] += eps
                up = masking_sinkhorn_divergence(
                    perturbed, y, mask, SinkhornConfig(reg=0.5, max_iter=3000, tol=1e-11)
                )
                perturbed[i, j] -= 2 * eps
                down = masking_sinkhorn_divergence(
                    perturbed, y, mask, SinkhornConfig(reg=0.5, max_iter=3000, tol=1e-11)
                )
                numeric[i, j] = (up - down) / (2 * eps) / (2 * n)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_loss_value_matches_divergence(self, rng):
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=(6, 3))
        mask = (rng.random(x.shape) > 0.3).astype(float)
        loss_fn = MaskingSinkhornLoss(reg=0.7, max_iter=2000, tol=1e-10)
        value = loss_fn(Tensor(x), y, mask).item()
        expected = masking_sinkhorn_divergence(
            x, y, mask, SinkhornConfig(reg=0.7, max_iter=2000, tol=1e-10)
        ) / (2 * 6)
        assert value == pytest.approx(expected, abs=1e-8)

    def test_shape_mismatch_raises(self, rng):
        loss_fn = MaskingSinkhornLoss(reg=0.5)
        with pytest.raises(ValueError):
            loss_fn(Tensor(np.zeros((3, 2))), np.zeros((4, 2)), np.zeros((4, 2)))

    def test_debias_off_biased_value(self, rng):
        """Without corrective terms the value at x == y is nonzero (entropic bias)."""
        x = rng.normal(size=(6, 2))
        mask = np.ones_like(x)
        biased = MaskingSinkhornLoss(reg=0.5, debias=False)(Tensor(x), x, mask).item()
        debiased = MaskingSinkhornLoss(reg=0.5, debias=True)(Tensor(x), x, mask).item()
        assert abs(debiased) < 1e-6
        assert abs(biased) > abs(debiased)

    def test_batch_key_caching_matches_keyless(self, rng):
        """Warm-started + cached calls agree with cold keyless calls."""
        x = rng.normal(size=(8, 3))
        mask = (rng.random(x.shape) > 0.3).astype(float)
        cold_fn = MaskingSinkhornLoss(
            reg=0.5, max_iter=3000, tol=1e-11, warm_start=False, cache_self_terms=False
        )
        cached_fn = MaskingSinkhornLoss(reg=0.5, max_iter=3000, tol=1e-11)
        for step in range(3):
            x_bar = x + 0.1 * step  # the generator's output drifts per epoch
            cold = cold_fn(Tensor(x_bar), x, mask).item()
            cached = cached_fn(Tensor(x_bar), x, mask, batch_key="batch-0").item()
            # Warm-started solves agree up to solver tolerance (amplified by
            # the plan→value map), not bit-for-bit.
            assert cached == pytest.approx(cold, abs=1e-7)
        assert "batch-0" in cached_fn._self_terms

    def test_reset_caches_clears_stores(self, rng):
        x = rng.normal(size=(6, 2))
        mask = np.ones_like(x)
        loss_fn = MaskingSinkhornLoss(reg=0.5)
        loss_fn(Tensor(x), x, mask, batch_key="k")
        assert loss_fn._duals and loss_fn._self_terms
        loss_fn.reset_caches()
        assert not loss_fn._duals and not loss_fn._self_terms

    def test_gradient_descent_reduces_divergence(self, rng):
        """The paper's core claim: MS gradients are usable everywhere."""
        y = rng.normal(size=(10, 2))
        x = rng.normal(size=(10, 2)) + 3.0
        mask = (rng.random(x.shape) > 0.2).astype(float)
        loss_fn = MaskingSinkhornLoss(reg=0.5)
        x_t = Tensor(x, requires_grad=True)
        initial = loss_fn(x_t, y, mask).item()
        for _ in range(150):
            x_t.zero_grad()
            loss = loss_fn(x_t, y, mask)
            loss.backward()
            x_t.data -= 2.0 * x_t.grad
        final = loss_fn(x_t, y, mask).item()
        assert final < initial * 0.5
