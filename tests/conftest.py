"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_incomplete(rng):
    """A small correlated incomplete dataset, normalised to roughly [0, 1]."""
    from repro.data import IncompleteDataset, MinMaxNormalizer, ampute

    n, d = 400, 6
    latent = rng.normal(size=(n, 2))
    loadings = rng.normal(size=(2, d))
    full = latent @ loadings + 0.05 * rng.normal(size=(n, d))
    complete = IncompleteDataset(full, name="small")
    incomplete = ampute(complete, 0.3, "mcar", rng)
    return MinMaxNormalizer().fit_transform(incomplete)
