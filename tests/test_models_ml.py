"""Machine-learning imputers: MissForest, MICE, Baran, DataWig, RRSI."""

import numpy as np
import pytest

from repro.data import holdout_split
from repro.models import (
    BaranImputer,
    DataWigImputer,
    MeanImputer,
    MICEImputer,
    MissForestImputer,
    RidgeRegression,
    RRSIImputer,
)


@pytest.fixture
def case(small_incomplete, rng):
    return holdout_split(small_incomplete, 0.2, rng)


class TestRidgeRegression:
    def test_recovers_linear_coefficients(self, rng):
        x = rng.normal(size=(500, 3))
        y = x @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = RidgeRegression(alpha=1e-8).fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-6)

    def test_regularisation_shrinks(self, rng):
        x = rng.normal(size=(50, 3))
        y = x @ np.array([2.0, -1.0, 0.5])
        loose = RidgeRegression(alpha=1e-8).fit(x, y)
        tight = RidgeRegression(alpha=100.0).fit(x, y)
        assert np.linalg.norm(tight._weights[:-1]) < np.linalg.norm(loose._weights[:-1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((2, 2)))


@pytest.mark.parametrize(
    "factory",
    [
        lambda: MissForestImputer(n_trees=8, max_depth=6, n_iterations=2),
        lambda: MICEImputer(n_imputations=3, n_iterations=2),
        lambda: BaranImputer(n_estimators=8, n_iterations=1),
    ],
    ids=["missforest", "mice", "baran"],
)
class TestIterativeImputers:
    def test_beats_mean_imputation(self, case, factory):
        model_rmse = case.rmse(factory().fit_transform(case.train))
        mean_rmse = case.rmse(MeanImputer().fit_transform(case.train))
        assert model_rmse < mean_rmse

    def test_observed_cells_untouched(self, case, factory):
        imputed = factory().fit_transform(case.train)
        observed = case.train.mask == 1.0
        assert np.allclose(
            imputed[observed], np.nan_to_num(case.train.values)[observed]
        )

    def test_no_nan_output(self, case, factory):
        assert not np.isnan(factory().fit_transform(case.train)).any()

    def test_reconstruct_new_rows(self, case, factory):
        model = factory().fit(case.train)
        new_values = case.train.values[:7].copy()
        out = model.reconstruct(new_values, case.train.mask[:7])
        assert out.shape == new_values.shape
        assert not np.isnan(out).any()


class TestMICE:
    def test_multiple_chains_averaged(self, case):
        single = MICEImputer(n_imputations=1, n_iterations=2, seed=0)
        multi = MICEImputer(n_imputations=5, n_iterations=2, seed=0)
        rmse_single = case.rmse(single.fit_transform(case.train))
        rmse_multi = case.rmse(multi.fit_transform(case.train))
        # Averaging chains must not blow up the error.
        assert rmse_multi < rmse_single * 1.2

    def test_invalid_imputations(self):
        with pytest.raises(ValueError):
            MICEImputer(n_imputations=0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            MICEImputer(n_iterations=0)


class TestDataWig:
    def test_improves_over_mean_with_enough_epochs(self, case):
        model = DataWigImputer(epochs=40, hidden=32)
        rmse = case.rmse(model.fit_transform(case.train))
        mean_rmse = case.rmse(MeanImputer().fit_transform(case.train))
        assert rmse < mean_rmse * 1.05  # at least competitive on 200 rows

    def test_output_shape(self, case):
        imputed = DataWigImputer(epochs=2).fit_transform(case.train)
        assert imputed.shape == case.train.shape


class TestRRSI:
    def test_training_moves_missing_entries(self, case):
        model = RRSIImputer(epochs=30, seed=0)
        imputed = model.fit_transform(case.train)
        missing = case.train.mask == 0.0
        means = np.nanmean(case.train.values, axis=0)
        mean_fill = np.tile(means, (case.train.n_samples, 1))
        assert not np.allclose(imputed[missing], mean_fill[missing], atol=1e-6)

    def test_observed_cells_untouched(self, case):
        imputed = RRSIImputer(epochs=5).fit_transform(case.train)
        observed = case.train.mask == 1.0
        assert np.allclose(
            imputed[observed], np.nan_to_num(case.train.values)[observed]
        )

    def test_new_row_fallback_donates_from_train(self, case):
        model = RRSIImputer(epochs=5).fit(case.train)
        out = model.reconstruct(case.train.values[:3], case.train.mask[:3])
        assert not np.isnan(out).any()

    def test_tiny_dataset_keeps_mean_fill(self):
        from repro.data import IncompleteDataset

        ds = IncompleteDataset(np.array([[1.0, np.nan], [np.nan, 2.0]]))
        model = RRSIImputer(epochs=3, batch_size=128)
        imputed = model.fit_transform(ds)
        assert not np.isnan(imputed).any()
