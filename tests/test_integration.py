"""Cross-module integration: full pipelines and the example scripts."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench import format_table, prepare_case, run_method
from repro.core import SCIS, DIM, DimConfig, DimImputer, ScisConfig
from repro.metrics import DownstreamConfig, evaluate_downstream
from repro.models import GAINImputer, MeanImputer, make_imputer

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipeline:
    def test_generate_normalize_impute_score(self):
        case = prepare_case("emergency", n_samples=600, seed=0)
        result = run_method(
            lambda seed: GAINImputer(epochs=10, seed=seed), case, n_seeds=1
        )
        assert result.available
        assert 0 < result.rmse_mean < 1.0

    def test_scis_pipeline_through_bench(self):
        case = prepare_case("trial", n_samples=800, seed=0)
        config = ScisConfig(
            initial_size=100,
            error_bound=0.03,
            dim=DimConfig(epochs=10),
            seed=0,
        )
        result = run_method(
            lambda seed: SCIS(GAINImputer(epochs=10, seed=seed), config),
            case,
            method_name="scis-gain",
        )
        assert result.available
        assert result.sample_rate <= 1.0
        table = format_table([result], title="smoke")
        assert "scis-gain" in table

    def test_dim_imputer_through_bench(self):
        case = prepare_case("trial", n_samples=500, seed=0)
        result = run_method(
            lambda seed: DimImputer(
                GAINImputer(epochs=5, seed=seed),
                DimConfig(epochs=5),
                subsample_fraction=0.5,
                seed=seed,
            ),
            case,
        )
        assert result.available
        assert result.sample_rate == 0.5
        assert result.method == "fixed-dim-gain"

    def test_impute_then_downstream(self):
        case = prepare_case("trial", n_samples=800, seed=0)
        imputed = MeanImputer().fit_transform(case.train)
        outcome = evaluate_downstream(
            imputed, case.labels, case.task, DownstreamConfig(epochs=10, seed=0)
        )
        assert outcome.metric == "auc"
        assert 0.0 <= outcome.score <= 1.0

    def test_dim_then_manual_sse_flow(self, small_incomplete, rng):
        """The decomposed API (DIM + SSE called manually) matches Algorithm 1."""
        from repro.core.sse import SSE, SseConfig

        split = small_incomplete.split_validation_initial(80, 80, rng)
        model = GAINImputer(seed=0)
        DIM(DimConfig(epochs=10)).train(model, split.initial, rng)
        sse = SSE(
            model,
            split.validation.values,
            split.validation.mask,
            SseConfig(error_bound=0.05),
            rng,
        )
        sse.prepare(split.initial.values, split.initial.mask)
        result = sse.estimate_minimum_size(80, small_incomplete.n_samples)
        assert 80 <= result.n_star <= small_incomplete.n_samples

    def test_registry_methods_run_end_to_end(self):
        """Every registry method completes a miniature end-to-end run."""
        case = prepare_case("trial", n_samples=200, seed=0)
        quick = {
            "mean": {},
            "knn": {"k": 3},
            "mice": {"n_imputations": 1, "n_iterations": 1},
            "gain": {"epochs": 2},
            "midae": {"epochs": 2},
            "vaei": {"epochs": 2},
        }
        for name, kwargs in quick.items():
            imputed = make_imputer(name, **kwargs).fit_transform(case.train)
            assert not np.isnan(imputed).any(), name


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "custom_model.py"],
)
def test_example_scripts_run(script, tmp_path, monkeypatch):
    """The lighter example scripts execute end-to-end (smoke test)."""
    path = EXAMPLES_DIR / script
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
