"""Neural-network layer, module, and loss tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    Dropout,
    Linear,
    Module,
    Parameter,
    Sequential,
    bce_loss,
    masked_bce_loss,
    masked_mse_loss,
    mlp,
    mse_loss,
)
from repro.tensor import Tensor, check_gradients


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])

    def test_repr(self, rng):
        assert "Linear(3, 2" in repr(Linear(3, 2, rng=rng))


class TestModuleSystem:
    def test_named_parameters_nested(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        names = [name for name, _ in net.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_num_parameters(self, rng):
        net = Linear(4, 3, rng=rng)
        assert net.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self, rng):
        net = mlp([3, 5, 2], rng=rng)
        state = net.state_dict()
        for param in net.parameters():
            param.data[...] = 0.0
        net.load_state_dict(state)
        for name, param in net.named_parameters():
            assert np.array_equal(param.data, state[name])

    def test_load_state_dict_missing_key_raises(self, rng):
        net = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            net.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        net = Linear(2, 2, rng=rng)
        state = net.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), Dropout(0.5, rng=rng))
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_zero_grad_clears_all(self, rng):
        net = Linear(2, 2, rng=rng)
        out = net(Tensor(rng.normal(size=(3, 2))))
        out.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None

    def test_flat_parameter_roundtrip(self, rng):
        net = mlp([3, 4, 2], rng=rng)
        flat = nn.flatten_parameters(net)
        assert flat.size == net.num_parameters()
        nn.load_flat_parameters(net, flat * 2.0)
        assert np.allclose(nn.flatten_parameters(net), flat * 2.0)

    def test_load_flat_wrong_size_raises(self, rng):
        net = Linear(2, 2, rng=rng)
        with pytest.raises(ValueError):
            nn.load_flat_parameters(net, np.zeros(3))

    def test_flatten_gradients_zeros_when_no_grad(self, rng):
        net = Linear(2, 2, rng=rng)
        grads = nn.flatten_gradients(net)
        assert np.array_equal(grads, np.zeros(net.num_parameters()))

    def test_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward()


class TestDropout:
    def test_eval_mode_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.array_equal(drop(x).data, x.data)

    def test_training_zeroes_roughly_rate(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestMLPFactory:
    def test_structure(self, rng):
        net = mlp([4, 8, 8, 2], "relu", "sigmoid", dropout=0.5, rng=rng)
        out = net(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 2)
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_too_few_sizes_raises(self):
        with pytest.raises(ValueError):
            mlp([4])

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            mlp([4, 2], activation="swish")


class TestLosses:
    def test_mse_value(self):
        loss = mse_loss(Tensor([[1.0, 2.0]]), Tensor([[0.0, 0.0]]))
        assert loss.item() == pytest.approx(2.5)

    def test_masked_mse_ignores_masked_cells(self):
        pred = Tensor([[1.0, 100.0]])
        target = Tensor([[0.0, 0.0]])
        mask = np.array([[1.0, 0.0]])
        assert masked_mse_loss(pred, target, mask).item() == pytest.approx(1.0)

    def test_masked_mse_normalises_by_observed_count(self):
        pred = Tensor(np.ones((2, 2)))
        target = Tensor(np.zeros((2, 2)))
        mask = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert masked_mse_loss(pred, target, mask).item() == pytest.approx(1.0)

    def test_bce_perfect_prediction_near_zero(self):
        loss = bce_loss(Tensor([0.9999, 0.0001]), Tensor([1.0, 0.0]))
        assert loss.item() < 1e-3

    def test_bce_gradcheck(self, rng):
        logits = Tensor(rng.uniform(0.1, 0.9, size=(4,)), requires_grad=True)
        target = Tensor((rng.random(4) > 0.5).astype(float))
        check_gradients(lambda p: bce_loss(p, target), [logits])

    def test_masked_bce_matches_bce_with_full_mask(self, rng):
        p = Tensor(rng.uniform(0.1, 0.9, size=(3, 2)))
        t = Tensor((rng.random((3, 2)) > 0.5).astype(float))
        full = np.ones((3, 2))
        assert masked_bce_loss(p, t, full).item() == pytest.approx(bce_loss(p, t).item())


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        w = nn.init.xavier_uniform(100, 100, rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_he_normal_scale(self, rng):
        w = nn.init.he_normal(1000, 50, rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.15)

    def test_zeros(self, rng):
        assert not nn.init.zeros(3, 4, rng).any()


class TestParameter:
    def test_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad
