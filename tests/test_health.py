"""Numerical-health watchdog: detection math, policies, training wiring."""

import numpy as np
import pytest

from repro.core import DIM, DimConfig
from repro.data import MinMaxNormalizer, generate
from repro.models import GAINImputer
from repro.obs import HealthConfig, HealthMonitor, recording


def _small_case(n=120, seed=0):
    dataset = generate("trial", n_samples=n, seed=seed).dataset
    return MinMaxNormalizer().fit_transform(dataset)


class TestHealthMonitor:
    def test_rejects_unknown_policy_and_tiny_window(self):
        with pytest.raises(ValueError):
            HealthMonitor(policy="explode")
        with pytest.raises(ValueError):
            HealthConfig(window=2)

    def test_healthy_stream_stays_healthy(self):
        monitor = HealthMonitor()
        for i in range(30):
            monitor.observe_loss("s", 1.0 / (i + 1))
        assert monitor.verdict == "healthy"
        assert not monitor.issues
        assert not monitor.should_halt

    def test_nan_loss_flagged_and_event_emitted(self):
        with recording() as rec:
            monitor = HealthMonitor()
            assert monitor.check_finite("s", 1.0)
            assert not monitor.check_finite("s", float("nan"))
            assert not monitor.check_finite("s", float("inf"))
        assert monitor.verdict == "nan"
        nan_events = [e for e in rec.events if e.name == "health.nan"]
        # deduped per (kind, stream); the counter keeps the true total
        assert len(nan_events) == 1
        assert rec.metrics.counter("health.issues").value == 2

    def test_divergence_detected_on_rising_stream(self):
        with recording() as rec:
            monitor = HealthMonitor()
            kind = None
            for i in range(10):
                kind = monitor.observe_loss("dim.epoch", 1.0 + 0.5 * i) or kind
        assert kind == "divergence"
        assert monitor.verdict == "divergence"
        assert any(e.name == "health.divergence" for e in rec.events)

    def test_oscillation_detected_on_zigzag_stream(self):
        monitor = HealthMonitor()
        kind = None
        for i in range(12):
            value = 1.0 + (0.6 if i % 2 == 0 else -0.6)
            kind = monitor.observe_loss("gan.gain.epoch", value) or kind
        assert kind == "oscillation"
        assert monitor.verdict == "oscillation"

    def test_small_noise_convergence_not_flagged_as_oscillation(self):
        monitor = HealthMonitor()
        rng = np.random.default_rng(0)
        for i in range(40):
            monitor.observe_loss("s", 1.0 / (1 + i) + 1e-3 * rng.standard_normal())
        assert monitor.verdict == "healthy"

    def test_halt_policy_sets_flag_and_emits_event(self):
        with recording() as rec:
            monitor = HealthMonitor(policy="halt")
            monitor.check_finite("s", float("nan"))
        assert monitor.should_halt
        halts = [e for e in rec.events if e.name == "health.halt"]
        assert len(halts) == 1
        assert halts[0].fields["kind"] == "nan"
        assert halts[0].fields["stream"] == "s"

    def test_gradient_norm_gauge_and_nan_flag(self):
        with recording() as rec:
            monitor = HealthMonitor()
            assert monitor.observe_gradient_norm("gen", 3.5)
            assert not monitor.observe_gradient_norm("gen", float("inf"))
        assert rec.metrics.gauge("health.grad_norm.gen").value == float("inf")
        assert monitor.verdict == "nan"

    def test_verdict_severity_order(self):
        monitor = HealthMonitor()
        for i in range(12):
            monitor.observe_loss("a", 1.0 + 0.5 * i)  # divergence
        monitor.check_finite("b", float("nan"))  # nan outranks it
        assert monitor.verdict == "nan"

    def test_finalize_emits_verdict_once(self):
        with recording() as rec:
            monitor = HealthMonitor()
            monitor.check_finite("s", float("nan"))
            assert monitor.finalize() == "nan"
            assert monitor.finalize() == "nan"  # idempotent
        verdicts = [e for e in rec.events if e.name == "health.verdict"]
        assert len(verdicts) == 1
        assert verdicts[0].fields["n_nan"] == 1

    def test_detection_works_without_recorder(self):
        monitor = HealthMonitor(policy="halt")
        for i in range(10):
            monitor.observe_loss("s", 1.0 + 0.5 * i)
        assert monitor.should_halt  # NullRecorder attached, detection still on


class TestTrainingWiring:
    def test_dim_reports_health_verdict(self):
        dataset = _small_case()
        model = GAINImputer(epochs=2, batch_size=32, seed=0)
        config = DimConfig(
            epochs=2, batch_size=32, sinkhorn_max_iter=30, use_adversarial=False
        )
        with recording() as rec:
            report = DIM(config).train(model, dataset, np.random.default_rng(0))
        assert report.health_verdict is not None
        assert not report.halted
        assert any(e.name == "health.verdict" for e in rec.events)
        train_events = [e for e in rec.events if e.name == "dim.train"]
        assert train_events[0].fields["health_verdict"] == report.health_verdict

    def test_dim_halts_on_injected_nan(self, monkeypatch):
        """Acceptance: on_divergence='halt' stops DIM.train with a
        health.halt event when the loss goes non-finite."""
        from repro.core import dim as dim_module

        real_loss = dim_module.masked_mse_loss
        calls = {"n": 0}

        def poisoned(x_bar, target, mask):
            calls["n"] += 1
            loss = real_loss(x_bar, target, mask)
            if calls["n"] >= 3:
                loss.data = np.asarray(float("nan"))
            return loss

        monkeypatch.setattr(dim_module, "masked_mse_loss", poisoned)
        dataset = _small_case()
        model = GAINImputer(epochs=5, batch_size=32, seed=0)
        config = DimConfig(
            epochs=5,
            batch_size=32,
            sinkhorn_max_iter=30,
            use_adversarial=False,
            on_divergence="halt",
        )
        with recording() as rec:
            report = DIM(config).train(model, dataset, np.random.default_rng(0))
        assert report.halted
        assert report.health_verdict == "nan"
        assert any(e.name == "health.halt" for e in rec.events)
        # halted early: fewer steps than the full budget would take
        assert report.steps == 3

    def test_dim_warn_policy_does_not_halt(self, monkeypatch):
        from repro.core import dim as dim_module

        real_loss = dim_module.masked_mse_loss

        def poisoned(x_bar, target, mask):
            loss = real_loss(x_bar, target, mask)
            loss.data = np.asarray(float("nan"))
            return loss

        monkeypatch.setattr(dim_module, "masked_mse_loss", poisoned)
        dataset = _small_case()
        model = GAINImputer(epochs=2, batch_size=64, seed=0)
        config = DimConfig(
            epochs=2, batch_size=64, sinkhorn_max_iter=30, use_adversarial=False
        )
        report = DIM(config).train(model, dataset, np.random.default_rng(0))
        assert not report.halted
        assert report.health_verdict == "nan"

    def test_invalid_policy_rejected_at_train_time(self):
        dataset = _small_case(n=40)
        model = GAINImputer(epochs=1, batch_size=32, seed=0)
        config = DimConfig(epochs=1, on_divergence="panic")
        with pytest.raises(ValueError):
            DIM(config).train(model, dataset, np.random.default_rng(0))

    def test_gain_fit_records_verdict(self):
        dataset = _small_case(n=80)
        model = GAINImputer(epochs=2, batch_size=32, seed=0)
        with recording() as rec:
            model.fit(dataset)
        assert model.health_verdict is not None
        assert any(e.name == "health.verdict" for e in rec.events)

    def test_optimizer_grad_norm_histogram(self):
        dataset = _small_case(n=80)
        model = GAINImputer(epochs=1, batch_size=32, seed=0)
        with recording() as rec:
            model.fit(dataset)
        summary = rec.metrics.histogram("optim.adam.grad_norm").summary()
        assert summary["count"] > 0
        assert summary["min"] >= 0.0
