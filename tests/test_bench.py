"""Benchmark harness: case preparation, method runner, table rendering."""

import json

import numpy as np
import pytest

from repro.bench import (
    MethodResult,
    format_series,
    format_table,
    prepare_case,
    results_to_json,
    run_comparison,
    run_method,
    save_results,
)
from repro.core import SCIS, DimConfig, ScisConfig
from repro.models import GAINImputer, MeanImputer


@pytest.fixture(scope="module")
def tiny_case():
    return prepare_case("trial", n_samples=300, seed=0)


class TestPrepareCase:
    def test_normalised_observed_range(self, tiny_case):
        observed = tiny_case.train.values[tiny_case.train.mask == 1]
        assert observed.min() >= 0.0 and observed.max() <= 1.0 + 1e-12

    def test_holdout_nonempty(self, tiny_case):
        assert tiny_case.holdout.holdout_mask.sum() > 0

    def test_labels_and_task(self, tiny_case):
        assert tiny_case.labels.shape == (300,)
        assert tiny_case.task == "classification"

    def test_missing_rate_override(self):
        case = prepare_case("trial", n_samples=400, seed=0, missing_rate=0.6)
        # Overall missingness = 0.6 natural + 20% of the observed hidden.
        assert case.train.missing_rate > 0.6

    def test_mechanism_forwarded(self):
        case = prepare_case("trial", n_samples=300, seed=0, mechanism="mnar")
        assert case.train.missing_rate > 0


class TestRunMethod:
    def test_plain_imputer(self, tiny_case):
        result = run_method(lambda seed: MeanImputer(), tiny_case, n_seeds=2)
        assert result.method == "mean"
        assert result.available
        assert result.sample_rate == 1.0
        assert result.seconds >= 0

    def test_scis_runner_records_sample_rate(self, tiny_case):
        def factory(seed):
            config = ScisConfig(
                initial_size=60,
                validation_size=60,
                error_bound=0.05,
                dim=DimConfig(epochs=5),
                seed=seed,
            )
            return SCIS(GAINImputer(epochs=5, seed=seed), config)

        result = run_method(factory, tiny_case, method_name="scis-gain")
        assert result.method == "scis-gain"
        assert 0 < result.sample_rate <= 1.0

    def test_time_budget_marks_unavailable(self, tiny_case):
        result = run_method(lambda seed: MeanImputer(), tiny_case, time_budget=0.0)
        assert result.timed_out
        assert not result.available

    def test_bad_factory_raises(self, tiny_case):
        with pytest.raises(TypeError):
            run_method(lambda seed: object(), tiny_case)

    def test_multi_seed_variance_recorded(self, tiny_case):
        result = run_method(
            lambda seed: GAINImputer(epochs=3, seed=seed), tiny_case, n_seeds=2
        )
        assert result.rmse_std >= 0.0

    def test_run_comparison_grid(self, tiny_case):
        results = run_comparison(
            [tiny_case], {"mean": lambda s: MeanImputer()}, n_seeds=1
        )
        assert len(results) == 1
        assert results[0].dataset == "trial"


class TestTables:
    def _results(self):
        return [
            MethodResult("mean", "trial", 0.4, 0.01, 1.5, 1.0),
            MethodResult("scis-gain", "trial", 0.38, 0.02, 0.9, 0.23),
            MethodResult("ginn", "trial", timed_out=True),
        ]

    def test_format_table_contains_rows(self):
        table = format_table(self._results(), title="Table III")
        assert "Table III" in table
        assert "| mean |" in table
        assert "0.380" in table
        assert "23.00" in table  # sample rate in percent

    def test_unavailable_rendered_as_dash(self):
        table = format_table(self._results())
        assert "—" in table

    def test_format_series(self):
        text = format_series(
            "missing rate",
            [0.1, 0.2],
            {"gain": [0.4, 0.5], "scis": [0.39, float("nan")]},
        )
        assert "| 0.1 |" in text
        assert "—" in text

    def test_format_series_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1.0]})

    def test_json_roundtrip(self, tmp_path):
        results = self._results()
        payload = json.loads(results_to_json(results))
        assert payload[0]["method"] == "mean"
        path = tmp_path / "results.json"
        save_results(results, path)
        assert json.loads(path.read_text())[1]["sample_rate"] == 0.23


class TestGridSearch:
    def test_finds_better_configuration(self, rng):
        from repro.bench import grid_search
        from repro.data import IncompleteDataset, ampute
        from repro.models import KNNImputer

        latent = rng.normal(size=(300, 2))
        full = latent @ rng.normal(size=(2, 5))
        ds = ampute(IncompleteDataset(full), 0.3, "mcar", rng)
        result = grid_search(
            lambda **kw: KNNImputer(**kw), ds, {"k": [1, 5, 25]}, seed=0
        )
        assert len(result.trials) == 3
        assert result.best.rmse == min(t.rmse for t in result.trials)
        assert "k" in result.best.params
        assert "rmse" in result.summary()

    def test_multi_parameter_product(self, rng):
        from repro.bench import grid_search
        from repro.data import IncompleteDataset, ampute
        from repro.models import MICEImputer

        ds = ampute(IncompleteDataset(rng.normal(size=(120, 4))), 0.2, "mcar", rng)
        result = grid_search(
            lambda **kw: MICEImputer(**kw),
            ds,
            {"n_imputations": [1, 2], "n_iterations": [1, 2]},
            seed=0,
        )
        assert len(result.trials) == 4

    def test_empty_grid_raises(self, rng):
        from repro.bench import grid_search
        from repro.data import IncompleteDataset
        from repro.models import MeanImputer

        with pytest.raises(ValueError):
            grid_search(
                lambda **kw: MeanImputer(), IncompleteDataset(rng.normal(size=(10, 2))), {}
            )

    def test_best_on_empty_trials_raises(self):
        from repro.bench.tuning import TuningResult

        with pytest.raises(ValueError):
            _ = TuningResult().best
