"""Statistical imputers: hand-checked values and API invariants."""

import numpy as np
import pytest

from repro.data import IncompleteDataset
from repro.models import (
    ConstantImputer,
    KNNImputer,
    MeanImputer,
    MedianImputer,
    ModeImputer,
    impute_equation,
    make_imputer,
)


@pytest.fixture
def toy():
    return IncompleteDataset(
        np.array(
            [
                [1.0, np.nan, 2.0],
                [3.0, 4.0, np.nan],
                [5.0, 6.0, 2.0],
                [np.nan, 4.0, 2.0],
            ]
        )
    )


class TestImputeEquation:
    def test_observed_cells_pass_through(self, toy):
        reconstruction = np.full(toy.shape, 99.0)
        imputed = impute_equation(toy.values, toy.mask, reconstruction)
        observed = toy.mask == 1.0
        assert np.allclose(imputed[observed], np.nan_to_num(toy.values)[observed])

    def test_missing_cells_use_reconstruction(self, toy):
        reconstruction = np.full(toy.shape, 99.0)
        imputed = impute_equation(toy.values, toy.mask, reconstruction)
        assert (imputed[toy.mask == 0.0] == 99.0).all()

    def test_no_nan_in_output(self, toy):
        imputed = impute_equation(toy.values, toy.mask, np.zeros(toy.shape))
        assert not np.isnan(imputed).any()


class TestColumnStatImputers:
    def test_mean_values(self, toy):
        imputed = MeanImputer().fit_transform(toy)
        assert imputed[0, 1] == pytest.approx((4 + 6 + 4) / 3)
        assert imputed[3, 0] == pytest.approx(3.0)

    def test_median_values(self, toy):
        imputed = MedianImputer().fit_transform(toy)
        assert imputed[0, 1] == pytest.approx(4.0)

    def test_mode_values(self, toy):
        imputed = ModeImputer().fit_transform(toy)
        assert imputed[1, 2] == pytest.approx(2.0)
        assert imputed[0, 1] == pytest.approx(4.0)

    def test_constant(self, toy):
        imputed = ConstantImputer(value=-7.0).fit_transform(toy)
        assert imputed[0, 1] == -7.0

    def test_fully_missing_column_falls_back_to_zero(self):
        ds = IncompleteDataset(np.array([[np.nan, 1.0], [np.nan, 2.0]]))
        imputed = MeanImputer().fit_transform(ds)
        assert (imputed[:, 0] == 0.0).all()

    def test_unfitted_raises(self, toy):
        with pytest.raises(RuntimeError):
            MeanImputer().transform(toy)

    def test_reconstruct_new_rows(self, toy):
        model = MeanImputer().fit(toy)
        out = model.reconstruct(np.array([[np.nan, np.nan, np.nan]]), np.zeros((1, 3)))
        assert out.shape == (1, 3)
        assert out[0, 0] == pytest.approx(3.0)


class TestKNN:
    def test_exact_neighbour_recovery(self):
        # Two identical clusters; the missing value should come from the twin.
        values = np.array(
            [
                [0.0, 0.0, 5.0],
                [0.0, 0.0, np.nan],
                [10.0, 10.0, -5.0],
                [10.0, 10.0, np.nan],
            ]
        )
        ds = IncompleteDataset(values)
        imputed = KNNImputer(k=1).fit_transform(ds)
        assert imputed[1, 2] == pytest.approx(5.0)
        assert imputed[3, 2] == pytest.approx(-5.0)

    def test_k_averaging(self):
        values = np.array(
            [
                [0.0, 2.0],
                [0.1, 4.0],
                [0.05, np.nan],
                [50.0, 100.0],
            ]
        )
        imputed = KNNImputer(k=2).fit_transform(IncompleteDataset(values))
        assert imputed[2, 1] == pytest.approx(3.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNImputer(k=0)

    def test_beats_mean_on_correlated_data(self, small_incomplete, rng):
        from repro.data import holdout_split

        hs = holdout_split(small_incomplete, 0.2, rng)
        knn_rmse = hs.rmse(KNNImputer(k=5).fit_transform(hs.train))
        mean_rmse = hs.rmse(MeanImputer().fit_transform(hs.train))
        assert knn_rmse < mean_rmse


class TestRegistry:
    def test_make_by_name(self):
        assert make_imputer("mean").name == "mean"
        assert make_imputer("MissF").name == "missforest"

    def test_kwargs_forwarded(self):
        assert make_imputer("knn", k=3).k == 3

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_imputer("nope")

    def test_names_unique(self):
        from repro.models import imputer_names

        names = imputer_names()
        assert len(names) == len(set(names))
        assert "missf" not in names
