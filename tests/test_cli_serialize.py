"""CLI subcommands and model/result serialization."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import SCIS, DimConfig, ScisConfig
from repro.data import generate, read_csv, write_csv
from repro.models import GAINImputer, GINNImputer
from repro.serialize import (
    load_generator,
    load_scis_summary,
    save_generator,
    save_scis_result,
)


@pytest.fixture
def csv_path(tmp_path):
    generated = generate("trial", n_samples=250, seed=0)
    path = tmp_path / "trial.csv"
    write_csv(generated.dataset, path)
    return path


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_impute_defaults(self):
        args = build_parser().parse_args(["impute", "in.csv", "out.csv"])
        assert args.method == "gain"
        assert not args.scis

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["impute", "in.csv", "out.csv", "--method", "x"])


class TestCliCommands:
    def test_datagen(self, tmp_path):
        out = tmp_path / "gen.csv"
        assert main(["datagen", "trial", str(out), "--samples", "120"]) == 0
        loaded = read_csv(out)
        assert loaded.shape == (120, 9)

    def test_impute_mean(self, csv_path, tmp_path):
        out = tmp_path / "imputed.csv"
        assert main(["impute", str(csv_path), str(out), "--method", "mean"]) == 0
        loaded = read_csv(out)
        assert not np.isnan(loaded.values).any()

    def test_impute_gain(self, csv_path, tmp_path):
        out = tmp_path / "imputed.csv"
        code = main(
            ["impute", str(csv_path), str(out), "--method", "gain", "--epochs", "3"]
        )
        assert code == 0
        assert not np.isnan(read_csv(out).values).any()

    def test_impute_scis(self, csv_path, tmp_path):
        out = tmp_path / "imputed.csv"
        code = main(
            [
                "impute", str(csv_path), str(out),
                "--method", "gain", "--scis",
                "--epochs", "3", "--initial-size", "50", "--error-bound", "0.05",
            ]
        )
        assert code == 0
        assert not np.isnan(read_csv(out).values).any()

    def test_scis_rejects_non_gan(self, csv_path, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["impute", str(csv_path), str(tmp_path / "x.csv"),
                 "--method", "mean", "--scis"]
            )

    def test_evaluate(self, csv_path, capsys):
        code = main(
            ["evaluate", str(csv_path), "--method", "mean", "--holdout", "0.2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "rmse:" in captured.out
        assert "sample rate: 100.0%" in captured.out


class TestGeneratorSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path, rng):
        model = GAINImputer(seed=0)
        model.build(5)
        values = rng.random((10, 5))
        mask = (rng.random((10, 5)) > 0.3).astype(float)
        noise = model.sample_noise(mask.shape, np.random.default_rng(0))
        before = model.reconstruct_batch(values, mask, noise).data.copy()

        path = tmp_path / "gain.npz"
        save_generator(model, path)

        fresh = GAINImputer(seed=99)  # different init
        load_generator(fresh, path)
        after = fresh.reconstruct_batch(values, mask, noise).data
        assert np.allclose(before, after)

    def test_unbuilt_model_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_generator(GAINImputer(), tmp_path / "x.npz")

    def test_wrong_model_type_rejected(self, tmp_path):
        model = GAINImputer(seed=0)
        model.build(4)
        path = tmp_path / "gain.npz"
        save_generator(model, path)
        with pytest.raises(ValueError):
            load_generator(GINNImputer(), path)

    def test_ginn_roundtrip(self, tmp_path):
        model = GINNImputer(seed=0)
        model.build(4)
        path = tmp_path / "ginn.npz"
        save_generator(model, path)
        fresh = GINNImputer(seed=1)
        load_generator(fresh, path)
        assert fresh.generator.num_parameters() == model.generator.num_parameters()


class TestScisResultSerialization:
    def test_roundtrip(self, tmp_path, small_incomplete):
        config = ScisConfig(
            initial_size=60,
            validation_size=60,
            error_bound=0.05,
            dim=DimConfig(epochs=3),
            seed=0,
        )
        result = SCIS(GAINImputer(epochs=3, seed=0), config).fit_transform(
            small_incomplete
        )
        path = tmp_path / "scis.npz"
        save_scis_result(result, path)
        summary = load_scis_summary(path)
        assert summary["n_star"] == result.n_star
        assert summary["sample_rate"] == pytest.approx(result.sample_rate)
        assert np.allclose(summary["imputed"], result.imputed)
        assert "sse" in summary["timings"]
