"""Observability layer: registry semantics, spans, recorders, exporters,
and the instrumentation contract wired through DIM / Sinkhorn / optimisers."""

import csv
import io
import json
import os

import numpy as np
import pytest

from repro.core import DIM, DimConfig
from repro.data import MinMaxNormalizer, generate
from repro.models import GAINImputer
from repro.obs import (
    Counter,
    Event,
    Gauge,
    Histogram,
    InMemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    events_to_csv,
    get_recorder,
    load_trace,
    recording,
    set_recorder,
    summarize_trace,
    trace,
    trace_to_dict,
    write_csv_events,
    write_json_trace,
)
from repro.optim import Adam
from repro.ot import SinkhornConfig, sinkhorn


class TestRegistry:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_last_value(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_moments_exact(self):
        hist = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.min == 1.0 and hist.max == 4.0
        assert hist.mean == 2.5
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_histogram_reservoir_bounds_memory(self):
        hist = Histogram("h", max_samples=16)
        for v in range(1000):
            hist.observe(float(v))
        assert hist.count == 1000  # exact even past the reservoir bound
        assert hist.min == 0.0 and hist.max == 999.0
        assert len(hist._samples) == 16

    def test_histogram_percentiles_stable_across_hash_seeds(self):
        """The reservoir RNG is seeded from the metric name via crc32, so
        percentile estimates must not depend on PYTHONHASHSEED."""
        import subprocess
        import sys

        script = (
            "from repro.obs import Histogram\n"
            "h = Histogram('span.dim.epoch.seconds', max_samples=32)\n"
            "for v in range(1000):\n"
            "    h.observe(float(v))\n"
            "print(h.percentile(50), h.percentile(90), h.percentile(99))\n"
        )
        outputs = set()
        for seed in ("0", "1", "424242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONHASHSEED": seed},
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, f"reservoir varies with hash seed: {outputs}"

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_registry_rejects_cross_type_reuse(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1


class TestRecorderLifecycle:
    def test_default_recorder_is_null_and_disabled(self):
        recorder = get_recorder()
        assert isinstance(recorder, NullRecorder)
        assert recorder.enabled is False

    def test_recording_attaches_and_restores(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
            assert rec.enabled
        assert get_recorder() is before

    def test_recording_restores_on_exception(self):
        before = get_recorder()
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert get_recorder() is before

    def test_set_recorder_returns_previous(self):
        rec = InMemoryRecorder()
        previous = set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            set_recorder(previous)

    def test_emit_collects_events_with_timestamps(self):
        rec = InMemoryRecorder()
        rec.emit("a", x=1)
        rec.emit("b", y="s")
        assert [e.name for e in rec.events] == ["a", "b"]
        assert rec.events[0].fields == {"x": 1}
        assert rec.events[0].t <= rec.events[1].t

    def test_max_events_drops_and_counts(self):
        rec = InMemoryRecorder(max_events=2)
        for i in range(5):
            rec.emit("e", i=i)
        assert len(rec.events) == 2
        assert rec.dropped_events == 3
        assert rec.to_dict()["dropped_events"] == 3

    def test_noop_path_allocates_nothing(self):
        """The overhead guarantee: a disabled recorder stores no state."""
        null = NullRecorder()
        null.emit("never", x=1)
        null.inc("c")
        null.observe("h", 1.0)
        null.set_gauge("g", 2.0)
        assert null.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_instrumented_code_emits_nothing_when_disabled(self):
        cost = np.random.default_rng(0).random((6, 6))
        result = sinkhorn(cost, SinkhornConfig(reg=1.0))
        # a fresh recorder attached *after* the call saw none of it
        with recording() as rec:
            pass
        assert rec.events == []
        assert result.converged  # the solve itself still worked


class TestSpans:
    def test_trace_disabled_is_noop(self):
        with trace("outer"):
            pass  # no recorder attached: must not raise or record anything

    def test_span_event_and_histogram(self):
        with recording() as rec:
            with trace("solve", extra="tag"):
                pass
        spans = [e for e in rec.events if e.name == "span"]
        assert len(spans) == 1
        assert spans[0].fields["span"] == "solve"
        assert spans[0].fields["depth"] == 0
        assert spans[0].fields["parent"] is None
        assert spans[0].fields["extra"] == "tag"
        assert spans[0].fields["seconds"] >= 0.0
        assert rec.metrics.histogram("span.solve.seconds").count == 1

    def test_span_nesting_depth_and_parent(self):
        with recording() as rec:
            with trace("outer"):
                with trace("inner"):
                    pass
                with trace("inner"):
                    pass
        spans = [e.fields for e in rec.events if e.name == "span"]
        inner = [s for s in spans if s["span"] == "inner"]
        outer = [s for s in spans if s["span"] == "outer"]
        assert len(inner) == 2 and len(outer) == 1
        assert all(s["depth"] == 1 and s["parent"] == "outer" for s in inner)
        assert outer[0]["depth"] == 0 and outer[0]["parent"] is None
        # inner spans close before (and are recorded before) the outer one
        assert rec.metrics.histogram("span.inner.seconds").count == 2

    def test_span_restores_stack_on_exception(self):
        with recording() as rec:
            with pytest.raises(ValueError):
                with trace("outer"):
                    raise ValueError("boom")
            with trace("after"):
                pass
        after = [e.fields for e in rec.events if e.fields.get("span") == "after"]
        assert after[0]["depth"] == 0 and after[0]["parent"] is None

    def test_deep_raise_unwinds_every_stack_level(self):
        # A raise three levels down must pop all three frames — a later
        # span at top level sees depth 0, not a leaked lineage.
        with recording() as rec:
            with pytest.raises(RuntimeError):
                with trace("a"):
                    with trace("b"):
                        with trace("c"):
                            raise RuntimeError("boom")
            with trace("after"):
                pass
        spans = {e.fields["span"]: e.fields for e in rec.events if e.name == "span"}
        # Every abandoned span still closed (emitted) with its true lineage.
        assert spans["c"]["depth"] == 2 and spans["c"]["parent"] == "b"
        assert spans["b"]["depth"] == 1 and spans["b"]["parent"] == "a"
        assert spans["a"]["depth"] == 0 and spans["a"]["parent"] is None
        assert spans["after"]["depth"] == 0 and spans["after"]["parent"] is None


class TestAbsorbEdgeCases:
    """Folding a child recorder's trace into a parent with clashing names."""

    def test_counter_collision_sums(self):
        parent, child = InMemoryRecorder(), InMemoryRecorder()
        parent.inc("shared.count", 2)
        child.inc("shared.count", 3)
        child.inc("child.only", 1)
        parent.absorb(child.to_dict())
        assert parent.metrics.counter("shared.count").value == 5
        assert parent.metrics.counter("child.only").value == 1

    def test_gauge_collision_takes_child_value_unless_unset(self):
        parent, child = InMemoryRecorder(), InMemoryRecorder()
        parent.set_gauge("shared.gauge", 1.0)
        child.set_gauge("shared.gauge", 7.0)
        child.metrics.gauge("unset.gauge")  # created but never set
        parent.set_gauge("unset.gauge", 4.0)
        parent.absorb(child.to_dict())
        assert parent.metrics.gauge("shared.gauge").value == 7.0
        # A child gauge that was never set must not clobber the parent's.
        assert parent.metrics.gauge("unset.gauge").value == 4.0

    def test_histogram_collision_merges_moments_exactly(self):
        parent, child = InMemoryRecorder(), InMemoryRecorder()
        for value in (1.0, 2.0):
            parent.observe("shared.hist", value)
        for value in (3.0, 4.0, 5.0):
            child.observe("shared.hist", value)
        parent.absorb(child.to_dict(include_samples=True))
        merged = parent.metrics.histogram("shared.hist")
        assert merged.count == 5
        assert merged.total == 15.0
        assert merged.min == 1.0 and merged.max == 5.0
        assert merged.mean == pytest.approx(3.0)
        # Samples travelled too, so quantiles span both recorders.
        assert merged.percentile(100.0) == 5.0

    def test_anchored_absorb_preserves_event_timestamps(self):
        parent = InMemoryRecorder()
        child = InMemoryRecorder(clock_anchor=parent._start)
        assert child.anchored
        child.emit("child.evt", x=1)
        original_t = child.events[0].t
        parent.absorb(child.to_dict())
        [event] = [e for e in parent.events if e.name == "child.evt"]
        assert event.t == original_t  # already on the parent's clock

    def test_unanchored_absorb_restamps_at_absorb_time(self):
        parent, child = InMemoryRecorder(), InMemoryRecorder()
        assert not child.anchored
        child.emit("child.evt")
        trace_dict = child.to_dict()
        trace_dict["events"][0]["t"] = 1e6  # a foreign clock's offset
        parent.absorb(trace_dict)
        [event] = parent.events
        assert event.t < 1e5  # re-stamped on the parent clock, not copied

    def test_absorb_accumulates_dropped_events(self):
        parent = InMemoryRecorder()
        child = InMemoryRecorder(max_events=1)
        child.emit("kept")
        child.emit("dropped")
        parent.absorb(child.to_dict())
        assert parent.dropped_events == 1

    def test_clock_at_maps_perf_counter_onto_recorder_clock(self):
        import time as _time

        rec = InMemoryRecorder()
        now = _time.perf_counter()
        offset = rec.clock_at(now)
        assert 0.0 <= offset < 10.0
        assert rec.clock_at(now + 1.5) == pytest.approx(offset + 1.5)


class TestExporters:
    def _sample_recorder(self):
        rec = InMemoryRecorder()
        rec.emit("dim.epoch", epoch=0, ms_divergence=0.5)
        rec.emit("dim.epoch", epoch=1, ms_divergence=0.25)
        rec.emit("other", note="text")
        rec.inc("steps", 3)
        rec.set_gauge("epoch", 1)
        rec.observe("loss", 0.5)
        return rec

    def test_json_round_trip(self, tmp_path):
        rec = self._sample_recorder()
        path = write_json_trace(rec, tmp_path / "trace.json")
        loaded = load_trace(path)
        original = trace_to_dict(rec)
        assert loaded["events"] == original["events"]
        assert loaded["metrics"] == original["metrics"]
        assert loaded["n_events"] == 3
        assert loaded["version"] == 1

    def test_json_serialises_numpy_scalars(self, tmp_path):
        rec = InMemoryRecorder()
        rec.emit("e", int_val=np.int64(3), float_val=np.float64(0.5))
        loaded = load_trace(write_json_trace(rec, tmp_path / "np.json"))
        assert loaded["events"][0]["fields"] == {"int_val": 3, "float_val": 0.5}

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"no": "events"}))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_csv_columns_and_filter(self, tmp_path):
        rec = self._sample_recorder()
        text = events_to_csv(rec, event_name="dim.epoch")
        lines = text.strip().splitlines()
        assert lines[0] == "t,name,epoch,ms_divergence"
        assert len(lines) == 3
        path = write_csv_events(rec, tmp_path / "events.csv")
        assert (tmp_path / "events.csv").read_text().splitlines()[0].startswith("t,name")

    def test_csv_escapes_commas_quotes_and_newlines(self, tmp_path):
        rec = InMemoryRecorder()
        rec.emit(
            "note",
            message='has, comma and "quotes"',
            detail="line one\nline two",
            plain="ok",
        )
        rec.emit("note", message="second, row", detail="x", plain="y")
        text = events_to_csv(rec)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["t", "name", "message", "detail", "plain"]
        assert rows[1][2] == 'has, comma and "quotes"'
        assert rows[1][3] == "line one\nline two"
        assert rows[2][2] == "second, row"
        assert len(rows) == 3  # embedded newline must not add a row
        # and the file-writing path round-trips identically
        path = write_csv_events(rec, tmp_path / "special.csv")
        with open(path, newline="") as handle:
            assert list(csv.reader(handle)) == rows

    def test_summarize_mentions_events_and_metrics(self):
        rec = self._sample_recorder()
        text = summarize_trace(rec)
        assert "dim.epoch" in text
        assert "steps" in text
        assert "loss" in text
        assert "3 events" in text


@pytest.fixture(scope="module")
def dim_trace():
    """One tiny instrumented DIM run shared by the integration tests."""
    rng = np.random.default_rng(0)
    dataset = MinMaxNormalizer().fit_transform(
        generate("trial", n_samples=200, seed=0).dataset
    )
    model = GAINImputer(seed=0)
    with recording() as rec:
        report = DIM(DimConfig(epochs=3, batch_size=64)).train(model, dataset, rng)
    return rec, report


class TestDimIntegration:
    def test_epoch_counter_monotone(self, dim_trace):
        rec, report = dim_trace
        epochs = [e.fields["epoch"] for e in rec.events if e.name == "dim.epoch"]
        assert epochs == list(range(report.epochs))

    def test_epoch_events_carry_losses(self, dim_trace):
        rec, _ = dim_trace
        for event in rec.events:
            if event.name != "dim.epoch":
                continue
            assert np.isfinite(event.fields["ms_divergence"])
            assert np.isfinite(event.fields["g_loss"])
            assert np.isfinite(event.fields["d_loss"])
            assert event.fields["steps"] > 0

    def test_sinkhorn_events_present_with_violation(self, dim_trace):
        rec, _ = dim_trace
        # DIM defaults to the stacked solver, so the training trace carries
        # sinkhorn.batched_solve events instead of per-problem solves.
        solves = [e for e in rec.events if e.name == "sinkhorn.batched_solve"]
        assert solves, "DIM training must emit sinkhorn.batched_solve events"
        for event in solves:
            assert event.fields["stack"] >= 2
            assert event.fields["sweeps"] >= 1
            assert event.fields["iterations"] >= event.fields["sweeps"]
            assert event.fields["max_marginal_violation"] >= 0.0

    def test_counters_and_timings(self, dim_trace):
        rec, report = dim_trace
        snap = rec.metrics.snapshot()
        assert snap["counters"]["dim.epochs"] == report.epochs
        assert snap["counters"]["optim.adam.steps"] >= report.steps
        assert snap["histograms"]["optim.adam.step_seconds"]["count"] >= report.steps
        batched = [e for e in rec.events if e.name == "sinkhorn.batched_solve"]
        assert snap["counters"]["sinkhorn.batched_solves"] == len(batched)
        # Every stacked problem still counts as a solve.
        assert snap["counters"]["sinkhorn.solves"] == sum(
            e.fields["stack"] for e in batched
        )
        assert snap["counters"].get("sinkhorn.loop_solves", 0) == 0
        assert snap["histograms"]["sinkhorn.batched_iterations"]["count"] == sum(
            e.fields["stack"] for e in batched
        )

    def test_trace_exports_cleanly(self, dim_trace, tmp_path):
        rec, _ = dim_trace
        loaded = load_trace(write_json_trace(rec, tmp_path / "dim.json"))
        names = {e["name"] for e in loaded["events"]}
        assert {"dim.epoch", "dim.train", "sinkhorn.batched_solve", "span"} <= names


class TestSinkhornResultViolation:
    def test_converged_run_reports_violation_below_tol(self):
        cost = np.random.default_rng(0).random((8, 8))
        result = sinkhorn(cost, SinkhornConfig(reg=1.0, tol=1e-9))
        assert result.converged
        assert 0.0 <= result.marginal_violation < 1e-9

    def test_near_miss_distinguishable_from_divergence(self):
        cost = np.random.default_rng(1).random((8, 8))
        # One sweep at small reg: not converged, but the violation is finite
        # and tells how far off the marginals still are.
        result = sinkhorn(cost, SinkhornConfig(reg=0.05, max_iter=1, tol=1e-12))
        assert not result.converged
        assert np.isfinite(result.marginal_violation)
        assert result.marginal_violation > 0.0
        more = sinkhorn(cost, SinkhornConfig(reg=0.05, max_iter=200, tol=1e-12))
        assert more.marginal_violation < result.marginal_violation


class TestSinkhornCacheObservability:
    def test_warm_start_counters_surface_in_summary(self):
        cost = np.random.default_rng(3).random((8, 8))
        with recording() as rec:
            cold = sinkhorn(cost, SinkhornConfig(reg=1.0))
            sinkhorn(cost, SinkhornConfig(reg=1.0), init=(cold.f, cold.g))
        snap = rec.metrics.snapshot()
        assert snap["counters"]["sinkhorn.warm_starts"] == 1
        assert snap["histograms"]["sinkhorn.warm_iterations"]["count"] == 1
        solves = [e for e in rec.events if e.name == "sinkhorn.solve"]
        assert [e.fields["warm_started"] for e in solves] == [False, True]
        text = summarize_trace(rec)
        assert "sinkhorn.warm_starts" in text

    def test_selfterm_cache_hits_surface_in_summary(self):
        from repro.ot import MaskingSinkhornLoss
        from repro.tensor import Tensor

        rng = np.random.default_rng(0)
        x = rng.random((12, 3))
        mask = (rng.random((12, 3)) > 0.3).astype(np.float64)
        loss = MaskingSinkhornLoss(reg=1.0)
        with recording() as rec:
            loss(Tensor(x), x, mask, batch_key="k")
            loss(Tensor(x), x, mask, batch_key="k")
        snap = rec.metrics.snapshot()
        assert snap["counters"]["sinkhorn.selfterm_cache_hits"] == 1
        assert "sinkhorn.selfterm_cache_hits" in summarize_trace(rec)


class TestAdamTiming:
    def test_step_timing_recorded_only_when_enabled(self):
        from repro.nn import Parameter

        param = Parameter(np.array([1.0, 2.0]))
        optimizer = Adam([param], lr=0.1)
        param.grad = np.array([0.1, 0.1])
        optimizer.step()  # disabled: nothing recorded anywhere
        with recording() as rec:
            param.grad = np.array([0.1, 0.1])
            optimizer.step()
        snap = rec.metrics.snapshot()
        assert snap["counters"]["optim.adam.steps"] == 1
        assert snap["histograms"]["optim.adam.step_seconds"]["count"] == 1
