"""Repository health: exports resolve, docs reference real artefacts."""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", _all_modules())
def test_dunder_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", _all_modules())
def test_every_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


class TestDocsReferenceRealFiles:
    def _referenced_paths(self, text):
        # benchmarks/test_x.py and examples/y.py style references
        return re.findall(r"(?:benchmarks|examples|docs)/[\w./-]+\.(?:py|md)", text)

    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_referenced_files_exist(self, doc):
        text = (REPO_ROOT / doc).read_text()
        for rel_path in self._referenced_paths(text):
            assert (REPO_ROOT / rel_path).exists(), f"{doc} references missing {rel_path}"

    def test_experiment_index_covers_all_benches(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        bench_files = sorted(
            p.name for p in (REPO_ROOT / "benchmarks").glob("test_*.py")
        )
        for name in bench_files:
            assert name in design, f"DESIGN.md experiment index misses {name}"

    def test_examples_listed_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for example in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert example.name in readme, f"README misses examples/{example.name}"

    def test_at_least_three_examples(self):
        assert len(list((REPO_ROOT / "examples").glob("*.py"))) >= 3


class TestObsDocConsistency:
    """docs/api.md must track the public repro.obs surface (and exist)."""

    def test_observability_doc_exists(self):
        assert (REPO_ROOT / "docs" / "observability.md").exists()

    def test_every_public_obs_symbol_documented_in_api(self):
        import repro.obs

        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        missing = [name for name in repro.obs.__all__ if name not in api_text]
        assert not missing, f"docs/api.md misses repro.obs symbols: {missing}"

    def test_obs_cli_subcommand_documented(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        assert "repro obs" in api_text

    def test_sinkhorn_cache_metrics_documented(self):
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in (
            "sinkhorn.warm_starts",
            "sinkhorn.selfterm_cache_hits",
            "sinkhorn.warm_iterations",
        ):
            assert name in obs_text, f"docs/observability.md misses {name}"

    def test_profiler_and_health_events_documented(self):
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in (
            "profiler.op",
            "profiler.summary",
            "health.nan",
            "health.divergence",
            "health.oscillation",
            "health.halt",
            "health.verdict",
            "health.nan_grad",
            "health.sinkhorn_nonfinite",
            "health.issues",
            "health.grad_norm.",
            "optim.<name>.grad_norm",
        ):
            assert name in obs_text, f"docs/observability.md misses {name}"

    def test_new_cli_subcommands_documented(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        for phrase in ("repro obs diff", "repro profile", "repro bench smoke"):
            assert phrase in api_text, f"docs/api.md misses `{phrase}`"

    def test_committed_bench_baseline_is_loadable(self):
        from repro.bench.baselines import load_baseline

        baseline = load_baseline(REPO_ROOT / "BENCH_baseline.json")
        assert baseline["kind"] == "bench-baseline"
        assert any(k.startswith("rmse.") for k in baseline["metrics"])


class TestTracingDocConsistency:
    """docs must track the tracing/live-telemetry surface added with
    request-scoped tracing: every literal event name emitted anywhere in
    src/ belongs in the docs/observability.md catalogue, as do the span
    names assembled by the serving and sharded layers."""

    def test_every_emitted_event_name_documented(self):
        # Any `recorder.emit("some.name", ...)` literal in the source tree
        # must appear in docs/observability.md — the catalogue IS the
        # contract, and an undocumented event is a silent drift.
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        pattern = re.compile(r"\.emit\(\s*['\"]([a-z0-9_.]+)['\"]")
        missing = set()
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            for name in pattern.findall(path.read_text()):
                if name not in obs_text:
                    missing.add(f"{name} (from {path.relative_to(REPO_ROOT)})")
        assert not missing, (
            f"docs/observability.md misses emitted event names: {sorted(missing)}"
        )

    def test_lifecycle_span_names_documented(self):
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in (
            "serve.queue_wait",
            "serve.coalesce",
            "serve.execute",
            "serve.reply",
            "serve.model",
            "shard.fit_impute",
            "shard.train",
            "shard.impute",
            "trace_id",
            "parent_span_id",
        ):
            assert name in obs_text, f"docs/observability.md misses {name}"

    def test_tracing_cli_commands_documented(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        for phrase in ("repro obs waterfall", "repro obs tail", "repro obs export"):
            assert phrase in api_text, f"docs/api.md misses `{phrase}`"
            assert phrase in obs_text, f"docs/observability.md misses `{phrase}`"
        assert "--live" in obs_text

    def test_slo_ratio_documented_in_serving_doc(self):
        serving_doc = (REPO_ROOT / "docs" / "serving.md").read_text()
        for name in ("serving.p95_over_p50", "metrics"):
            assert name in serving_doc, f"docs/serving.md misses {name}"

    def test_clock_anchoring_documented_in_parallel_doc(self):
        parallel_doc = (REPO_ROOT / "docs" / "parallel.md").read_text()
        for phrase in ("clock_anchor", "trace_id"):
            assert phrase in parallel_doc, f"docs/parallel.md misses {phrase}"


class TestBackendDocConsistency:
    """docs must track the tensor-backend protocol and the batched solver."""

    def test_backends_doc_exists(self):
        assert (REPO_ROOT / "docs" / "backends.md").exists()

    def test_backend_symbols_documented_in_api(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        for name in (
            "TensorBackend",
            "NumpyBackend",
            "ArrayApiBackend",
            "get_backend",
            "set_backend",
            "use_backend",
            "validate_backend",
            "REPRO_BACKEND",
        ):
            assert name in api_text, f"docs/api.md misses {name}"

    def test_batched_solver_symbols_documented_in_api(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        for name in (
            "SinkhornConfig",
            "sinkhorn_batched",
            "BatchedSinkhornResult",
            "BatchPlan",
        ):
            assert name in api_text, f"docs/api.md misses {name}"

    def test_protocol_functions_listed_in_backends_doc(self):
        from repro.tensor.backend import PROTOCOL_FUNCTIONS

        doc = (REPO_ROOT / "docs" / "backends.md").read_text()
        missing = [name for name in PROTOCOL_FUNCTIONS if f"`{name}`" not in doc]
        assert not missing, f"docs/backends.md misses protocol functions: {missing}"

    def test_batched_telemetry_documented(self):
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in (
            "sinkhorn.batched_solve",
            "sinkhorn.batched_solves",
            "sinkhorn.batched_problems",
            "sinkhorn.batched_stack_size",
            "sinkhorn.batched_sweeps",
            "sinkhorn.batched_iterations",
            "sinkhorn.loop_solves",
        ):
            assert name in obs_text, f"docs/observability.md misses {name}"

    def test_backends_doc_cross_linked(self):
        for doc in ("architecture.md", "api.md"):
            text = (REPO_ROOT / "docs" / doc).read_text()
            assert "backends.md" in text, f"docs/{doc} does not link docs/backends.md"
        assert "backends.md" in (REPO_ROOT / "README.md").read_text()

    def test_backends_doc_references_real_files(self):
        doc = (REPO_ROOT / "docs" / "backends.md").read_text()
        for rel_path in re.findall(r"tests/[\w./-]+\.py", doc):
            assert (REPO_ROOT / rel_path).exists(), (
                f"docs/backends.md references missing {rel_path}"
            )


class TestParallelDocConsistency:
    """docs must track the repro.parallel surface, events, and knobs."""

    def test_parallel_doc_exists(self):
        assert (REPO_ROOT / "docs" / "parallel.md").exists()

    def test_every_public_parallel_symbol_documented_in_api(self):
        import repro.parallel

        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        missing = [n for n in repro.parallel.__all__ if n not in api_text]
        assert not missing, f"docs/api.md misses repro.parallel symbols: {missing}"

    def test_parallel_events_documented(self):
        obs_text = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in (
            "parallel.tasks",
            "parallel.fallback",
            "parallel.batches",
            "parallel.fallbacks",
        ):
            assert name in obs_text, f"docs/observability.md misses {name}"

    def test_workers_knobs_documented(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        parallel_doc = (REPO_ROOT / "docs" / "parallel.md").read_text()
        for text, where in ((api_text, "api.md"), (readme, "README.md"), (parallel_doc, "parallel.md")):
            assert "--workers" in text, f"{where} misses --workers"
            assert "REPRO_WORKERS" in text, f"{where} misses REPRO_WORKERS"

    def test_parity_suites_referenced(self):
        parallel_doc = (REPO_ROOT / "docs" / "parallel.md").read_text()
        for path in ("tests/test_parallel.py", "benchmarks/test_ext_parallel.py"):
            assert path in parallel_doc
            assert (REPO_ROOT / path).exists()


class TestServingDocConsistency:
    """docs must track the repro.serve surface, events, and CLI commands."""

    def test_serving_doc_exists(self):
        assert (REPO_ROOT / "docs" / "serving.md").exists()

    def test_every_public_serve_symbol_documented_in_api(self):
        import repro.serve

        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        missing = [n for n in repro.serve.__all__ if n not in api_text]
        assert not missing, f"docs/api.md misses repro.serve symbols: {missing}"

    def test_serve_cli_commands_documented(self):
        api_text = (REPO_ROOT / "docs" / "api.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        for phrase in ("repro serve fit", "repro serve list", "repro serve run",
                       "repro bench serving"):
            assert phrase in api_text, f"docs/api.md misses `{phrase}`"
        for phrase in ("repro serve fit", "repro serve run", "repro bench serving"):
            assert phrase in readme, f"README.md misses `{phrase}`"

    def test_serve_events_documented(self):
        serving_doc = (REPO_ROOT / "docs" / "serving.md").read_text()
        obs_doc = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in (
            "serve.request",
            "serve.batch",
            "serve.evict",
            "serve.queue_depth",
            "serve.requests",
            "serve.batches",
            "serve.errors",
            "serve.evictions",
            "serve.latency_seconds",
            "serve.coalesced",
        ):
            assert name in serving_doc, f"docs/serving.md misses {name}"
        for name in ("serve.request", "serve.batch", "serve.evict"):
            assert name in obs_doc, f"docs/observability.md misses {name}"

    def test_serving_doc_cross_linked(self):
        for doc in ("architecture.md", "observability.md", "api.md"):
            text = (REPO_ROOT / "docs" / doc).read_text()
            assert "serving.md" in text, f"docs/{doc} does not link docs/serving.md"
        assert "docs/serving.md" in (REPO_ROOT / "README.md").read_text()

    def test_serving_doc_references_real_files(self):
        serving_doc = (REPO_ROOT / "docs" / "serving.md").read_text()
        for rel_path in re.findall(r"repro/[\w/]+\.py", serving_doc):
            assert (REPO_ROOT / "src" / rel_path).exists(), (
                f"docs/serving.md references missing src/{rel_path}"
            )

    def test_committed_serving_baseline_is_loadable_and_gated(self):
        from repro.bench.baselines import load_baseline

        baseline = load_baseline(REPO_ROOT / "BENCH_serving.json")
        assert baseline["kind"] == "bench-baseline"
        assert baseline["name"] == "serving"
        metrics = baseline["metrics"]
        # The committed baseline must assert a clean serving path: CI diffs
        # against these, so nonzero values here would mask regressions.
        assert metrics["serving.correctness_failures"] == 0.0
        assert metrics["serving.errors"] == 0.0
        assert metrics["serving.burst_batches"] >= 1.0

    def test_serve_cli_parser_wired(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "fit", "a.csv", "--registry", "reg", "--method", "gain"]
        )
        assert args.serve_action == "fit"
        args = parser.parse_args(["serve", "run", "--registry", "reg"])
        assert args.serve_action == "run"
        args = parser.parse_args(["bench", "serving"])
        assert args.action == "serving"


class TestRegistryConsistency:
    def test_registry_names_match_imputer_name_attribute(self):
        from repro.models.registry import REGISTRY

        for key, factory in REGISTRY.items():
            if key == "missf":  # documented alias
                continue
            instance_name = factory().name if key != "em" else factory().name
            # The registry key equals the imputer's declared name, except for
            # the missforest long form.
            assert instance_name in (key, "missforest"), (key, instance_name)

    def test_cli_parser_covers_registry(self):
        from repro.cli import build_parser
        from repro.models.registry import REGISTRY

        parser = build_parser()
        args = parser.parse_args(["impute", "a.csv", "b.csv", "--method", "gain"])
        assert args.method in REGISTRY
