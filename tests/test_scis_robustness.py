"""Robustness and invariants of the full SCIS pipeline."""

import numpy as np
import pytest

from repro.core import SCIS, DimConfig, ScisConfig
from repro.data import IncompleteDataset, ampute, holdout_split
from repro.models import GAINImputer


def _quick_config(**overrides):
    base = dict(
        initial_size=60,
        validation_size=60,
        error_bound=0.05,
        dim=DimConfig(epochs=4),
        seed=0,
    )
    base.update(overrides)
    return ScisConfig(**base)


class TestOutputInvariants:
    def test_imputed_values_in_unit_cube(self, small_incomplete):
        """GAIN's sigmoid output keeps imputations inside the data range."""
        result = SCIS(GAINImputer(epochs=4, seed=0), _quick_config()).fit_transform(
            small_incomplete
        )
        missing = small_incomplete.mask == 0.0
        assert result.imputed[missing].min() >= 0.0
        assert result.imputed[missing].max() <= 1.0

    def test_no_nan_anywhere(self, small_incomplete):
        result = SCIS(GAINImputer(epochs=4, seed=0), _quick_config()).fit_transform(
            small_incomplete
        )
        assert np.isfinite(result.imputed).all()

    def test_sample_rate_consistent_with_n_star(self, small_incomplete):
        result = SCIS(GAINImputer(epochs=4, seed=0), _quick_config()).fit_transform(
            small_incomplete
        )
        assert result.sample_rate == pytest.approx(result.n_star / result.n_total)


class TestExtremeMissingness:
    @pytest.mark.parametrize("rate", [0.05, 0.85])
    def test_survives_extreme_rates(self, rng, rate):
        latent = rng.normal(size=(400, 2))
        full = 1 / (1 + np.exp(-(latent @ rng.normal(size=(2, 5)))))
        ds = ampute(IncompleteDataset(full), rate, "mcar", rng)
        result = SCIS(GAINImputer(epochs=4, seed=0), _quick_config()).fit_transform(ds)
        assert np.isfinite(result.imputed).all()

    def test_column_fully_missing(self, rng):
        values = rng.random((300, 4))
        values[:, 2] = np.nan
        ds = IncompleteDataset(values)
        result = SCIS(GAINImputer(epochs=3, seed=0), _quick_config()).fit_transform(ds)
        assert np.isfinite(result.imputed[:, 2]).all()

    def test_rows_fully_missing(self, rng):
        values = rng.random((300, 4))
        values[:5, :] = np.nan
        ds = IncompleteDataset(values)
        result = SCIS(GAINImputer(epochs=3, seed=0), _quick_config()).fit_transform(ds)
        assert np.isfinite(result.imputed[:5]).all()


class TestConfigurationEdges:
    def test_minimum_viable_sizes(self, rng):
        ds = IncompleteDataset(
            np.where(rng.random((50, 3)) < 0.8, rng.random((50, 3)), np.nan)
        )
        config = _quick_config(initial_size=10, validation_size=10)
        result = SCIS(GAINImputer(epochs=2, seed=0), config).fit_transform(ds)
        assert 10 <= result.n_star <= 50

    def test_n_star_equal_to_total_retrains_on_full(self, small_incomplete):
        config = _quick_config(error_bound=1e-12, dim=DimConfig(epochs=2))
        result = SCIS(GAINImputer(epochs=2, seed=0), config).fit_transform(
            small_incomplete
        )
        assert result.n_star == small_incomplete.n_samples
        assert result.retrain_report is not None

    def test_different_seeds_give_different_models(self, small_incomplete):
        result_a = SCIS(
            GAINImputer(epochs=3, seed=1), _quick_config(seed=1)
        ).fit_transform(small_incomplete)
        result_b = SCIS(
            GAINImputer(epochs=3, seed=2), _quick_config(seed=2)
        ).fit_transform(small_incomplete)
        missing = small_incomplete.mask == 0.0
        assert not np.allclose(result_a.imputed[missing], result_b.imputed[missing])

    def test_scaled_data_outside_unit_range_still_runs(self, rng):
        """SCIS expects [0,1] inputs but must not crash outside them."""
        values = rng.normal(0.0, 10.0, size=(300, 4))
        values[rng.random(values.shape) < 0.3] = np.nan
        ds = IncompleteDataset(values)
        result = SCIS(GAINImputer(epochs=2, seed=0), _quick_config()).fit_transform(ds)
        assert np.isfinite(result.imputed).all()


class TestAccuracyUnderBudget:
    def test_scis_close_to_full_training_on_learnable_data(self, rng):
        latent = rng.normal(size=(1200, 3))
        full = 1 / (1 + np.exp(-(latent @ rng.normal(size=(3, 6)))))
        ds = ampute(IncompleteDataset(full), 0.3, "mcar", rng)
        holdout = holdout_split(ds, 0.2, rng)

        config = _quick_config(
            initial_size=120, validation_size=120, error_bound=0.02,
            dim=DimConfig(epochs=20),
        )
        scis_result = SCIS(GAINImputer(epochs=20, seed=0), config).fit_transform(
            holdout.train
        )
        full_gain = GAINImputer(epochs=20, seed=0)
        gain_rmse = holdout.rmse(full_gain.fit_transform(holdout.train))
        assert holdout.rmse(scis_result.imputed) < gain_rmse * 1.25
