"""SSE module: Theorem 1 variance scale, Proposition 2 test, binary search."""

import numpy as np
import pytest

from repro.core import DIM, DimConfig, SSE, SseConfig, eta, zeta
from repro.data import holdout_split
from repro.models import GAINImputer
from repro.nn import flatten_parameters


@pytest.fixture
def trained(small_incomplete, rng):
    """A DIM-trained GAIN plus validation/initial splits, shared per test."""
    holdout = holdout_split(small_incomplete, 0.2, rng)
    split = holdout.train.split_validation_initial(80, 80, rng)
    model = GAINImputer(seed=0)
    DIM(DimConfig(epochs=15)).train(model, split.initial, rng)
    return model, split, holdout


class TestVarianceScale:
    def test_zeta_decreasing_in_lambda(self):
        assert zeta(1.0, 4) > zeta(10.0, 4) > zeta(130.0, 4)

    def test_zeta_close_to_one_for_paper_lambda(self):
        assert zeta(130.0, 9) == pytest.approx(1.0, abs=0.06)

    def test_eta_zero_when_n_equals_n0(self):
        assert eta(130.0, 5, 100, 100) == pytest.approx(0.0)

    def test_eta_monotone_increasing_in_n(self):
        values = [eta(130.0, 5, 100, n) for n in (100, 200, 400, 10_000)]
        assert values == sorted(values)

    def test_eta_decreasing_in_n0(self):
        assert eta(130.0, 5, 100, 1000) > eta(130.0, 5, 500, 1000)

    def test_eta_invalid_order_raises(self):
        with pytest.raises(ValueError):
            eta(130.0, 5, 100, 50)


class TestPassThreshold:
    def test_paper_defaults_cap_at_one(self):
        config = SseConfig(confidence=0.05, beta=0.01, n_parameter_samples=20)
        assert config.pass_threshold() == 1.0

    def test_large_k_below_one(self):
        config = SseConfig(confidence=0.05, beta=0.01, n_parameter_samples=100_000)
        assert config.pass_threshold() < 1.0

    def test_threshold_increases_with_confidence(self):
        strict = SseConfig(confidence=0.01, beta=0.005, n_parameter_samples=100_000)
        loose = SseConfig(confidence=0.2, beta=0.005, n_parameter_samples=100_000)
        assert strict.pass_threshold() > loose.pass_threshold()


class TestHessian:
    def test_diagonal_positive(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        diagonal = sse.estimate_hessian_diagonal(
            split.initial.values, split.initial.mask
        )
        assert (diagonal > 0).all()
        assert diagonal.size == model.generator.num_parameters()

    def test_floor_applied(self, trained, rng):
        model, split, _ = trained
        config = SseConfig(hessian_floor=0.5)
        sse = SSE(model, split.validation.values, split.validation.mask, config, rng)
        diagonal = sse.estimate_hessian_diagonal(
            split.initial.values, split.initial.mask
        )
        # The floor is 0.5 × the pre-floor mean; flooring can raise the mean
        # by at most (1 + floor)×, so min/mean ≥ 0.5/1.5 must hold.
        assert diagonal.min() >= diagonal.mean() / 3.0 * (1 - 1e-9)

    def test_empty_sample_raises(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        with pytest.raises(ValueError):
            sse.estimate_hessian_diagonal(np.zeros((0, 6)), np.zeros((0, 6)))


class TestImputationDifference:
    def test_zero_for_identical_parameters(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        theta = flatten_parameters(model.generator)
        assert sse.imputation_difference(theta, theta) == pytest.approx(0.0)

    def test_positive_for_perturbed_parameters(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        theta = flatten_parameters(model.generator)
        perturbed = theta + 0.1 * rng.standard_normal(theta.size)
        assert sse.imputation_difference(theta, perturbed) > 0.0

    def test_restores_original_parameters(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        theta = flatten_parameters(model.generator).copy()
        sse.imputation_difference(theta + 1.0, theta - 1.0)
        assert np.allclose(flatten_parameters(model.generator), theta)

    def test_grows_with_perturbation_size(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        theta = flatten_parameters(model.generator)
        direction = rng.standard_normal(theta.size)
        small = sse.imputation_difference(theta, theta + 0.01 * direction)
        large = sse.imputation_difference(theta, theta + 0.1 * direction)
        assert large > small


class TestMinimumSizeSearch:
    def _prepared(self, trained, rng, error_bound):
        model, split, _ = trained
        config = SseConfig(error_bound=error_bound)
        sse = SSE(model, split.validation.values, split.validation.mask, config, rng)
        sse.prepare(split.initial.values, split.initial.mask)
        return sse

    def test_requires_prepare(self, trained, rng):
        model, split, _ = trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        with pytest.raises(RuntimeError):
            sse.estimate_minimum_size(80, 400)
        with pytest.raises(RuntimeError):
            sse.pass_probability(100, 80, 400, 6)

    def test_n_star_within_bounds(self, trained, rng):
        model, _, _ = trained
        sse = self._prepared(trained, rng, error_bound=0.02)
        theta = flatten_parameters(model.generator).copy()
        result = sse.estimate_minimum_size(80, 400)
        assert 80 <= result.n_star <= 400
        assert result.sample_rate == result.n_star / 400
        # The search perturbs the generator internally but must leave θ₀ intact.
        assert np.array_equal(flatten_parameters(model.generator), theta)

    def test_huge_error_bound_returns_initial(self, trained, rng):
        sse = self._prepared(trained, rng, error_bound=10.0)
        result = sse.estimate_minimum_size(80, 400)
        assert result.n_star == 80

    def test_tiny_error_bound_returns_total(self, trained, rng):
        sse = self._prepared(trained, rng, error_bound=1e-9)
        result = sse.estimate_minimum_size(80, 400)
        assert result.n_star == 400

    def test_smaller_epsilon_larger_n_star(self, trained, rng):
        loose = self._prepared(trained, np.random.default_rng(0), error_bound=0.05)
        n_loose = loose.estimate_minimum_size(80, 400).n_star
        strict = self._prepared(trained, np.random.default_rng(0), error_bound=0.005)
        n_strict = strict.estimate_minimum_size(80, 400).n_star
        assert n_strict >= n_loose

    def test_pass_probability_monotone_in_n(self, trained, rng):
        model, _, _ = trained
        sse = self._prepared(trained, rng, error_bound=0.02)
        theta = flatten_parameters(model.generator).copy()
        # Average several estimates to damp sampling noise.
        small = np.mean([sse.pass_probability(100, 80, 4000, 6) for _ in range(5)])
        large = np.mean([sse.pass_probability(3500, 80, 4000, 6) for _ in range(5)])
        assert large >= small
        # Each call samples k perturbed θ's; θ₀ must be restored afterwards.
        assert np.array_equal(flatten_parameters(model.generator), theta)

    def test_result_records_evaluations(self, trained, rng):
        sse = self._prepared(trained, rng, error_bound=0.02)
        result = sse.estimate_minimum_size(80, 400)
        assert result.evaluations
        assert result.seconds >= 0
        assert result.threshold == 1.0


class TestOtDirectLeg:
    """SSE applies beyond the GAN family: the paper's formula only needs a
    differentiable generator, which OT-direct's distributional-fit MLP
    provides."""

    @pytest.fixture
    def ot_trained(self, small_incomplete, rng):
        from repro.models import SinkhornImputer

        holdout = holdout_split(small_incomplete, 0.2, rng)
        split = holdout.train.split_validation_initial(80, 80, rng)
        model = SinkhornImputer(epochs=10, batch_size=16, mlp_epochs=10, seed=0)
        model.fit(split.initial)
        return model, split

    def test_n_star_estimation_converges(self, ot_trained, rng):
        model, split = ot_trained
        config = SseConfig(error_bound=0.02)
        sse = SSE(model, split.validation.values, split.validation.mask, config, rng)
        sse.prepare(split.initial.values, split.initial.mask)
        result = sse.estimate_minimum_size(80, 400)
        assert 80 <= result.n_star <= 400
        assert result.minimum_size == result.n_star
        assert result.sample_rate == result.n_star / 400
        assert result.evaluations

    def test_sse_telemetry_fires_for_ot_direct(self, ot_trained, rng):
        from repro.obs import recording

        model, split = ot_trained
        with recording() as records:
            sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
            sse.prepare(split.initial.values, split.initial.mask)
            sse.estimate_minimum_size(80, 400)
        names = {event.name for event in records.events}
        assert "sse.evaluation" in names
        assert "sse.search_step" in names
        assert "sse.result" in names

    def test_hessian_diagonal_positive_for_ot_direct(self, ot_trained, rng):
        model, split = ot_trained
        sse = SSE(model, split.validation.values, split.validation.mask, rng=rng)
        diagonal = sse.estimate_hessian_diagonal(
            split.initial.values, split.initial.mask
        )
        assert (diagonal > 0).all()
        assert diagonal.size == model.generator.num_parameters()
