"""Tensor backend protocol: conformance validation, selection plumbing, and
the OT solver suite re-run under a swapped array substrate.

The ``array_api_strict`` legs skip when that package is not installed (CI's
backend-matrix job installs it; the base environment need not).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.ot import SinkhornConfig, masking_sinkhorn_divergence, sinkhorn, sinkhorn_batched
from repro.tensor import (
    ArrayApiBackend,
    NumpyBackend,
    Tensor,
    get_backend,
    ops,
    set_backend,
    use_backend,
    validate_backend,
)
from repro.tensor.backend import PROTOCOL_FUNCTIONS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "backend",
        [NumpyBackend(), ArrayApiBackend(np, name="numpy-as-array-api")],
        ids=["numpy", "array-api-over-numpy"],
    )
    def test_validate_accepts_conformant_backend(self, backend):
        assert validate_backend(backend) is backend

    def test_every_protocol_function_is_callable(self):
        backend = NumpyBackend()
        for name in PROTOCOL_FUNCTIONS:
            assert callable(getattr(backend, name)), name

    def test_missing_primitive_named_in_error(self):
        backend = NumpyBackend()
        broken = type("Broken", (NumpyBackend,), {"logsumexp": None})()
        with pytest.raises(TypeError, match="missing callable 'logsumexp'"):
            validate_backend(broken)
        validate_backend(backend)  # the original is untouched

    def test_wrong_answer_rejected(self):
        class OffByOne(NumpyBackend):
            name = "off-by-one"

            def logsumexp(self, x, axis=None, keepdims=False):
                return super().logsumexp(x, axis=axis, keepdims=keepdims) + 1.0

        with pytest.raises(ValueError, match="known-answer"):
            validate_backend(OffByOne())

    def test_generic_logsumexp_handles_all_neg_inf_rows(self):
        backend = ArrayApiBackend(np)
        probe = np.array([[-np.inf, -np.inf], [0.0, 0.0]])
        with np.errstate(divide="ignore"):
            got = backend.to_numpy(backend.logsumexp(probe, axis=1))
        assert got[0] == -np.inf
        assert got[1] == pytest.approx(np.log(2.0))


class TestSelection:
    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_set_backend_roundtrip(self):
        try:
            installed = set_backend(ArrayApiBackend(np, name="swap"))
            assert get_backend() is installed
        finally:
            set_backend(None)
        assert get_backend().name == "numpy"

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend(ArrayApiBackend(np, name="scoped")) as scoped:
            assert get_backend() is scoped
        assert get_backend() is before

    def test_unresolvable_name_raises(self):
        with pytest.raises(ValueError, match="cannot resolve tensor backend"):
            set_backend("no_such_backend_module")
        assert get_backend().name == "numpy"  # failed install leaves state alone

    def test_env_var_selects_backend(self):
        env = dict(os.environ, REPRO_BACKEND="numpy")
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.tensor import get_backend; print(get_backend().name)",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "numpy"


class TestOpsUnderSwappedBackend:
    """ops kernels must give NumPy-identical answers through the adapter."""

    def test_forward_kernels_match_numpy(self, rng):
        data = rng.normal(size=(4, 5))
        reference = {
            "exp": ops.exp(Tensor(data)).data,
            "logsumexp": ops.logsumexp(Tensor(data), axis=1).data,
            "softmax": ops.softmax(Tensor(data), axis=1).data,
            "sum": ops.sum(Tensor(data)).data,
        }
        with use_backend(ArrayApiBackend(np, name="adapter")):
            np.testing.assert_allclose(ops.exp(Tensor(data)).data, reference["exp"])
            np.testing.assert_allclose(
                ops.logsumexp(Tensor(data), axis=1).data, reference["logsumexp"]
            )
            np.testing.assert_allclose(
                ops.softmax(Tensor(data), axis=1).data, reference["softmax"]
            )
            np.testing.assert_allclose(ops.sum(Tensor(data)).data, reference["sum"])

    def test_gradients_flow_under_adapter(self, rng):
        data = rng.normal(size=(3, 4))
        with use_backend(ArrayApiBackend(np, name="adapter")):
            t = Tensor(data, requires_grad=True)
            ops.logsumexp(t, axis=1).sum().backward()
            grad = t.grad
        softmax = np.exp(data - ops.logsumexp(Tensor(data), axis=1, keepdims=True).data)
        np.testing.assert_allclose(grad, softmax, atol=1e-12)


class TestOtSuiteUnderAdapter:
    """The Sinkhorn solvers answer identically on a swapped backend."""

    def test_loop_and_batched_solvers_match_default_backend(self, rng):
        cost = rng.random((3, 8, 8))
        config = SinkhornConfig(reg=0.4, max_iter=300, tol=1e-9)
        reference = sinkhorn_batched(cost, config)
        reference_single = sinkhorn(cost[0], config)
        with use_backend(ArrayApiBackend(np, name="adapter")):
            swapped = sinkhorn_batched(cost, config)
            swapped_single = sinkhorn(cost[0], config)
        np.testing.assert_allclose(swapped.plan, reference.plan, atol=1e-12)
        np.testing.assert_array_equal(swapped.iterations, reference.iterations)
        np.testing.assert_allclose(
            swapped_single.plan, reference_single.plan, atol=1e-12
        )

    def test_masking_divergence_matches_default_backend(self, rng):
        x = rng.random((10, 4))
        x_bar = x + 0.1 * rng.normal(size=(10, 4))
        mask = (rng.random((10, 4)) > 0.3).astype(float)
        config = SinkhornConfig(reg=0.5)
        reference = masking_sinkhorn_divergence(x_bar, x, mask, config)
        with use_backend(ArrayApiBackend(np, name="adapter")):
            swapped = masking_sinkhorn_divergence(x_bar, x, mask, config)
        assert swapped == pytest.approx(reference, abs=1e-12)


class TestArrayApiStrict:
    """Conformance against the reference strict namespace, when installed."""

    def test_strict_backend_passes_validation(self):
        xp = pytest.importorskip("array_api_strict")
        validate_backend(ArrayApiBackend(xp))

    def test_solvers_match_numpy_under_strict(self, rng):
        xp = pytest.importorskip("array_api_strict")
        cost = rng.random((2, 6, 6))
        config = SinkhornConfig(reg=0.5, max_iter=200, tol=1e-9)
        reference = sinkhorn_batched(cost, config)
        with use_backend(ArrayApiBackend(xp)):
            swapped = sinkhorn_batched(cost, config)
        np.testing.assert_allclose(swapped.plan, reference.plan, atol=1e-10)
        np.testing.assert_array_equal(swapped.iterations, reference.iterations)

    def test_tier1_ot_suite_passes_under_strict(self):
        pytest.importorskip("array_api_strict")
        env = dict(os.environ, REPRO_BACKEND="array_api_strict")
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        run = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "no:cacheprovider",
                os.path.join(REPO_ROOT, "tests", "test_ot.py"),
            ],
            env=env,
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert run.returncode == 0, run.stdout + run.stderr
