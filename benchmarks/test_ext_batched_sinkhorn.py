"""Extension — batched (stacked) Sinkhorn vs per-problem loop solves.

The redesigned solver stacks the same-shape OT problems behind a DIM step
into one ``(B, n, m)`` tensor and runs every dual sweep as a single
backend-dispatched ``logsumexp`` over the stack, with per-problem
convergence masking and active-set compaction (a problem leaves the
working stack the sweep it converges).  The contract is *exact* parity —
values, duals, and iteration counts match the loop solver to the bit on
NumPy — so this bench verifies that first, then measures throughput on a
raw solver workload and end-to-end DIM training with the stacked path on
and off.
"""

import time

import numpy as np

from repro.bench import format_series
from repro.core import DIM, DimConfig
from repro.data import IncompleteDataset
from repro.models import GAINImputer
from repro.obs import recording
from repro.ot import SinkhornConfig, sinkhorn, sinkhorn_batched

N_ROWS = 256
N_COLS = 8
EPOCHS = 5
STACKS = (1, 2, 4, 8)


def _dataset():
    rng = np.random.default_rng(0)
    values = rng.random((N_ROWS, N_COLS))
    values[rng.random((N_ROWS, N_COLS)) < 0.3] = np.nan
    return IncompleteDataset(values, name="batched-sinkhorn")


def _solver_workload(batch, n=64, reg=0.1, repeats=3):
    """Time `batch` same-difficulty problems: stacked vs looped."""
    rng = np.random.default_rng(batch)
    cost = rng.random((batch, n, n))
    config = SinkhornConfig(reg=reg, max_iter=5000, tol=1e-9)

    t0 = time.perf_counter()
    for _ in range(repeats):
        stacked = sinkhorn_batched(cost, config)
    stacked_seconds = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for _ in range(repeats):
        looped = [sinkhorn(cost[k], config) for k in range(batch)]
    loop_seconds = (time.perf_counter() - t0) / repeats

    # Exact parity: stacked values/iterations equal the loop solver's.
    for k, single in enumerate(looped):
        assert stacked.value[k] == single.value, (batch, k)
        assert stacked.iterations[k] == single.iterations, (batch, k)
    return loop_seconds, stacked_seconds


def _train(batched):
    config = DimConfig(
        epochs=EPOCHS,
        batch_size=64,
        use_adversarial=False,
        reg=0.1,
        sinkhorn_tol=1e-9,
        sinkhorn_max_iter=5000,
        fixed_batch_order=True,  # identical batch sequences in both runs
        sinkhorn_batched=batched,
    )
    model = GAINImputer(seed=0)
    with recording() as rec:
        t0 = time.perf_counter()
        report = DIM(config).train(model, _dataset(), np.random.default_rng(7))
        seconds = time.perf_counter() - t0
    counters = rec.metrics.snapshot()["counters"]
    return report, seconds, counters


def test_ext_batched_sinkhorn(benchmark):
    workload, loop_run, batched_run = benchmark.pedantic(
        lambda: (
            [_solver_workload(batch) for batch in STACKS],
            _train(False),
            _train(True),
        ),
        rounds=1,
        iterations=1,
    )

    print(
        "\n"
        + format_series(
            "stack",
            [str(batch) for batch in STACKS],
            {
                "loop s": [loop for loop, _ in workload],
                "stacked s": [stacked for _, stacked in workload],
                "speedup": [loop / stacked for loop, stacked in workload],
            },
            title="Extension — batched Sinkhorn: raw solver throughput",
        )
    )

    loop_report, loop_seconds, loop_counters = loop_run
    batched_report, batched_seconds, batched_counters = batched_run
    print(
        f"DIM {EPOCHS} epochs: loop {loop_seconds:.2f}s "
        f"({loop_counters.get('sinkhorn.loop_solves', 0):.0f} loop solves), "
        f"stacked {batched_seconds:.2f}s "
        f"({batched_counters.get('sinkhorn.batched_solves', 0):.0f} stacked solves, "
        f"ratio {loop_seconds / batched_seconds:.2f}x)"
    )

    # Identical learning: the stacked path is a solver swap, not a model
    # change — per-step MS losses agree to solver tolerance.
    assert np.allclose(loop_report.ms_losses, batched_report.ms_losses, atol=1e-8)

    # The batched run routes everything through the stacked solver.
    assert loop_counters.get("sinkhorn.batched_solves", 0.0) == 0.0
    assert batched_counters.get("sinkhorn.loop_solves", 0.0) == 0.0
    assert batched_counters["sinkhorn.batched_solves"] > 0

    # Same-difficulty stacks amortise dispatch: the stacked path pays a
    # small bookkeeping tax at B=1 but must pull ahead as the stack
    # widens, and win clearly at the widest stack.
    speedups = [loop / stacked for loop, stacked in workload]
    assert min(speedups) > 0.6, speedups
    assert speedups[-1] > speedups[0], speedups
    assert speedups[-1] > 1.05, speedups

    # End-to-end DIM must not regress with the stacked default on.
    assert batched_seconds < loop_seconds * 1.25
