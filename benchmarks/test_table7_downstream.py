"""Table VII — post-imputation prediction.

Paper shape: training a 3-layer prediction head on SCIS-GAIN-imputed data is
as good as (slightly better than) on GAIN-imputed data — AUC on the
classification datasets (Trial, Surveil), MAE on the regression ones.
"""

from repro.bench import format_series, prepare_case
from repro.core import SCIS
from repro.metrics import DownstreamConfig, evaluate_downstream
from repro.models import GAINImputer

from common import EPOCHS, SIZES, scis_config

# One classification dataset and two regression ones at bench scale
# (REPRO_BENCH_FULL covers all six as in the paper).
DATASETS = ("trial", "emergency", "weather")


def _run():
    rows = []
    for name in DATASETS:
        case = prepare_case(name, n_samples=min(SIZES[name], 3000), seed=0)

        gain_imputed = GAINImputer(epochs=EPOCHS, seed=0).fit_transform(case.train)
        scis_result = SCIS(
            GAINImputer(epochs=EPOCHS, seed=0), scis_config(name, 0)
        ).fit_transform(case.train)

        config = DownstreamConfig(epochs=20, seed=0)
        gain_score = evaluate_downstream(gain_imputed, case.labels, case.task, config)
        scis_score = evaluate_downstream(
            scis_result.imputed, case.labels, case.task, config
        )
        rows.append(
            {
                "dataset": name,
                "metric": gain_score.metric,
                "gain": gain_score.score,
                "scis": scis_score.score,
            }
        )
    return rows


def test_table7_downstream(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        "\n"
        + format_series(
            "dataset (metric)",
            [f"{row['dataset']} ({row['metric'].upper()})" for row in rows],
            {
                "GAIN": [row["gain"] for row in rows],
                "SCIS-GAIN": [row["scis"] for row in rows],
            },
            title="Table VII — post-imputation prediction",
        )
    )

    for row in rows:
        if row["metric"] == "auc":
            # Both imputations must support a usable classifier, and SCIS
            # stays within a small margin of GAIN (paper: +0.27 % for SCIS).
            assert row["gain"] > 0.6 and row["scis"] > 0.6
            assert row["scis"] > row["gain"] - 0.08
        else:
            # Regression MAE: SCIS within a small margin of GAIN.
            assert row["scis"] < row["gain"] * 1.15
