"""Figure 2 — effect of the missing rate R_m.

Paper shape: sweeping R_m from 10 % to 90 %, (i) both GAIN's and SCIS-GAIN's
RMSE degrade as data gets sparser, (ii) SCIS stays competitive with (or
better than) GAIN throughout, with far fewer training samples, and (iii) the
SSE module accounts for a minority share of SCIS time (paper: 28 % average).
"""

import time

import numpy as np

from repro.bench import ascii_chart, format_series, prepare_case
from repro.core import SCIS
from repro.models import GAINImputer

from common import EPOCHS, SIZES, scis_config

# At bench scale we sweep two representative datasets (one low-missing, one
# high-missing schema); REPRO_BENCH_FULL widens this to the paper's six.
DATASETS = ("trial", "weather")
RATES = (0.1, 0.3, 0.5, 0.7, 0.9)


def _run():
    sweeps = {}
    for name in DATASETS:
        rows = []
        for rate in RATES:
            case = prepare_case(
                name, n_samples=min(SIZES[name], 3000), seed=0, missing_rate=rate
            )
            start = time.perf_counter()
            gain = GAINImputer(epochs=EPOCHS, seed=0)
            gain_rmse = case.holdout.rmse(gain.fit_transform(case.train))
            gain_seconds = time.perf_counter() - start

            start = time.perf_counter()
            scis = SCIS(GAINImputer(epochs=EPOCHS, seed=0), scis_config(name, 0))
            result = scis.fit_transform(case.train)
            scis_seconds = time.perf_counter() - start
            rows.append(
                {
                    "rate": rate,
                    "gain_rmse": gain_rmse,
                    "scis_rmse": case.holdout.rmse(result.imputed),
                    "gain_s": gain_seconds,
                    "scis_s": scis_seconds,
                    "sse_s": result.timings["sse"],
                    "r_t": result.sample_rate,
                }
            )
        sweeps[name] = rows
    return sweeps


def test_fig2_missing_rate(benchmark):
    sweeps = benchmark.pedantic(_run, rounds=1, iterations=1)

    for name, rows in sweeps.items():
        print(
            "\n"
            + format_series(
                "R_m",
                [row["rate"] for row in rows],
                {
                    "GAIN rmse": [row["gain_rmse"] for row in rows],
                    "SCIS rmse": [row["scis_rmse"] for row in rows],
                    "GAIN s": [row["gain_s"] for row in rows],
                    "SCIS s": [row["scis_s"] for row in rows],
                    "SSE s": [row["sse_s"] for row in rows],
                    "R_t": [row["r_t"] for row in rows],
                },
                title=f"Figure 2 — missing-rate sweep on {name}",
            )
        )

    for name, rows in sweeps.items():
        print(
            "\n"
            + ascii_chart(
                RATES,
                {
                    "gain rmse": [row["gain_rmse"] for row in rows],
                    "scis rmse": [row["scis_rmse"] for row in rows],
                },
                title=f"Figure 2 ({name}): RMSE vs missing rate",
            )
        )

    for name, rows in sweeps.items():
        # RMSE degrades as the missing rate rises (compare sweep endpoints).
        assert rows[-1]["scis_rmse"] > rows[0]["scis_rmse"]
        assert rows[-1]["gain_rmse"] > rows[0]["gain_rmse"]
        # SCIS never needs the full dataset and stays accuracy-competitive.
        for row in rows:
            assert row["r_t"] <= 1.0
            assert row["scis_rmse"] < row["gain_rmse"] * 1.35
        # SSE is a minority share of SCIS training time.
        sse_share = np.mean([row["sse_s"] / max(row["scis_s"], 1e-9) for row in rows])
        assert sse_share < 0.6
