"""Extension — SCIS beyond MCAR (the paper's stated future work).

§VII notes that SCIS assumes MCAR and leaves "more complex missing
mechanisms" open.  This bench probes that frontier: the same SCIS-GAIN
configuration under MCAR, MAR, and MNAR amputation of the same underlying
table.  Expected shape: accuracy degrades from MCAR to MNAR (the masking
optimal transport's m ⊙ x identification is biased when missingness depends
on the value itself), while the pipeline stays functional.
"""

from repro.bench import format_series, prepare_case
from repro.core import SCIS
from repro.models import GAINImputer, MeanImputer

from common import EPOCHS, SIZES, scis_config

DATASET = "weather"
MECHANISMS = ("mcar", "mar", "mnar")


def _run():
    rows = []
    for mechanism in MECHANISMS:
        case = prepare_case(
            DATASET,
            n_samples=min(SIZES[DATASET], 3000),
            seed=0,
            missing_rate=0.4,
            mechanism=mechanism,
        )
        mean_rmse = case.holdout.rmse(MeanImputer().fit_transform(case.train))
        result = SCIS(
            GAINImputer(epochs=EPOCHS, seed=0), scis_config(DATASET, 0)
        ).fit_transform(case.train)
        rows.append(
            {
                "mechanism": mechanism,
                "scis_rmse": case.holdout.rmse(result.imputed),
                "mean_rmse": mean_rmse,
                "r_t": result.sample_rate,
            }
        )
    return rows


def test_ext_missing_mechanisms(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        "\n"
        + format_series(
            "mechanism",
            [row["mechanism"] for row in rows],
            {
                "SCIS-GAIN rmse": [row["scis_rmse"] for row in rows],
                "mean rmse": [row["mean_rmse"] for row in rows],
                "R_t": [row["r_t"] for row in rows],
            },
            title="Extension — missingness mechanisms (MCAR / MAR / MNAR)",
        )
    )

    by_mechanism = {row["mechanism"]: row for row in rows}
    # The pipeline must stay functional and better than the mean baseline
    # under every mechanism.
    for row in rows:
        assert row["scis_rmse"] < row["mean_rmse"] * 1.1
        assert 0 < row["r_t"] <= 1.0
    # MNAR is the hardest setting for an MCAR-assuming method.
    assert by_mechanism["mnar"]["scis_rmse"] >= by_mechanism["mcar"]["scis_rmse"] * 0.9
