"""Extension — out-of-core imputation throughput.

§II.A motivates SCIS with tables too large for memory.  This bench hides
20 % of the observed cells (the paper's RMSE protocol), writes the masked
table to a CSV, imputes it through :func:`repro.data.impute_csv_streaming`
(reservoir-sampled training + chunked inference), and checks that (i) the
imputation quality matches the in-memory pipeline's ballpark and (ii)
training touched only a small fraction of the file.
"""

import numpy as np

from repro.bench import format_series
from repro.core import DimConfig, ScisConfig
from repro.data import generate, holdout_split, impute_csv_streaming, read_csv, write_csv
from repro.data.normalize import MinMaxNormalizer
from repro.metrics import masked_rmse
from repro.models import GAINImputer

from common import EPOCHS

ROWS = 10_000


def _run(tmp_dir):
    generated = generate("weather", n_samples=ROWS, seed=0)
    holdout = holdout_split(generated.dataset, 0.2, np.random.default_rng(1))

    raw = tmp_dir / "weather.csv"
    out = tmp_dir / "weather_imputed.csv"
    write_csv(holdout.train, raw)

    config = ScisConfig(
        initial_size=200,
        error_bound=0.02,
        dim=DimConfig(epochs=EPOCHS),
        seed=0,
    )
    model = GAINImputer(epochs=EPOCHS, seed=0)
    report = impute_csv_streaming(raw, out, model, config, chunk_size=2048)

    # Score at the hidden cells, in normalised units so the number is
    # comparable with Table IV's weather column.
    imputed = read_csv(out)
    scaler = MinMaxNormalizer().fit(holdout.train)
    rmse = masked_rmse(
        scaler.transform(imputed.values),
        scaler.transform(holdout.truth),
        holdout.holdout_mask,
    )
    return report, rmse, imputed


def test_ext_streaming(benchmark, tmp_path):
    report, rmse, imputed = benchmark.pedantic(
        _run, args=(tmp_path,), rounds=1, iterations=1
    )

    print(
        "\n"
        + format_series(
            "metric",
            ["rows", "n*", "sample rate", "train s", "holdout rmse"],
            {
                "value": [
                    float(report.rows),
                    float(report.n_star),
                    report.sample_rate,
                    report.training_seconds,
                    rmse,
                ]
            },
            title="Extension — streaming imputation of a 10k-row CSV",
        )
    )

    assert report.rows == ROWS
    assert not np.isnan(imputed.values).any()
    # Training touched only a small fraction of the file.
    assert report.sample_rate < 0.25
    # Quality in the ballpark of the in-memory runs (Table IV weather ~0.25).
    assert rmse < 0.45
