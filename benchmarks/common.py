"""Shared configuration and method factories for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's §VI at a
laptop scale (see DESIGN.md for the scale mapping).  Set ``REPRO_BENCH_FULL=1``
for larger sizes / more epochs — closer to the paper's regime but
minutes-per-table instead of seconds.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

from repro.core import SCIS, DimConfig, ScisConfig
from repro.models import make_imputer

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

# Scaled dataset sizes (rows) per named generator.  The paper's full sizes
# are in repro.data.SPECS; these keep every bench CPU-friendly while keeping
# the small-vs-million-size contrast of Tables III vs IV.
SIZES = {
    "trial": 1500 if not FULL else 6433,
    "emergency": 1200 if not FULL else 8364,
    "response": 2500 if not FULL else 20000,
    "search": 1200 if not FULL else 5000,
    "weather": 6000 if not FULL else 50000,
    "surveil": 8000 if not FULL else 60000,
}

# Epochs for the deep methods (paper: 100); the per-dataset SCIS initial
# sample sizes n0 mirror the paper's ratios at our scale.
EPOCHS = 25 if not FULL else 100
INITIAL_SIZES = {
    "trial": 120,
    "emergency": 100,
    "response": 150,
    "search": 100,
    "weather": 250,
    "surveil": 250,
}

# The user-tolerated error bound ε.  The paper uses 0.001 at million scale;
# our datasets are ~100× smaller, so the equivalent operating point (same
# R_t ballpark) is reached around 0.02 — see EXPERIMENTS.md for the mapping.
ERROR_BOUND = 0.02

# Per-method wall-clock budget standing in for the paper's 1e5-second cutoff.
TIME_BUDGET = 120.0 if not FULL else 3600.0

N_SEEDS = 1 if not FULL else 5


def scis_config(dataset: str, seed: int, epochs: int = EPOCHS, **overrides) -> ScisConfig:
    """The §VI SCIS configuration at bench scale for one dataset."""
    base = dict(
        initial_size=INITIAL_SIZES[dataset],
        error_bound=ERROR_BOUND,
        dim=DimConfig(epochs=epochs),
        seed=seed,
    )
    base.update(overrides)
    return ScisConfig(**base)


def baseline_factories(epochs: int = EPOCHS) -> Dict[str, Callable[[int], object]]:
    """The non-GAN baselines of Table III, scaled-down settings."""
    return {
        "missf": lambda s: make_imputer("missforest", n_trees=10, max_depth=6, seed=s),
        "baran": lambda s: make_imputer("baran", n_estimators=10, seed=s),
        "mice": lambda s: make_imputer("mice", n_imputations=5, seed=s),
        "datawig": lambda s: make_imputer("datawig", epochs=epochs, seed=s),
        "rrsi": lambda s: make_imputer("rrsi", epochs=epochs * 2, seed=s),
        "midae": lambda s: make_imputer("midae", epochs=epochs, seed=s),
        "vaei": lambda s: make_imputer("vaei", epochs=epochs, seed=s),
        "miwae": lambda s: make_imputer("miwae", epochs=epochs, seed=s),
        "eddi": lambda s: make_imputer("eddi", epochs=epochs, seed=s),
        "hivae": lambda s: make_imputer("hivae", epochs=epochs, seed=s),
    }


def gan_factories(dataset: str, epochs: int = EPOCHS) -> Dict[str, Callable[[int], object]]:
    """GAIN / GINN and their SCIS-wrapped counterparts."""
    return {
        "ginn": lambda s: make_imputer("ginn", epochs=max(2, epochs // 4), seed=s),
        "scis-ginn": lambda s: SCIS(
            make_imputer("ginn", epochs=max(2, epochs // 4), seed=s),
            scis_config(dataset, s, epochs=max(2, epochs // 4)),
        ),
        "gain": lambda s: make_imputer("gain", epochs=epochs, seed=s),
        "scis-gain": lambda s: SCIS(
            make_imputer("gain", epochs=epochs, seed=s), scis_config(dataset, s)
        ),
    }
