"""Table VI — ablation on the larger datasets.

Paper shape: DIM-GAIN cannot finish within the budget on million-size data
("—" cells); Fixed-DIM-GAIN (10 %) finishes but is slower than SCIS-GAIN,
which needs only ~1–2 % of samples.  At bench scale we reproduce the ordering
SCIS time < Fixed time and SCIS sample rate < 10 %-fixed rate on the largest
dataset, with a scaled-down time budget standing in for the 1e5 s cutoff.
"""

from repro.bench import format_table, prepare_case, run_comparison
from repro.core import SCIS, DimConfig, DimImputer
from repro.models import GAINImputer

from common import EPOCHS, N_SEEDS, SIZES, scis_config

DATASETS = ("weather", "surveil")

# A tight budget plays the role of the paper's 1e5-second cutoff: full-data
# DIM-GAIN should blow through it on the biggest tables.
ABLATION_BUDGET = 60.0


def ablation_factories(dataset: str):
    return {
        "gain": lambda s: GAINImputer(epochs=EPOCHS, seed=s),
        "dim-gain": lambda s: DimImputer(
            GAINImputer(epochs=EPOCHS, seed=s), DimConfig(epochs=EPOCHS), seed=s
        ),
        "fixed-dim-gain": lambda s: DimImputer(
            GAINImputer(epochs=EPOCHS, seed=s),
            DimConfig(epochs=EPOCHS),
            subsample_fraction=0.1,
            seed=s,
        ),
        "scis-gain": lambda s: SCIS(
            GAINImputer(epochs=EPOCHS, seed=s), scis_config(dataset, s)
        ),
    }


def _run():
    results = []
    for name in DATASETS:
        case = prepare_case(name, n_samples=SIZES[name], seed=0)
        results.extend(
            run_comparison(
                [case],
                ablation_factories(name),
                n_seeds=N_SEEDS,
                time_budget=ABLATION_BUDGET,
            )
        )
    return results


def test_table6_ablation_large(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_table(results, title="Table VI — ablation (large datasets)"))

    by_key = {(r.method, r.dataset): r for r in results}
    for name in DATASETS:
        scis = by_key[("scis-gain", name)]
        fixed = by_key[("fixed-dim-gain", name)]
        assert scis.available
        # SCIS always undercuts full-data DIM training time; the fixed-10 %
        # heuristic comparison is accuracy-level at bench scale (at paper
        # scale 10 % of N is far more than n*, making SCIS faster too).
        if fixed.available:
            assert scis.rmse_mean < fixed.rmse_mean * 1.25
        dim = by_key[("dim-gain", name)]
        if dim.available:
            assert scis.seconds < dim.seconds
