"""Table III — performance comparison on the three smaller datasets.

Paper shape to reproduce: on Trial / Emergency / Response, SCIS-GAIN trains
on a small fraction of samples (R_t 1.5–23.6 %), with RMSE competitive with
(often slightly better than) full-data GAIN, and GAN-based methods are
competitive with the strongest baselines.
"""

import numpy as np

from repro.bench import format_table, prepare_case, run_comparison

from common import N_SEEDS, SIZES, TIME_BUDGET, baseline_factories, gan_factories

DATASETS = ("trial", "emergency", "response")


def _run():
    results = []
    for name in DATASETS:
        case = prepare_case(name, n_samples=SIZES[name], seed=0)
        factories = dict(baseline_factories())
        factories.update(gan_factories(name))
        results.extend(
            run_comparison([case], factories, n_seeds=N_SEEDS, time_budget=TIME_BUDGET)
        )
    return results


def test_table3_small_datasets(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_table(results, title="Table III — Trial / Emergency / Response"))

    by_key = {(r.method, r.dataset): r for r in results}
    for name in DATASETS:
        gain = by_key[("gain", name)]
        scis = by_key[("scis-gain", name)]
        assert gain.available and scis.available
        # SCIS uses a strict subsample and stays accuracy-competitive.
        assert scis.sample_rate < 1.0
        assert scis.rmse_mean < gain.rmse_mean * 1.25
        # Deep methods must beat a column-mean straw man decisively on at
        # least the low-missing-rate datasets.
        if name in ("trial", "response"):
            from repro.models import MeanImputer

            case = prepare_case(name, n_samples=SIZES[name], seed=0)
            mean_rmse = case.holdout.rmse(MeanImputer().fit_transform(case.train))
            assert scis.rmse_mean < mean_rmse
    assert np.isfinite([r.rmse_mean for r in results if r.available]).all()
