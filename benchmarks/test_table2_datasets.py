"""Table II — dataset statistics.

Paper: six COVID datasets from 6,433 to 22,507,139 rows with missing rates
9.63 %–81.35 %.  Here: the synthetic generators at bench scale; feature
counts and missing rates must match the paper's schema exactly (sizes are
scaled — see DESIGN.md).
"""

from repro.data import SPECS, dataset_names, generate

from common import SIZES


def _build_stats():
    rows = []
    for name in dataset_names():
        generated = generate(name, n_samples=SIZES[name], seed=0)
        rows.append(
            {
                "name": name,
                "samples": generated.dataset.n_samples,
                "features": generated.dataset.n_features,
                "missing_rate": generated.dataset.missing_rate,
                "paper_samples": SPECS[name].full_size,
                "paper_missing": SPECS[name].missing_rate,
            }
        )
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_build_stats, rounds=1, iterations=1)

    print("\n### Table II — dataset statistics (ours vs paper)")
    print("| Name | #Samples (paper) | #Features | Missing rate (paper) |")
    print("|---|---|---|---|")
    for row in rows:
        print(
            f"| {row['name']} | {row['samples']:,} ({row['paper_samples']:,}) "
            f"| {row['features']} "
            f"| {row['missing_rate']:.2%} ({row['paper_missing']:.2%}) |"
        )

    for row in rows:
        spec = SPECS[row["name"]]
        assert row["features"] == spec.n_features
        assert abs(row["missing_rate"] - spec.missing_rate) < 0.05
