"""Extension — the million-row out-of-core tier.

ROADMAP item 1 end-to-end: generate a 1M-row weather-shaped table straight
to a disk shard store (never resident), train SCIS on the scan reservoir,
and impute shard-by-shard with :func:`repro.core.fit_impute_sharded`.  The
assertions pin the paper's two scalability claims at this tier:

* **bounded memory** — peak resident rows stay O(shard + reservoir), a
  fixed budget that does not grow with the table (here < 2 % of it), and
  the process's measured RSS growth stays far below the ~70 MB the dense
  float64 table would cost;
* **sublinear training** — the SSE-estimated ``n*`` touches only a small
  fraction of the rows.

Set ``REPRO_BENCH_FULL=1`` to push toward paper scale (slower).
"""

import resource

import numpy as np

from repro.bench import format_series
from repro.core import DimConfig, ScisConfig, fit_impute_sharded
from repro.data import ShardStore, generate_sharded
from repro.models import GAINImputer

from common import FULL

ROWS = 1_000_000 if not FULL else 4_000_000
SHARD_ROWS = 100_000
EPOCHS = 5  # training cost is reservoir-bound, not table-bound


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run(tmp_dir):
    rss_before = _rss_mb()
    store = generate_sharded(
        "weather", tmp_dir / "store", n_samples=ROWS, seed=0, shard_rows=SHARD_ROWS
    )
    config = ScisConfig(
        initial_size=250,
        error_bound=0.02,
        dim=DimConfig(epochs=EPOCHS),
        seed=0,
    )
    report = fit_impute_sharded(
        store,
        tmp_dir / "imputed",
        GAINImputer(epochs=EPOCHS, seed=0),
        config,
        seed=0,
    )
    return store, report, _rss_mb() - rss_before


def test_ext_sharded_scale(benchmark, tmp_path):
    store, report, rss_growth_mb = benchmark.pedantic(
        _run, args=(tmp_path,), rounds=1, iterations=1
    )

    print(
        "\n"
        + format_series(
            "metric",
            [
                "rows",
                "shards",
                "n*",
                "sample rate",
                "reservoir rows",
                "peak resident rows",
                "resident fraction",
                "train s",
                "impute s",
                "rss growth (MB)",
            ],
            {
                "value": [
                    float(report.rows),
                    float(report.n_shards),
                    float(report.n_star),
                    report.sample_rate,
                    float(report.reservoir_rows),
                    float(report.peak_resident_rows),
                    report.peak_resident_rows / report.rows,
                    report.training_seconds,
                    report.impute_seconds,
                    rss_growth_mb,
                ]
            },
            title=f"Extension — sharded fit/impute of a {ROWS:,}-row store",
        )
    )

    assert report.rows == ROWS
    # The memory contract: one shard plus the reservoir, independent of n —
    # the shard size is a fixed configuration knob and the reservoir is the
    # only data-dependent term, capped far below the table.
    assert report.peak_resident_rows == SHARD_ROWS + report.reservoir_rows
    assert report.reservoir_rows < 0.01 * ROWS
    # Training never saw more than the reservoir.
    assert report.n_star <= report.reservoir_rows
    assert report.sample_rate < 0.01
    # RSS growth is O(shard): dominated by one shard's hidden activations,
    # independent of ROWS.  A dense run would hold several table-sized
    # arrays at once (values, mask, normalised, output), so compare against
    # two dense-table copies — the margin *widens* as ROWS grows.
    dense_mb = ROWS * store.n_features * 8 / 1024 / 1024
    assert rss_growth_mb < 2 * dense_mb
    # Every cell of the output is filled and every shard hashes clean.
    out = ShardStore(report.output_path)
    out.validate()
    sample = out.shard_values(0)
    assert not np.isnan(sample).any()
