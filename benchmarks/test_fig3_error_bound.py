"""Figure 3 — effect of the user-tolerated error bound ε.

Paper shape: as ε grows, the minimum sample rate R₂ = n*/N falls and the
RMSE (gently) rises; SCIS's achieved error stays below the user-tolerated
level R^u_mse + ε; past a point n* hits the floor n₀ and the curve flattens.

Scale note: the paper sweeps ε ∈ [0.001, 0.009] against million-row tables;
our tables are ~100× smaller so the same R_t operating range is reached with
ε ∈ [0.005, 0.045] (see EXPERIMENTS.md).
"""

from repro.bench import ascii_chart, format_series, prepare_case
from repro.core import SCIS, DimConfig, ScisConfig
from repro.models import GAINImputer

from common import EPOCHS, INITIAL_SIZES, SIZES

DATASET = "trial"
EPSILONS = (0.005, 0.015, 0.025, 0.035, 0.045)


def _run():
    case = prepare_case(DATASET, n_samples=SIZES[DATASET], seed=0)

    # Reference errors: GAIN trained on the full data with the MS loss
    # (R^u_mse) and the original GAIN (R^o_mse).
    gain = GAINImputer(epochs=EPOCHS, seed=0)
    r_o = case.holdout.rmse(gain.fit_transform(case.train))

    rows = []
    for epsilon in EPSILONS:
        config = ScisConfig(
            initial_size=INITIAL_SIZES[DATASET],
            error_bound=epsilon,
            dim=DimConfig(epochs=EPOCHS),
            seed=0,
        )
        result = SCIS(GAINImputer(epochs=EPOCHS, seed=0), config).fit_transform(
            case.train
        )
        rows.append(
            {
                "epsilon": epsilon,
                "rmse": case.holdout.rmse(result.imputed),
                "r1": result.n_initial / result.n_total,
                "r2": result.sample_rate,
                "seconds": result.total_seconds,
            }
        )
    return rows, r_o


def test_fig3_error_bound(benchmark):
    rows, r_o = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        "\n"
        + format_series(
            "epsilon",
            [row["epsilon"] for row in rows],
            {
                "SCIS rmse": [row["rmse"] for row in rows],
                "R_1 (n0/N)": [row["r1"] for row in rows],
                "R_2 (n*/N)": [row["r2"] for row in rows],
                "time (s)": [row["seconds"] for row in rows],
                "GAIN rmse + eps": [r_o + row["epsilon"] for row in rows],
            },
            title=f"Figure 3 — error-bound sweep on {DATASET}",
        )
    )

    print(
        "\n"
        + ascii_chart(
            EPSILONS,
            {
                "R_2 (n*/N)": [row["r2"] for row in rows],
                "SCIS rmse": [row["rmse"] for row in rows],
            },
            title="Figure 3: sample rate and RMSE vs epsilon",
        )
    )

    # Sample rate is non-increasing in epsilon (up to SSE sampling noise on
    # the endpoints).
    assert rows[0]["r2"] >= rows[-1]["r2"]
    # The loosest bound should fall back to (nearly) the initial sample.
    assert rows[-1]["r2"] <= rows[-1]["r1"] * 3.0
    # Accuracy guarantee in the paper's sense: achieved error below the
    # user-tolerated reference error in most cases.
    within = sum(row["rmse"] <= r_o + row["epsilon"] for row in rows)
    assert within >= len(rows) - 1
