"""Table IV — performance comparison on the three larger datasets.

Paper shape: on the million-size datasets only HIVAE, GAIN, and the SCIS
variants finish; SCIS-GAIN takes ~1.5 % of the training samples and an order
of magnitude less time than GAIN while matching its RMSE.  At bench scale the
sample-rate gap is the key signal: R_t drops well below the small-dataset
values of Table III, and the SCIS speedup over GAIN grows with N.
"""

from repro.bench import format_table, prepare_case, run_comparison
from repro.models import make_imputer

from common import EPOCHS, N_SEEDS, SIZES, TIME_BUDGET, gan_factories

DATASETS = ("search", "weather", "surveil")


def _run():
    results = []
    for name in DATASETS:
        case = prepare_case(name, n_samples=SIZES[name], seed=0)
        factories = {
            "hivae": lambda s: make_imputer("hivae", epochs=EPOCHS, seed=s),
        }
        factories.update(gan_factories(name))
        # GINN's O(n²) graph makes it the paper's first timeout victim; give
        # it the same budget as everyone and let the harness mark "—".
        results.extend(
            run_comparison([case], factories, n_seeds=N_SEEDS, time_budget=TIME_BUDGET)
        )
    return results


def test_table4_large_datasets(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_table(results, title="Table IV — Search / Weather / Surveil"))

    by_key = {(r.method, r.dataset): r for r in results}
    for name in ("weather", "surveil"):
        gain = by_key[("gain", name)]
        scis = by_key[("scis-gain", name)]
        assert gain.available and scis.available
        assert scis.rmse_mean < gain.rmse_mean * 1.25
        # The headline scalability claim: the larger the dataset, the smaller
        # the fraction of samples SCIS needs.
        assert scis.sample_rate < 0.6
    small_rate = by_key[("scis-gain", "search")].sample_rate
    assert 0 < small_rate <= 1.0
