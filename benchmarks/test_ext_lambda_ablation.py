"""Extension — ablation of the MS divergence's λ and corrective terms.

DESIGN.md calls out two design choices the paper fixes without ablation:

* the entropic weight λ = 130 (Definition 3), and
* the corrective self-terms of Definition 4 (debiasing).

This bench sweeps λ across three orders of magnitude and toggles the
corrective terms, training DIM-GAIN on a fixed dataset.  Expected shape:
performance is stable across a broad λ band (the divergence is dominated by
the masked cost for λ large relative to costs on [0,1]^d), and removing the
corrective terms hurts — the biased objective pulls reconstructions toward
the data mean.
"""

from repro.bench import format_series, prepare_case
from repro.core import DimConfig, DimImputer
from repro.models import GAINImputer

from common import EPOCHS, SIZES

DATASET = "trial"
LAMBDAS = (1.0, 10.0, 130.0, 1000.0)


def _run():
    case = prepare_case(DATASET, n_samples=min(SIZES[DATASET], 1200), seed=0)
    lambda_rows = []
    for reg in LAMBDAS:
        model = DimImputer(
            GAINImputer(epochs=EPOCHS, seed=0),
            DimConfig(epochs=EPOCHS, reg=reg),
            seed=0,
        )
        lambda_rows.append(
            {"reg": reg, "rmse": case.holdout.rmse(model.fit_transform(case.train))}
        )

    debias_rows = []
    for debias in (True, False):
        model = DimImputer(
            GAINImputer(epochs=EPOCHS, seed=0),
            DimConfig(epochs=EPOCHS, reg=130.0, debias=debias),
            seed=0,
        )
        debias_rows.append(
            {
                "debias": debias,
                "rmse": case.holdout.rmse(model.fit_transform(case.train)),
            }
        )
    return lambda_rows, debias_rows


def test_ext_lambda_ablation(benchmark):
    lambda_rows, debias_rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        "\n"
        + format_series(
            "lambda",
            [row["reg"] for row in lambda_rows],
            {"DIM-GAIN rmse": [row["rmse"] for row in lambda_rows]},
            title="Extension — entropic weight λ sweep",
        )
    )
    print(
        "\n"
        + format_series(
            "corrective terms",
            ["on" if row["debias"] else "off" for row in debias_rows],
            {"DIM-GAIN rmse": [row["rmse"] for row in debias_rows]},
            title="Extension — Definition 4 corrective-term ablation",
        )
    )

    rmses = [row["rmse"] for row in lambda_rows]
    # Stable across the λ band: no configuration catastrophically off.
    assert max(rmses) < min(rmses) * 1.5
    # Removing the corrective terms must not *help* beyond noise.
    on, off = debias_rows[0]["rmse"], debias_rows[1]["rmse"]
    assert on < off * 1.15
