"""Extension — Sinkhorn warm-start / self-term cache speedup.

DIM's wall-clock is dominated by the per-batch Sinkhorn solves.  With a
fixed batch partition, the data self-term OT(μ_x, μ_x) is a constant
scalar per batch and the optimal dual potentials drift slowly between
epochs, so caching both should cut iterations sharply after epoch 1
without changing what is learned (the solver still iterates to the same
tolerance).  This bench trains the same model twice — caches off, caches
on — over identical batch sequences and measures both effects.
"""

import numpy as np

from repro.bench import format_series
from repro.core import DIM, DimConfig
from repro.data import IncompleteDataset
from repro.models import GAINImputer
from repro.obs import recording

N_ROWS = 256
N_COLS = 8
EPOCHS = 5


def _dataset():
    rng = np.random.default_rng(0)
    values = rng.random((N_ROWS, N_COLS))
    values[rng.random((N_ROWS, N_COLS)) < 0.3] = np.nan
    return IncompleteDataset(values, name="sinkhorn-cache")


def _train(cached):
    config = DimConfig(
        epochs=EPOCHS,
        batch_size=64,
        use_adversarial=False,
        reg=0.1,
        sinkhorn_tol=1e-9,
        sinkhorn_max_iter=5000,
        sinkhorn_warm_start=cached,
        sinkhorn_cache_self_terms=cached,
        fixed_batch_order=True,  # identical batch sequences in both runs
    )
    model = GAINImputer(seed=0)
    with recording() as rec:
        report = DIM(config).train(model, _dataset(), np.random.default_rng(7))
    # Attribute solves and wall-clock to epochs from the event stream: the
    # dim.epoch span closes (and its `span` event lands) just before the
    # dim.epoch summary event that advances the counter.
    iterations, seconds, epoch = {}, {}, 0
    for event in rec.events:
        # DIM defaults to the stacked solver; both event kinds carry the
        # total iteration count in "iterations".
        if event.name in ("sinkhorn.solve", "sinkhorn.batched_solve"):
            iterations[epoch] = iterations.get(epoch, 0) + event.fields["iterations"]
        elif event.name == "span" and event.fields.get("span") == "dim.epoch":
            seconds[epoch] = event.fields["seconds"]
        elif event.name == "dim.epoch":
            epoch += 1
    return report, iterations, seconds


def test_ext_sinkhorn_cache(benchmark):
    cold, warm = benchmark.pedantic(
        lambda: (_train(False), _train(True)), rounds=1, iterations=1
    )
    cold_report, cold_iters, cold_secs = cold
    warm_report, warm_iters, warm_secs = warm

    print(
        "\n"
        + format_series(
            "epoch",
            [str(e) for e in range(EPOCHS)],
            {
                "cold iters": [float(cold_iters[e]) for e in range(EPOCHS)],
                "warm iters": [float(warm_iters[e]) for e in range(EPOCHS)],
                "cold s": [cold_secs[e] for e in range(EPOCHS)],
                "warm s": [warm_secs[e] for e in range(EPOCHS)],
            },
            title="Extension — Sinkhorn cache: per-epoch iterations and seconds",
        )
    )

    # Identical learning: per-epoch mean MS losses agree to 1e-6.
    steps_per_epoch = cold_report.steps // cold_report.epochs
    off = np.array(cold_report.ms_losses).reshape(EPOCHS, steps_per_epoch)
    on = np.array(warm_report.ms_losses).reshape(EPOCHS, steps_per_epoch)
    assert np.abs(off.mean(axis=1) - on.mean(axis=1)).max() < 1e-6

    # Steady state (epochs >= 1, once the caches are populated).
    steady = range(1, EPOCHS)
    iter_ratio = sum(cold_iters[e] for e in steady) / sum(
        warm_iters[e] for e in steady
    )
    speedup = sum(cold_secs[e] for e in steady) / sum(warm_secs[e] for e in steady)
    print(f"steady-state iteration reduction {iter_ratio:.2f}x, speedup {speedup:.2f}x")
    assert iter_ratio >= 2.0
    assert speedup >= 1.5
