"""Extension — parallel smoke-bench speedup with serial/parallel parity.

The smoke bench's 4-cell matrix (mean, knn, dim-gain, dim-gain-adv) is
dominated by the two DIM cells, so fanning the grid out over two worker
processes should roughly halve wall-clock on a multi-core machine while —
thanks to spawn-key seeding and ordered result/telemetry merging — leaving
the RMSE table bit-identical.  This bench measures both claims: parity is
asserted unconditionally, the speedup only on machines that actually have
a second core to run on.
"""

import os
import time

import pytest

from repro.bench import format_series
from repro.bench.runner import run_smoke_bench
from repro.parallel import ExecutionContext

N_SAMPLES = 192
EPOCHS = 4


def _run(context):
    start = time.perf_counter()
    results = run_smoke_bench(n_samples=N_SAMPLES, epochs=EPOCHS, context=context)
    return results, time.perf_counter() - start


@pytest.mark.parallel
def test_ext_parallel_smoke_speedup(benchmark):
    (serial, serial_seconds), (parallel, parallel_seconds) = benchmark.pedantic(
        lambda: (
            _run(ExecutionContext("serial")),
            _run(ExecutionContext("process", workers=2)),
        ),
        rounds=1,
        iterations=1,
    )

    methods = [r.method for r in serial]
    print(
        "\n"
        + format_series(
            "method",
            methods,
            {
                "serial rmse": [r.rmse_mean for r in serial],
                "parallel rmse": [r.rmse_mean for r in parallel],
            },
            title="Extension — parallel bench: RMSE parity (workers=2)",
        )
    )
    print(
        f"serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x) on {os.cpu_count()} cpus"
    )

    # Parity is unconditional: same table, to the bit.
    assert [(r.method, r.dataset, r.rmse_mean, r.sample_rate) for r in parallel] == [
        (r.method, r.dataset, r.rmse_mean, r.sample_rate) for r in serial
    ]

    # The speedup claim needs a second core; a 1-cpu machine time-slices the
    # workers and fork overhead makes "parallel" a strict loss there.
    if (os.cpu_count() or 1) < 2:
        pytest.skip("wall-clock speedup needs >= 2 cpus")
    assert parallel_seconds < serial_seconds
