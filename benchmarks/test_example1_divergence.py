"""§IV Example 1 — JS vs masking Sinkhorn divergence on point masses.

The paper's vanishing-gradient illustration: with the true distribution δ₀
and generated distribution δ_θ under Bernoulli(q) missingness,

* JS(p₀‖p_θ) = 0 at θ = 0 and 2·log 2 elsewhere — discontinuous, gradient
  zero almost everywhere;
* S_m(p₀, p_θ) = 2qθ² + λ[(1−q)log(1−q) + q log q] — smooth in θ with a
  linearly varying gradient 4qθ.

This bench evaluates both closed forms on a θ grid and cross-checks the MS
values against the numerical masking-Sinkhorn divergence on point clouds.
"""

import numpy as np

from repro.bench import format_series
from repro.ot import masking_sinkhorn_divergence

Q = 0.7  # probability a coordinate is observed
LAMBDA = 0.02
THETAS = (-1.0, -0.5, -0.1, 0.0, 0.1, 0.5, 1.0)


def js_divergence(theta: float) -> float:
    """The paper's closed form: 0 at theta == 0, else 2 log 2."""
    return 0.0 if theta == 0.0 else 2.0 * np.log(2.0)


def ms_divergence_closed_form(theta: float) -> float:
    """S_m(p0, p_theta) = 2 q theta^2 (+ a theta-independent entropic offset).

    The corrective terms of Definition 4 cancel the offset, leaving the pure
    quadratic — which is what the empirical divergence measures.
    """
    return 2.0 * Q * theta**2


def ms_divergence_empirical(theta: float, n: int = 400, seed: int = 0) -> float:
    """Monte-Carlo masking Sinkhorn divergence between δ0 and δθ samples."""
    rng = np.random.default_rng(seed)
    x_real = np.zeros((n, 1))
    x_gen = np.full((n, 1), theta)
    mask = (rng.random((n, 1)) < Q).astype(float)
    return masking_sinkhorn_divergence(
        x_gen, x_real, mask, reg=LAMBDA, max_iter=2000, tol=1e-9
    )


def _run():
    rows = []
    for theta in THETAS:
        rows.append(
            {
                "theta": theta,
                "js": js_divergence(theta),
                "ms_closed": ms_divergence_closed_form(theta),
                "ms_empirical": ms_divergence_empirical(theta),
            }
        )
    return rows


def test_example1_divergence(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        "\n"
        + format_series(
            "theta",
            [row["theta"] for row in rows],
            {
                "JS": [row["js"] for row in rows],
                "MS closed form": [row["ms_closed"] for row in rows],
                "MS empirical": [row["ms_empirical"] for row in rows],
            },
            title="Example 1 — JS vs masking Sinkhorn divergence",
        )
    )

    # JS is flat away from zero: useless gradients.
    away = [row["js"] for row in rows if row["theta"] != 0.0]
    assert len(set(away)) == 1
    # MS varies smoothly (quadratically) and matches the closed form.
    for row in rows:
        assert row["ms_empirical"] >= -1e-6
        # The residual entropic offsets of Definition 4 scale with λ; allow
        # a small absolute slack on top of a 15 % relative band.
        assert abs(row["ms_empirical"] - row["ms_closed"]) < 0.04 + 0.15 * row["ms_closed"]
    # Gradient information: MS at theta=0.5 sits strictly between its values
    # at 0.1 and 1.0 — no plateau.
    by_theta = {row["theta"]: row["ms_empirical"] for row in rows}
    assert by_theta[0.1] < by_theta[0.5] < by_theta[1.0]
