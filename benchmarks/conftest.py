"""Pytest glue for the benchmark suite.

Each bench prints its markdown table; run with ``-s`` to see them, e.g.::

    pytest benchmarks/test_table3_small_datasets.py --benchmark-only -s
"""

import pytest

from common import EPOCHS, ERROR_BOUND, INITIAL_SIZES, N_SEEDS, SIZES, TIME_BUDGET


@pytest.fixture(scope="session")
def bench_settings():
    return {
        "sizes": SIZES,
        "epochs": EPOCHS,
        "initial_sizes": INITIAL_SIZES,
        "error_bound": ERROR_BOUND,
        "time_budget": TIME_BUDGET,
        "n_seeds": N_SEEDS,
    }
