"""Table V — ablation on the smaller datasets.

Variants: GAIN (native), DIM-GAIN (MS loss, full data, no SSE),
Fixed-DIM-GAIN (MS loss on a fixed 10 % subsample), SCIS-GAIN (full system).

Paper shape: DIM-GAIN beats GAIN on RMSE but costs more time (paper: 4.68×);
SCIS-GAIN nearly matches DIM-GAIN's accuracy at a fraction of the samples
and time; Fixed-DIM-GAIN sits in between (more samples than SCIS needs on
big data, fewer than it needs on small data).
"""

from repro.bench import format_table, prepare_case, run_comparison
from repro.core import SCIS, DimConfig, DimImputer
from repro.models import GAINImputer

from common import EPOCHS, N_SEEDS, SIZES, TIME_BUDGET, scis_config

DATASETS = ("trial", "emergency", "response")


def ablation_factories(dataset: str):
    return {
        "gain": lambda s: GAINImputer(epochs=EPOCHS, seed=s),
        "dim-gain": lambda s: DimImputer(
            GAINImputer(epochs=EPOCHS, seed=s), DimConfig(epochs=EPOCHS), seed=s
        ),
        "fixed-dim-gain": lambda s: DimImputer(
            GAINImputer(epochs=EPOCHS, seed=s),
            DimConfig(epochs=EPOCHS),
            subsample_fraction=0.1,
            seed=s,
        ),
        "scis-gain": lambda s: SCIS(
            GAINImputer(epochs=EPOCHS, seed=s), scis_config(dataset, s)
        ),
    }


def _run():
    results = []
    for name in DATASETS:
        case = prepare_case(name, n_samples=SIZES[name], seed=0)
        results.extend(
            run_comparison(
                [case], ablation_factories(name), n_seeds=N_SEEDS,
                time_budget=TIME_BUDGET,
            )
        )
    return results


def test_table5_ablation_small(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_table(results, title="Table V — ablation (small datasets)"))

    by_key = {(r.method, r.dataset): r for r in results}
    for name in DATASETS:
        gain = by_key[("gain", name)]
        dim = by_key[("dim-gain", name)]
        scis = by_key[("scis-gain", name)]
        assert dim.available and gain.available and scis.available
        # The MS loss costs extra time per step.
        assert dim.seconds > gain.seconds
        # SCIS approximates DIM-GAIN's accuracy with far fewer samples.  At
        # bench scale n* can be a few hundred rows, so allow a wider accuracy
        # band than the paper's 0.72 % average gap at million scale.
        assert scis.sample_rate < 1.0
        assert scis.rmse_mean < dim.rmse_mean * 1.5
    # DIM's accuracy edge over native GAIN should appear on most datasets.
    wins = sum(
        by_key[("dim-gain", name)].rmse_mean < by_key[("gain", name)].rmse_mean
        for name in DATASETS
    )
    assert wins >= 2
