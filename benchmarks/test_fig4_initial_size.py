"""Figure 4 — effect of the initial sample size n₀.

Paper shape: each dataset has an optimal n₀ for RMSE; the training sample
rate R_t *increases as n₀ decreases* (a smaller initial sample means a wider
Theorem-1 posterior, hence more samples needed to pass the ε test), while
time stays reasonable throughout.
"""

from repro.bench import ascii_chart, format_series, prepare_case
from repro.core import SCIS, DimConfig, ScisConfig
from repro.models import GAINImputer

from common import EPOCHS, ERROR_BOUND, SIZES

DATASET = "weather"
INITIAL_SIZES_SWEEP = (60, 120, 250, 500)


def _run():
    case = prepare_case(DATASET, n_samples=min(SIZES[DATASET], 4000), seed=0)
    rows = []
    for n0 in INITIAL_SIZES_SWEEP:
        config = ScisConfig(
            initial_size=n0,
            error_bound=ERROR_BOUND,
            dim=DimConfig(epochs=EPOCHS),
            seed=0,
        )
        result = SCIS(GAINImputer(epochs=EPOCHS, seed=0), config).fit_transform(
            case.train
        )
        rows.append(
            {
                "n0": n0,
                "rmse": case.holdout.rmse(result.imputed),
                "n_star": result.n_star,
                "r_t": result.sample_rate,
                "seconds": result.total_seconds,
            }
        )
    return rows


def test_fig4_initial_size(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        "\n"
        + format_series(
            "n0",
            [row["n0"] for row in rows],
            {
                "RMSE": [row["rmse"] for row in rows],
                "n*": [float(row["n_star"]) for row in rows],
                "R_t": [row["r_t"] for row in rows],
                "time (s)": [row["seconds"] for row in rows],
            },
            title=f"Figure 4 — initial-sample-size sweep on {DATASET}",
        )
    )

    print(
        "\n"
        + ascii_chart(
            INITIAL_SIZES_SWEEP,
            {"R_t": [row["r_t"] for row in rows]},
            title="Figure 4: sample rate vs initial size",
        )
    )

    # Theorem 1: smaller n0 -> wider posterior -> more samples needed.
    assert rows[0]["n_star"] >= rows[-1]["n_star"] * 0.8
    # All runs complete with sane outputs.
    for row in rows:
        assert 0 < row["r_t"] <= 1.0
        assert row["rmse"] < 1.0
