"""SCIS — differentiable and scalable generative adversarial data imputation.

Reproduction of Wu et al., "Differentiable and Scalable Generative
Adversarial Models for Data Imputation" (ICDE 2024).

Quick start::

    import numpy as np
    from repro import SCIS, ScisConfig, GAINImputer
    from repro.data import generate, MinMaxNormalizer

    data = generate("trial").dataset
    normalized = MinMaxNormalizer().fit_transform(data)
    result = SCIS(GAINImputer(), ScisConfig(initial_size=200)).fit_transform(normalized)
    print(result.n_star, result.sample_rate)

Subpackages
-----------
``repro.tensor``   reverse-mode autodiff on NumPy
``repro.nn``       neural layers / losses; ``repro.optim`` optimisers
``repro.ot``       optimal transport: Sinkhorn, masking Sinkhorn divergence
``repro.data``     incomplete datasets, missingness, COVID-like generators
``repro.models``   GAIN, GINN, and the 10+ baselines of Tables III/IV
``repro.core``     SCIS itself: DIM + SSE + Algorithm 1
``repro.metrics``  masked RMSE/MAE, AUC, post-imputation prediction
``repro.bench``    the harness behind every reproduced table and figure
``repro.obs``      training observability: metrics, spans, trace export
``repro.parallel`` serial/process execution contexts with spawn-key seeding
"""

from . import obs
from .core import DIM, SCIS, SSE, DimConfig, ScisConfig, ScisResult, SseConfig
from .data import IncompleteDataset, MinMaxNormalizer
from .models import GAINImputer, GINNImputer, make_imputer

__version__ = "0.1.0"

__all__ = [
    "SCIS",
    "ScisConfig",
    "ScisResult",
    "DIM",
    "DimConfig",
    "SSE",
    "SseConfig",
    "GAINImputer",
    "GINNImputer",
    "make_imputer",
    "IncompleteDataset",
    "MinMaxNormalizer",
    "obs",
    "__version__",
]
