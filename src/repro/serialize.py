"""Persistence for trained generative imputers and SCIS results.

Model weights are saved as ``.npz`` archives (one array per named
parameter plus a JSON metadata blob), so a SCIS-trained generator can be
reloaded and used for imputation without retraining::

    save_generator(model, "gain.npz")
    ...
    model = GAINImputer()
    load_generator(model, "gain.npz")   # builds + restores weights
    imputed = model.transform(dataset)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .core.scis import ScisResult
from .models.base import GenerativeImputer

__all__ = ["save_generator", "load_generator", "save_scis_result", "load_scis_summary"]

_META_KEY = "__meta__"


def save_generator(model: GenerativeImputer, path: Union[str, Path]) -> None:
    """Save a built model's generator weights and identifying metadata."""
    generator = model.generator  # raises if not built
    state = generator.state_dict()
    meta = {
        "model_name": model.name,
        "n_parameters": int(generator.num_parameters()),
        "parameter_names": sorted(state),
        "n_features": int(getattr(model, "_n_features", 0) or 0),
    }
    arrays = {name.replace(".", "/"): value for name, value in state.items()}
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(Path(path), **arrays)


def load_generator(
    model: GenerativeImputer,
    path: Union[str, Path],
    n_features: int | None = None,
) -> GenerativeImputer:
    """Restore generator weights into ``model`` (building it if needed).

    ``n_features`` must be given if the archive predates the width metadata
    and the model is not yet built.
    """
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        state = {
            key.replace("/", "."): archive[key]
            for key in archive.files
            if key != _META_KEY
        }
    if meta["model_name"] != model.name:
        raise ValueError(
            f"archive holds a {meta['model_name']!r} generator, got a "
            f"{model.name!r} model"
        )
    try:
        generator = model.generator
    except RuntimeError:
        width = n_features or meta.get("n_features") or 0
        if width <= 0:
            raise ValueError(
                "model is unbuilt and the archive lacks width metadata; "
                "pass n_features explicitly"
            )
        model.build(int(width))
        generator = model.generator
    generator.load_state_dict(state)
    model._fitted = True
    return model


def save_scis_result(result: ScisResult, path: Union[str, Path]) -> None:
    """Archive a SCIS run: the imputed matrix plus a JSON summary."""
    summary = {
        "n_star": result.n_star,
        "n_initial": result.n_initial,
        "n_total": result.n_total,
        "sample_rate": result.sample_rate,
        "timings": result.timings,
        "sse_threshold": result.sse_result.threshold,
        "sse_evaluations": {
            str(k): v for k, v in result.sse_result.evaluations.items()
        },
    }
    np.savez(
        Path(path),
        imputed=result.imputed,
        summary=np.frombuffer(json.dumps(summary).encode("utf-8"), dtype=np.uint8).copy(),
    )


def load_scis_summary(path: Union[str, Path]) -> dict:
    """Load the imputed matrix and run summary saved by :func:`save_scis_result`."""
    with np.load(Path(path)) as archive:
        summary = json.loads(bytes(archive["summary"].tobytes()).decode("utf-8"))
        summary["imputed"] = archive["imputed"]
    return summary
