"""SSE — sample size estimation (Section V).

Given an initial model ``M₀`` trained on ``n₀`` rows, SSE estimates the
smallest sample size ``n*`` such that a model trained on ``n*`` rows differs
from the full-data model by at most the user-tolerated error bound ``ε`` with
probability ``1 − α``.

The machinery follows the paper:

1. **Theorem 1** — the posterior of the size-``n`` model's parameters given
   ``θ₀`` is ``N(θ₀, η H⁻¹)`` with
   ``η ≍ e^{6/λ} (1 + 1/λ^{⌊d/2⌋})² (1/n₀ − 1/n)``.
   ``H`` is the Gauss-Newton Hessian of the MS loss,
   ``H ≈ (1/n₀) Σ_ij P*_ij [T(m_i)∇_θ x̄_i]ᵀ [T(m_i)∇_θ x̄_i]``
   (the paper's own approximation that drops the second-order term).  We
   estimate its *diagonal* with Hutchinson probes: for a Rademacher matrix
   ``V``, the gradient of ``Σ_ik m_ik V_ik x̄_ik`` has expected square equal
   to ``Σ_ik m_ik (∂x̄_ik/∂θ)²`` — a handful of probes suffices and the cost
   stays at a few backward passes regardless of parameter count.

2. **Proposition 2** — the pass probability
   ``P(D(θ_n, θ_N) ≤ ε)`` is estimated empirically from ``k`` sampled
   parameter pairs and must exceed ``(1−α)/(1−β) + sqrt(log β / (−2k))``.
   With the paper's defaults (α=0.05, β=0.01, k=20) that expression exceeds
   1, so we cap it at 1: all ``k`` sampled pairs must satisfy the bound —
   the most conservative decision the empirical test can make.

3. **Binary search** over ``n ∈ [n₀, N]``; the pass probability is
   monotonically increasing in ``n`` because ``η`` shrinks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..models.base import GenerativeImputer
from ..nn import flatten_gradients, flatten_parameters, load_flat_parameters
from ..obs import get_recorder, trace
from ..parallel import ExecutionContext, derive_entropy, spawn_rng
from ..tensor import no_grad

__all__ = ["SseConfig", "SseResult", "SSE", "zeta", "eta"]

# Spawn-key domain for the k-sample pass-probability draws; keyed further by
# (candidate size n, sample index i) so each draw's stream is a pure function
# of the root entropy — independent of call order, backend, and worker.
_PASS_DOMAIN = "sse.pass_probability"


def zeta(reg: float, n_features: int) -> float:
    """ζ(λ) ≍ e^{6/λ} (1 + 1/λ^{⌊d/2⌋})² from Theorem 1."""
    half_d = max(1, n_features // 2)
    return float(np.exp(6.0 / reg) * (1.0 + reg ** (-half_d)) ** 2)


def eta(reg: float, n_features: int, n_initial: int, n: int) -> float:
    """η of Theorem 1: the posterior variance scale between sizes n₀ and n."""
    if n < n_initial:
        raise ValueError(f"n ({n}) must be >= n_initial ({n_initial})")
    return zeta(reg, n_features) * (1.0 / n_initial - 1.0 / n)


@dataclass
class SseConfig:
    """SSE hyper-parameters (§VI defaults)."""

    error_bound: float = 0.001  # ε
    confidence: float = 0.05  # α
    beta: float = 0.01  # β
    n_parameter_samples: int = 20  # k
    reg: float = 130.0  # λ, must match the DIM loss
    n_hutchinson_probes: int = 4
    hessian_ridge: float = 1e-6
    # Theorem 1 assumes an *invertible* Hessian.  Flat directions (dead ReLU
    # paths, unused hidden units) have near-zero estimated curvature and
    # would otherwise receive unboundedly large perturbations; flooring the
    # diagonal at this fraction of its mean keeps the posterior finite.
    hessian_floor: float = 0.1
    hessian_chunk: int = 512
    max_search_steps: int = 40
    # Theorem 1 pins η only up to a constant (the ``≍`` relation).  With the
    # raw scale, E[D²] ≈ η · P grows with the parameter count P, which makes
    # the test unpassable for any non-trivial network.  Normalising by P
    # (``True``, the default) gives E[D²] ≈ ζ(λ)(1/n − 1/N)/(d · obs-rate),
    # independent of the architecture — the calibration under which the
    # paper's reported sample rates are reachable.
    normalize_variance: bool = True

    def pass_threshold(self) -> float:
        """Proposition 2's lower bound on the empirical pass fraction, capped at 1."""
        raw = (1.0 - self.confidence) / (1.0 - self.beta) + np.sqrt(
            np.log(self.beta) / (-2.0 * self.n_parameter_samples)
        )
        return float(min(raw, 1.0))


@dataclass
class SseResult:
    """Outcome of the minimum-sample-size search."""

    n_star: int
    n_initial: int
    n_total: int
    seconds: float
    threshold: float
    evaluations: Dict[int, float] = field(default_factory=dict)

    @property
    def sample_rate(self) -> float:
        """R_t of the paper: n*/N."""
        return self.n_star / self.n_total

    @property
    def minimum_size(self) -> int:
        """Alias for ``n_star`` — the estimated minimum training size."""
        return self.n_star


class SSE:
    """Estimates the minimum training sample size for a DIM-trained model.

    Parameters
    ----------
    model:
        The initial model ``M₀`` (already trained by DIM on ``n₀`` rows).
    validation_values, validation_mask:
        The validation split of Algorithm 1 used to evaluate the imputation
        difference ``D`` (Eq. 4).
    config:
        :class:`SseConfig`.
    rng:
        Generator for the fixed validation noise and Hutchinson probes.
    seed:
        Root entropy for the per-sample posterior draws.  The k-sample test
        spawns one independent stream per ``(n, sample index)`` from this
        value (see ``repro.parallel.seeding``), which makes
        :meth:`pass_probability` a pure function of its arguments —
        invariant to call order and identical under serial and process
        execution.  Defaults to one integer drawn from ``rng``.
    context:
        :class:`repro.parallel.ExecutionContext` for the k-sample loop;
        defaults to ``ExecutionContext.from_env()`` (serial unless
        ``REPRO_WORKERS`` requests a pool).
    """

    def __init__(
        self,
        model: GenerativeImputer,
        validation_values: np.ndarray,
        validation_mask: np.ndarray,
        config: Optional[SseConfig] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else SseConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.context = context if context is not None else ExecutionContext.from_env()
        self._values = np.nan_to_num(
            np.asarray(validation_values, dtype=np.float64), nan=0.0
        )
        self._mask = np.asarray(validation_mask, dtype=np.float64)
        # Fixed noise so D(θ_a, θ_b) reflects parameters only.
        self._noise = model.sample_noise(self._mask.shape, self.rng)
        self._theta0 = flatten_parameters(model.generator)
        self._entropy = int(seed) if seed is not None else derive_entropy(self.rng)
        self._posterior_std_base: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Hessian estimation
    # ------------------------------------------------------------------
    def estimate_hessian_diagonal(
        self, values: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Diagonal Gauss-Newton Hessian of the MS loss at θ₀.

        Hutchinson estimator over masked output directions, averaged over
        rows (the plan's uniform row marginal absorbs the P* weighting).
        """
        cfg = self.config
        values = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
        mask = np.asarray(mask, dtype=np.float64)
        n = values.shape[0]
        generator = self.model.generator
        accumulator = np.zeros(self._theta0.size)
        total_rows = 0
        for start in range(0, n, cfg.hessian_chunk):
            chunk_values = values[start : start + cfg.hessian_chunk]
            chunk_mask = mask[start : start + cfg.hessian_chunk]
            if chunk_values.shape[0] == 0:
                continue
            noise = self.model.sample_noise(chunk_mask.shape, self.rng)
            for _ in range(cfg.n_hutchinson_probes):
                probe = self.rng.choice([-1.0, 1.0], size=chunk_mask.shape)
                generator.zero_grad()
                x_bar = self.model.reconstruct_batch(chunk_values, chunk_mask, noise)
                projected = (x_bar * (chunk_mask * probe)).sum()
                projected.backward()
                grad = flatten_gradients(generator)
                accumulator += grad**2
            total_rows += chunk_values.shape[0]
        if total_rows == 0:
            raise ValueError("cannot estimate Hessian on an empty sample")
        diagonal = accumulator / (cfg.n_hutchinson_probes * total_rows)
        diagonal += cfg.hessian_ridge * max(diagonal.max(), 1.0)
        return np.maximum(diagonal, cfg.hessian_floor * diagonal.mean())

    def prepare(self, initial_values: np.ndarray, initial_mask: np.ndarray) -> None:
        """Compute ``H`` once; later posterior draws scale its inverse sqrt."""
        with trace("sse.prepare"):
            diagonal = self.estimate_hessian_diagonal(initial_values, initial_mask)
        self._posterior_std_base = 1.0 / np.sqrt(diagonal)

    # ------------------------------------------------------------------
    # Imputation difference (Eq. 4)
    # ------------------------------------------------------------------
    def _reconstruct_validation(self, theta: np.ndarray) -> np.ndarray:
        """Load ``theta`` and reconstruct the validation split (no restore)."""
        generator = self.model.generator
        load_flat_parameters(generator, theta)
        with no_grad():
            out = self.model.reconstruct_batch(self._values, self._mask, self._noise)
        return out.data

    def _masked_rms(self, recon_a: np.ndarray, recon_b: np.ndarray) -> float:
        masked = self._mask * (recon_a - recon_b)
        count = max(self._mask.sum(), 1.0)
        return float(np.sqrt((masked**2).sum() / count))

    def imputation_difference(self, theta_a: np.ndarray, theta_b: np.ndarray) -> float:
        """D(θ_a, θ_b): RMS of masked reconstruction differences (Eq. 4)."""
        try:
            recon_a = self._reconstruct_validation(theta_a)
            recon_b = self._reconstruct_validation(theta_b)
        finally:
            load_flat_parameters(self.model.generator, self._theta0)  # restore
        return self._masked_rms(recon_a, recon_b)

    # ------------------------------------------------------------------
    # Pass probability and search
    # ------------------------------------------------------------------
    def _sample_theta(
        self,
        centre: np.ndarray,
        variance_scale: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """One posterior draw from ``N(centre, variance_scale · diag(H)⁻¹)``.

        ``rng`` is threaded explicitly: the k-sample test passes a spawned
        per-sample generator so draws never touch shared generator state
        (shared state made results depend on the order pass-probability
        evaluations happened to run in).
        """
        rng = rng if rng is not None else self.rng
        std = np.sqrt(max(variance_scale, 0.0)) * self._posterior_std_base
        return centre + std * rng.standard_normal(centre.size)

    def _sampled_distance(self, n: int, index: int, eta_n: float, eta_big: float) -> float:
        """D(θ_n, θ_N) for sampled pair ``index`` of the size-``n`` test.

        Each pair is an independent task: it derives its own generator from
        ``(entropy, n, index)``, loads its own perturbed parameters, and
        returns a scalar — the unit of work the execution context fans out.
        """
        rng = spawn_rng(self._entropy, _PASS_DOMAIN, n, index)
        theta_n = self._sample_theta(self._theta0, eta_n, rng)
        theta_big = self._sample_theta(theta_n, eta_big, rng)
        recon_n = self._reconstruct_validation(theta_n)
        recon_big = self._reconstruct_validation(theta_big)
        return self._masked_rms(recon_n, recon_big)

    def pass_probability(self, n: int, n_initial: int, n_total: int, d: int) -> float:
        """Empirical estimate of P(D(θ_n, θ_N) ≤ ε) per Proposition 2.

        The k sampled parameter pairs are independent, so they run through
        the execution context — serially by default, fanned out across
        workers when one is configured.  Per-sample spawn-key seeding makes
        the estimate bit-identical across backends and call orders.
        """
        if self._posterior_std_base is None:
            raise RuntimeError("call prepare() before pass_probability()")
        cfg = self.config
        scale = 1.0 / max(self._theta0.size, 1) if cfg.normalize_variance else 1.0
        # Both variance scales depend only on (n, n_initial, n_total): hoist
        # them out of the k-sample loop instead of recomputing per draw.
        eta_n = eta(cfg.reg, d, n_initial, n) * scale
        eta_big = (eta(cfg.reg, d, n, n_total) if n_total > n else 0.0) * scale
        tasks = [
            (lambda i=i: self._sampled_distance(n, i, eta_n, eta_big))
            for i in range(cfg.n_parameter_samples)
        ]
        try:
            distances = self.context.run(tasks, label=_PASS_DOMAIN)
        finally:
            # Tasks perturb the live generator (serial backend) or a forked
            # copy (process backend); one θ₀ restore per call covers both.
            load_flat_parameters(self.model.generator, self._theta0)
        passes = 0
        recorder = get_recorder()
        for distance in distances:
            if not np.isfinite(distance):
                # A NaN distance means a perturbed generator blew up;
                # count it as a fail but leave a health breadcrumb.
                if recorder.enabled:
                    recorder.inc("health.issues")
                    recorder.emit(
                        "health.sse_nonfinite", n=n, distance=float(distance)
                    )
                continue
            if distance <= cfg.error_bound:
                passes += 1
        return passes / cfg.n_parameter_samples

    def estimate_minimum_size(self, n_initial: int, n_total: int) -> SseResult:
        """Binary search for the smallest passing sample size (Alg. 1, line 3)."""
        if self._posterior_std_base is None:
            raise RuntimeError("call prepare() before estimate_minimum_size()")
        start = time.perf_counter()
        cfg = self.config
        recorder = get_recorder()
        d = self._mask.shape[1]
        threshold = cfg.pass_threshold()
        evaluations: Dict[int, float] = {}

        def passes(n: int) -> bool:
            if n not in evaluations:
                with trace("sse.pass_probability"):
                    evaluations[n] = self.pass_probability(n, n_initial, n_total, d)
                if recorder.enabled:
                    recorder.inc("sse.evaluations")
                    recorder.emit(
                        "sse.evaluation",
                        n=n,
                        pass_probability=evaluations[n],
                        threshold=threshold,
                        passed=evaluations[n] >= threshold,
                    )
            return evaluations[n] >= threshold

        low, high = n_initial, n_total
        if passes(low):
            high = low
        elif not passes(high):
            # Even the full dataset fails the sampled test: fall back to N.
            low = high
        else:
            steps = 0
            while low < high - 1 and steps < cfg.max_search_steps:
                mid = (low + high) // 2
                if passes(mid):
                    high = mid
                else:
                    low = mid
                steps += 1
                if recorder.enabled:
                    # high is the best passing n* candidate so far; its walk
                    # down the bracket is the evolving n* trajectory.
                    recorder.set_gauge("sse.n_star_candidate", high)
                    recorder.emit("sse.search_step", step=steps, low=low, high=high)
            low = high
        seconds = time.perf_counter() - start
        if recorder.enabled:
            recorder.emit(
                "sse.result",
                n_star=high,
                n_initial=n_initial,
                n_total=n_total,
                threshold=threshold,
                seconds=seconds,
            )
        return SseResult(
            n_star=high,
            n_initial=n_initial,
            n_total=n_total,
            seconds=seconds,
            threshold=threshold,
            evaluations=evaluations,
        )
