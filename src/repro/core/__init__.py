"""SCIS core: differentiable imputation modeling and sample size estimation."""

from .calibration import CalibrationPoint, calibrate_error_bounds
from .dim import DIM, DimConfig, DimImputer, DimReport
from .scis import SCIS, ScisConfig, ScisResult
from .sharded import (
    ShardedImputeReport,
    fit_impute_dense,
    fit_impute_sharded,
)
from .sse import SSE, SseConfig, SseResult, eta, zeta

__all__ = [
    "DIM",
    "DimConfig",
    "DimReport",
    "DimImputer",
    "SSE",
    "SseConfig",
    "SseResult",
    "eta",
    "zeta",
    "SCIS",
    "ScisConfig",
    "ScisResult",
    "ShardedImputeReport",
    "fit_impute_sharded",
    "fit_impute_dense",
    "CalibrationPoint",
    "calibrate_error_bounds",
]
