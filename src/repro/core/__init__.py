"""SCIS core: differentiable imputation modeling and sample size estimation."""

from .calibration import CalibrationPoint, calibrate_error_bounds
from .dim import DIM, DimConfig, DimImputer, DimReport
from .scis import SCIS, ScisConfig, ScisResult
from .sse import SSE, SseConfig, SseResult, eta, zeta

__all__ = [
    "DIM",
    "DimConfig",
    "DimReport",
    "DimImputer",
    "SSE",
    "SseConfig",
    "SseResult",
    "eta",
    "zeta",
    "SCIS",
    "ScisConfig",
    "ScisResult",
    "CalibrationPoint",
    "calibrate_error_bounds",
]
