"""DIM — differentiable imputation modeling (Section IV).

DIM converts a GAN-based imputation model into a differentiable one by
training its generator against the masking Sinkhorn (MS) divergence between
the generated and observed empirical measures.  Gradients follow
Proposition 1: the Sinkhorn plan is solved off-tape and the barycentric-map
gradient flows through the masked cost matrix.

Following §IV.B, the model's own adversarial game can keep running alongside
the MS objective ("the discriminator is trained to maximise the MS
divergence ... the generator is trained by minimising the MS divergence
metric"): with ``use_adversarial=True`` each batch takes one native
adversarial step (discriminator + generator) and then one MS-divergence
generator step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data.batches import BatchPlan, iterate_batches
from ..data.dataset import IncompleteDataset
from ..models.base import GenerativeImputer
from ..nn import masked_mse_loss
from ..obs import HealthMonitor, get_recorder, trace
from ..optim import Adam
from ..ot import MaskingSinkhornLoss
from ..tensor import Tensor

__all__ = ["DimConfig", "DimReport", "DIM", "DimImputer"]


@dataclass
class DimConfig:
    """Hyper-parameters of the DIM training loop.

    ``reg`` is the MS-divergence entropic weight λ (paper default 130);
    ``epochs``/``batch_size``/``lr`` default to the §VI deep-learning
    settings.  ``rec_weight`` adds an observed-cell reconstruction anchor to
    the MS generator step (the analogue of GAIN's α term).

    ``sinkhorn_warm_start`` reuses each batch's dual potentials from the
    previous epoch as the solver's starting point; ``sinkhorn_cache_self_terms``
    caches the constant data self-term ``OT_λ^m(μ_x, μ_x)`` per batch, so
    one of the three Sinkhorn solves per generator step disappears after
    epoch 1.  Both need identifiable batches, so by default the batch
    partition is drawn once and reused every epoch; set
    ``fixed_batch_order`` explicitly to decouple that choice (e.g. to
    compare cached vs uncached runs on identical batch sequences).

    ``on_divergence`` is the numerical-health policy: every run is watched
    by a :class:`repro.obs.HealthMonitor` (NaN/Inf losses, per-epoch
    divergence/oscillation on the ``dim.epoch`` loss stream).  ``"warn"``
    (default) records ``health.*`` events and the end-of-run verdict;
    ``"halt"`` additionally stops training at the first detection with a
    structured ``health.halt`` event and ``DimReport.halted = True``.
    """

    reg: float = 130.0
    epochs: int = 100
    batch_size: int = 128
    lr: float = 1e-3
    use_adversarial: bool = True
    ms_weight: float = 1.0
    rec_weight: float = 1.0
    sinkhorn_max_iter: int = 200
    sinkhorn_tol: float = 1e-6
    debias: bool = True
    sinkhorn_warm_start: bool = True
    sinkhorn_cache_self_terms: bool = True
    # Stack each step's cross/self-term OT problems into one batched
    # log-domain solve (repro.ot.sinkhorn_batched); False restores the
    # per-problem loop solver.
    sinkhorn_batched: bool = True
    # None derives the policy: fixed iff warm-start or self-term caching is on.
    fixed_batch_order: Optional[bool] = None
    # Early stopping: stop when the epoch-mean loss has not improved by
    # ``early_stopping_min_delta`` for ``early_stopping_patience`` epochs.
    # ``None`` (the default, matching the paper's fixed 100-epoch budget)
    # disables it.
    early_stopping_patience: Optional[int] = None
    early_stopping_min_delta: float = 1e-4
    # Health-watchdog policy: "warn" records health.* events, "halt" also
    # stops the loop at the first NaN/divergence/oscillation detection.
    on_divergence: str = "warn"


@dataclass
class DimReport:
    """Training diagnostics returned by :meth:`DIM.train`."""

    epochs: int
    steps: int
    seconds: float
    ms_losses: List[float] = field(default_factory=list)
    halted: bool = False
    health_verdict: Optional[str] = None

    @property
    def final_ms_loss(self) -> Optional[float]:
        return self.ms_losses[-1] if self.ms_losses else None


class DIM:
    """Trains a :class:`GenerativeImputer` under the MS-divergence loss."""

    def __init__(self, config: Optional[DimConfig] = None) -> None:
        self.config = config if config is not None else DimConfig()
        self._loss = MaskingSinkhornLoss(
            reg=self.config.reg,
            max_iter=self.config.sinkhorn_max_iter,
            tol=self.config.sinkhorn_tol,
            debias=self.config.debias,
            warm_start=self.config.sinkhorn_warm_start,
            cache_self_terms=self.config.sinkhorn_cache_self_terms,
            batched=self.config.sinkhorn_batched,
        )

    def train(
        self,
        model: GenerativeImputer,
        dataset: IncompleteDataset,
        rng: np.random.Generator,
        epochs: Optional[int] = None,
    ) -> DimReport:
        """Run the DIM loop on ``dataset`` (values may contain nan).

        The model is built lazily (idempotent if already built for this
        width); its private optimisers drive the adversarial steps while DIM
        owns a separate Adam for the MS generator updates.
        """
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        try:
            generator = model.generator
        except RuntimeError:
            model.build(dataset.n_features, rng=rng)
            generator = model.generator
        optimizer = Adam(generator.parameters(), lr=cfg.lr)

        # Batch keys from a previous train() call may point at different
        # data (SCIS retrains the same DIM on a fresh sample) — invalidate.
        self._loss.reset_caches()
        caching = cfg.sinkhorn_warm_start or cfg.sinkhorn_cache_self_terms
        fixed_order = (
            cfg.fixed_batch_order if cfg.fixed_batch_order is not None else caching
        )
        # Keys only make sense when the partition repeats; without a fixed
        # order every batch is new and the stores would grow per step.
        use_batch_keys = caching and fixed_order
        if fixed_order:
            plan = BatchPlan(
                batch_size=cfg.batch_size,
                order="fixed",
                permutation=rng.permutation(dataset.n_samples),
                yield_indices=True,
            )
        else:
            plan = BatchPlan(
                batch_size=cfg.batch_size, order="shuffled", yield_indices=True
            )

        recorder = get_recorder()
        monitor = HealthMonitor(policy=cfg.on_divergence)
        start = time.perf_counter()
        steps = 0
        report = DimReport(epochs=epochs, steps=0, seconds=0.0)
        best_epoch_loss = float("inf")
        epochs_without_improvement = 0
        epochs_run = 0
        for _ in range(epochs):
            epoch_start_step = steps
            adv_g_losses: List[float] = []
            adv_d_losses: List[float] = []
            with trace("dim.epoch"):
                for values, mask, index in iterate_batches(
                    dataset, rng=rng, plan=plan
                ):
                    if values.shape[0] < 2:
                        continue  # the square Sinkhorn plan degenerates at n=1
                    if cfg.use_adversarial:
                        adv_stats = model.adversarial_step(values, mask, rng)
                        if recorder.enabled and adv_stats:
                            adv_g_losses.append(float(adv_stats.get("g_loss", np.nan)))
                            adv_d_losses.append(float(adv_stats.get("d_loss", np.nan)))
                    noise = model.sample_noise(mask.shape, rng)
                    x_bar = model.reconstruct_batch(values, mask, noise)
                    filled = np.nan_to_num(values, nan=0.0)
                    batch_key = index.tobytes() if use_batch_keys else None
                    loss = cfg.ms_weight * self._loss(
                        x_bar, filled, mask, batch_key=batch_key
                    )
                    if cfg.rec_weight > 0.0:
                        loss = loss + cfg.rec_weight * masked_mse_loss(
                            x_bar, Tensor(filled), mask
                        )
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    loss_value = loss.item()
                    monitor.check_finite("dim.step_loss", loss_value, step=steps)
                    report.ms_losses.append(loss_value)
                    steps += 1
                    if monitor.should_halt:
                        break
                if recorder.enabled:
                    sq = 0.0
                    for param in generator.parameters():
                        if param.grad is not None:
                            sq += float(np.sum(param.grad * param.grad))
                    monitor.observe_gradient_norm("dim.generator", sq**0.5)
            epoch_losses = report.ms_losses[epoch_start_step:]
            ms_divergence = float(np.mean(epoch_losses)) if epoch_losses else None
            if recorder.enabled:
                recorder.inc("dim.epochs")
                recorder.set_gauge("dim.epoch", epochs_run)
                if ms_divergence is not None:
                    recorder.observe("dim.epoch_ms_divergence", ms_divergence)
                recorder.emit(
                    "dim.epoch",
                    epoch=epochs_run,
                    ms_divergence=ms_divergence,
                    g_loss=float(np.mean(adv_g_losses)) if adv_g_losses else None,
                    d_loss=float(np.mean(adv_d_losses)) if adv_d_losses else None,
                    steps=steps - epoch_start_step,
                )
            epochs_run += 1
            if ms_divergence is not None:
                monitor.observe_loss("dim.epoch", ms_divergence)
            if monitor.should_halt:
                break
            if cfg.early_stopping_patience is not None and steps > epoch_start_step:
                epoch_loss = float(np.mean(report.ms_losses[epoch_start_step:]))
                if epoch_loss < best_epoch_loss - cfg.early_stopping_min_delta:
                    best_epoch_loss = epoch_loss
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= cfg.early_stopping_patience:
                        if recorder.enabled:
                            recorder.emit(
                                "dim.early_stop",
                                epoch=epochs_run - 1,
                                best_epoch_loss=best_epoch_loss,
                            )
                        break
        report.epochs = epochs_run
        report.steps = steps
        report.seconds = time.perf_counter() - start
        report.halted = monitor.should_halt
        report.health_verdict = monitor.finalize()
        if recorder.enabled:
            recorder.emit(
                "dim.train",
                epochs=epochs_run,
                steps=steps,
                seconds=report.seconds,
                final_ms_loss=report.final_ms_loss,
                halted=report.halted,
                health_verdict=report.health_verdict,
            )
        # mark the model usable through the plain Imputer API
        model._fitted = True
        if getattr(model, "_column_means", None) is None:
            means = dataset.column_means()
            model._column_means = np.where(np.isnan(means), 0.0, means)
        return report


class DimImputer:
    """A plain-Imputer adapter around DIM training (no SSE).

    This is the "DIM-GAIN" ablation of Tables V/VI: the wrapped GAN imputer
    is trained with the MS divergence on the *whole* dataset — better
    accuracy than the native adversarial objective, higher cost.  With
    ``subsample_fraction`` set it becomes "Fixed-DIM-GAIN": training on a
    fixed random fraction (the paper uses 10 %) instead of the SSE-estimated
    minimum sample.
    """

    def __init__(
        self,
        model: GenerativeImputer,
        config: Optional[DimConfig] = None,
        subsample_fraction: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if subsample_fraction is not None and not 0.0 < subsample_fraction <= 1.0:
            raise ValueError(
                f"subsample_fraction must be in (0, 1], got {subsample_fraction}"
            )
        self.model = model
        self.config = config if config is not None else DimConfig()
        self.subsample_fraction = subsample_fraction
        self.seed = seed
        self.name = (
            f"dim-{model.name}"
            if subsample_fraction is None
            else f"fixed-dim-{model.name}"
        )
        self.report: Optional[DimReport] = None

    @property
    def sample_rate(self) -> float:
        """Training sample rate R_t (1.0 for full-data DIM)."""
        return self.subsample_fraction if self.subsample_fraction is not None else 1.0

    def fit(self, dataset: IncompleteDataset) -> "DimImputer":
        rng = np.random.default_rng(self.seed)
        train_set = dataset
        if self.subsample_fraction is not None:
            size = max(2, int(round(self.subsample_fraction * dataset.n_samples)))
            train_set = dataset.subsample(size, rng, name=f"{dataset.name}[fixed]")
        self.report = DIM(self.config).train(self.model, train_set, rng)
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return self.model.reconstruct(values, mask)

    def transform(self, dataset: IncompleteDataset) -> np.ndarray:
        return self.model.transform(dataset)

    def fit_transform(self, dataset: IncompleteDataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)
