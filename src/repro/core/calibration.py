"""Cheap ε ↔ sample-size calibration for a trained SCIS model.

After DIM has trained the initial model and SSE has prepared the Hessian,
the pass-probability test is cheap (forward passes on the validation split
only).  :func:`calibrate_error_bounds` reuses one prepared SSE instance to
trace the whole ``ε → n*`` curve without retraining anything — the analysis
behind a Figure-3-style plot in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..data.dataset import IncompleteDataset
from ..models.base import GenerativeImputer
from .dim import DIM, DimConfig
from .sse import SSE, SseConfig

__all__ = ["CalibrationPoint", "calibrate_error_bounds"]


@dataclass(frozen=True)
class CalibrationPoint:
    """One point on the ε → n* curve."""

    error_bound: float
    n_star: int
    sample_rate: float


def calibrate_error_bounds(
    model: GenerativeImputer,
    dataset: IncompleteDataset,
    error_bounds: Sequence[float],
    initial_size: int = 500,
    validation_size: int | None = None,
    dim_config: DimConfig | None = None,
    seed: int = 0,
) -> List[CalibrationPoint]:
    """Trace the minimum sample size for several error bounds at once.

    Trains the initial model once (DIM on ``initial_size`` rows), prepares
    the SSE Hessian once, then runs the binary search per ε.  Useful to pick
    an ε that lands at a target training budget before a full SCIS run.
    """
    if not error_bounds:
        raise ValueError("error_bounds must be non-empty")
    validation_size = validation_size if validation_size is not None else initial_size
    if initial_size + validation_size > dataset.n_samples:
        raise ValueError(
            f"initial + validation = {initial_size + validation_size} exceeds "
            f"N = {dataset.n_samples}"
        )
    rng = np.random.default_rng(seed)
    split = dataset.split_validation_initial(validation_size, initial_size, rng)

    model.build(dataset.n_features, rng=rng)
    DIM(dim_config if dim_config is not None else DimConfig()).train(
        model, split.initial, rng
    )

    sse = SSE(
        model,
        split.validation.values,
        split.validation.mask,
        SseConfig(),
        rng,
    )
    sse.prepare(split.initial.values, split.initial.mask)

    points = []
    for epsilon in sorted(error_bounds):
        sse.config.error_bound = float(epsilon)
        result = sse.estimate_minimum_size(initial_size, dataset.n_samples)
        points.append(
            CalibrationPoint(
                error_bound=float(epsilon),
                n_star=result.n_star,
                sample_rate=result.sample_rate,
            )
        )
    return points
