"""Shard-wise SCIS: train on a reservoir, impute shard-by-shard.

This is the out-of-core face of Algorithm 1.  The in-memory
:class:`~repro.core.scis.SCIS` assumes the table fits in RAM; here the
table lives in a :class:`~repro.data.shards.ShardStore` and the driver
keeps peak residency at **O(shard_rows + reservoir)** however many rows the
store holds:

1. **Pass 1** — one :meth:`ShardStore.scan`: the row count and merged
   normalisation ranges come straight from the manifest (zero shard reads
   beyond the reservoir), and SCIS trains on the algorithm-R reservoir —
   the validation split, the initial model, SSE's ``n*``, and the retrain
   all happen on ≤ ``scan_sample_budget`` rows.
2. **Pass 2** — each input shard is loaded, imputed with
   :func:`~repro.data.streaming.impute_chunk_indexed` (noise addressed by
   absolute row index, observed cells passed through verbatim), and written
   as an output shard.  Shards are independent, so pass 2 fans out over a
   :class:`~repro.parallel.ExecutionContext` — ``REPRO_WORKERS=k`` imputes
   k shards concurrently with bit-identical output to the serial run.

:func:`fit_impute_dense` is the in-memory reference implementation: it
performs the exact same scan, training, and indexed-noise imputation on an
:class:`IncompleteDataset`, so a sharded run over the same rows is
**bit-identical** to it — the property ``tests/test_sharded_core.py`` pins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..data.dataset import IncompleteDataset
from ..data.shards import (
    ShardManifest,
    ShardStore,
    combine_fingerprint,
    write_manifest,
    write_shard_file,
)
from ..data.streaming import (
    ScanResult,
    _reservoir_push,
    impute_chunk_indexed,
    scan_sample_budget,
    train_scis_from_scan,
)
from ..models.base import GenerativeImputer
from ..obs import get_recorder
from ..obs.tracing import record_span, span, start_trace, trace_context
from ..parallel import ExecutionContext

__all__ = ["ShardedImputeReport", "fit_impute_sharded", "fit_impute_dense", "DenseScan"]


@dataclass(frozen=True)
class ShardedImputeReport:
    """What one sharded fit/impute run did and what it cost.

    ``peak_resident_rows`` is the memory contract: the largest number of
    data rows ever simultaneously resident in the driver — the reservoir
    plus one shard (per worker).
    """

    rows: int
    n_shards: int
    n_features: int
    n_star: int
    n_initial: int
    sample_rate: float
    reservoir_rows: int
    peak_resident_rows: int
    training_seconds: float
    impute_seconds: float
    total_seconds: float
    output_path: Path
    output_fingerprint: str
    timings: Dict[str, float]


class DenseScan:
    """Scan adapter giving an in-memory matrix the ``ShardStore.scan`` shape.

    Rows are visited in order with the same algorithm-R step, and ranges get
    the same never-observed→(0, 1) substitution, so feeding the same rows in
    the same order with the same rng yields a bit-identical
    :class:`ScanResult` to a shard-store (or CSV) scan — the keystone of the
    dense-vs-sharded parity guarantee.
    """

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.asarray(values, dtype=np.float64)

    def scan(
        self,
        sample_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ScanResult:
        import warnings

        if sample_size is not None and rng is None:
            raise ValueError("scan(sample_size=...) requires an rng")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN columns
            minima = np.nanmin(self.values, axis=0)
            maxima = np.nanmax(self.values, axis=0)
        minima = np.where(np.isnan(minima), 0.0, minima)
        maxima = np.where(np.isnan(maxima), 1.0, maxima)
        sample = None
        if sample_size is not None:
            reservoir: List[np.ndarray] = []
            for seen, row in enumerate(self.values, start=1):
                _reservoir_push(reservoir, row, seen, sample_size, rng)
            sample = np.stack(reservoir) if reservoir else None
        return ScanResult(
            rows=self.values.shape[0], minima=minima, maxima=maxima, sample=sample
        )


def fit_impute_sharded(
    store: Union[str, Path, ShardStore],
    output_path: Union[str, Path],
    model: GenerativeImputer,
    scis_config=None,
    seed: int = 0,
    context: Optional[ExecutionContext] = None,
) -> ShardedImputeReport:
    """Train SCIS on a shard store's reservoir, impute it shard-by-shard.

    The imputed table is written as a new shard store at ``output_path``
    (same shard boundaries, same feature schema, labels copied through when
    present).  ``context`` controls the pass-2 fan-out; ``None`` defers to
    ``REPRO_WORKERS``.  Output is bit-identical across chunk sizes, shard
    layouts of the same rows, and serial/process contexts.
    """
    if not isinstance(store, ShardStore):
        store = ShardStore(store)
    if context is None:
        context = ExecutionContext.from_env()
    output_path = Path(output_path)
    output_path.mkdir(parents=True, exist_ok=True)

    start_total = time.perf_counter()
    recorder = get_recorder()
    # One trace per sharded run: the root span is emitted at the end (when
    # the totals are known); shard.train / per-shard shard.impute spans
    # parent to it, crossing fork boundaries via the spawn payload.
    root_ctx = start_trace() if recorder.enabled else None

    # Pass 1: manifest stats + reservoir -> trained model.
    with trace_context(root_ctx):
        with span("shard.train", store=str(store.path)):
            normalizer, scis_result, training_seconds, total_rows = (
                train_scis_from_scan(
                    store, model, scis_config, seed=seed, source=str(store.path)
                )
            )
    reservoir_rows = min(
        total_rows, scan_sample_budget(scis_config) if scis_config else 0
    )
    if reservoir_rows == 0:  # default config: recompute the budget it used
        from .scis import ScisConfig

        reservoir_rows = min(total_rows, scan_sample_budget(ScisConfig()))

    # Pass 2: impute shard-by-shard.  Each task loads exactly one input
    # shard, imputes it with index-addressed noise, writes one output
    # shard, and returns only the manifest entry — the closure inherits the
    # trained model at fork time, and nothing larger than a shard crosses
    # the result pipe.
    manifest = store.manifest
    offsets = store.shard_offsets()
    noise_seed = seed + 1

    def impute_shard(index: int):
        def task():
            with span("shard.impute", shard=index):
                values, mask = store.shard(index)
                restored = impute_chunk_indexed(
                    model, normalizer, values, mask, offsets[index], noise_seed
                )
                labels = store.shard_labels(index)
                info = write_shard_file(output_path, index, restored, labels)
                recorder = get_recorder()
                if recorder.enabled:
                    recorder.inc("shard.imputed")
                    recorder.emit(
                        "shard.impute",
                        index=index,
                        rows=info.rows,
                        start_row=offsets[index],
                    )
                return info

        return task

    start_impute = time.perf_counter()
    with trace_context(root_ctx):
        infos = context.run(
            [impute_shard(i) for i in range(store.n_shards)], label="shard.impute"
        )
    impute_seconds = time.perf_counter() - start_impute

    out_manifest = ShardManifest(
        name=manifest.name,
        n_features=manifest.n_features,
        feature_names=list(manifest.feature_names),
        feature_types=list(manifest.feature_types),
        shard_rows=manifest.shard_rows,
        rows=total_rows,
        shards=tuple(infos),
        fingerprint=combine_fingerprint(infos),
        has_labels=manifest.has_labels,
    )
    write_manifest(output_path, out_manifest)

    total_seconds = time.perf_counter() - start_total
    max_shard_rows = max(info.rows for info in manifest.shards)
    peak_resident_rows = max_shard_rows + reservoir_rows
    if recorder.enabled:
        recorder.set_gauge("shard.peak_resident_rows", float(peak_resident_rows))
        recorder.emit(
            "shard.fit_impute",
            rows=total_rows,
            n_shards=store.n_shards,
            n_star=scis_result.n_star,
            reservoir_rows=reservoir_rows,
            peak_resident_rows=peak_resident_rows,
            training_seconds=training_seconds,
            impute_seconds=impute_seconds,
            backend=context.backend,
            trace_id=root_ctx.trace_id if root_ctx else None,
        )
        clock_at = getattr(recorder, "clock_at", None)
        record_span(
            "shard.fit_impute",
            root_ctx,
            total_seconds,
            start=clock_at(start_total) if callable(clock_at) else None,
            recorder=recorder,
            rows=total_rows,
            n_shards=store.n_shards,
        )

    timings = dict(scis_result.timings)
    timings["scan_and_train"] = training_seconds
    timings["shard_impute"] = impute_seconds
    return ShardedImputeReport(
        rows=total_rows,
        n_shards=store.n_shards,
        n_features=manifest.n_features,
        n_star=scis_result.n_star,
        n_initial=scis_result.n_initial,
        sample_rate=scis_result.n_star / total_rows,
        reservoir_rows=reservoir_rows,
        peak_resident_rows=peak_resident_rows,
        training_seconds=training_seconds,
        impute_seconds=impute_seconds,
        total_seconds=total_seconds,
        output_path=output_path,
        output_fingerprint=out_manifest.fingerprint,
        timings=timings,
    )


def fit_impute_dense(
    dataset: Union[IncompleteDataset, np.ndarray],
    model: GenerativeImputer,
    scis_config=None,
    seed: int = 0,
    chunk_size: int = 4096,
) -> Tuple[np.ndarray, object]:
    """In-memory reference for :func:`fit_impute_sharded`.

    Runs the identical scan → train → indexed-noise impute sequence on a
    resident matrix and returns ``(imputed, scis_result)``.  Sharding the
    same rows (any layout) and running :func:`fit_impute_sharded` with the
    same model/seed reproduces this output bit-for-bit.
    """
    values = (
        dataset.values if isinstance(dataset, IncompleteDataset) else np.asarray(dataset)
    )
    source = dataset.name if isinstance(dataset, IncompleteDataset) else "dense"
    normalizer, scis_result, _, _ = train_scis_from_scan(
        DenseScan(values), model, scis_config, seed=seed, source=source
    )
    mask = (~np.isnan(values)).astype(np.float64)
    out = np.empty_like(values)
    for start in range(0, values.shape[0], chunk_size):
        stop = min(start + chunk_size, values.shape[0])
        out[start:stop] = impute_chunk_indexed(
            model, normalizer, values[start:stop], mask[start:stop], start, seed + 1
        )
    return out, scis_result
