"""SCIS — the scalable imputation system (Algorithm 1).

Given an incomplete dataset and any :class:`GenerativeImputer`, SCIS

1. splits off a validation sample ``X_v`` and an initial sample ``X₀``,
2. trains the initial model ``M₀`` with DIM's masking-Sinkhorn loss,
3. consults SSE for the minimum sample size ``n*`` meeting the
   user-tolerated error bound,
4. retrains on a size-``n*`` sample when ``n* > n₀``, and
5. imputes the full dataset with the final model (Eq. 1).

Inputs are expected min-max normalised to [0, 1] (use
:class:`repro.data.MinMaxNormalizer`), matching the paper's protocol where
the space diameter is 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from ..models.base import GenerativeImputer, impute_equation
from ..obs import get_recorder, trace
from ..parallel import ExecutionContext
from ..tensor import no_grad
from .dim import DIM, DimConfig, DimReport
from .sse import SSE, SseConfig, SseResult

__all__ = ["ScisConfig", "ScisResult", "SCIS"]


@dataclass
class ScisConfig:
    """All SCIS knobs in one place (§VI defaults).

    ``validation_size`` defaults to ``initial_size`` (the paper sets
    ``N_v = n₀``).
    """

    initial_size: int = 500  # n₀
    validation_size: Optional[int] = None  # N_v
    error_bound: float = 0.001  # ε
    confidence: float = 0.05  # α
    beta: float = 0.01  # β
    n_parameter_samples: int = 20  # k
    reg: float = 130.0  # λ
    dim: DimConfig = field(default_factory=DimConfig)
    sse: SseConfig = field(default_factory=SseConfig)
    seed: int = 0
    impute_chunk: int = 4096
    # Worker count for the parallelisable phases (currently SSE's k-sample
    # test).  None defers to the REPRO_WORKERS environment variable; 0/1 run
    # serially; >= 2 selects the fork-based process backend.  Thanks to
    # spawn-key seeding the answer is identical either way.
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.validation_size is None:
            self.validation_size = self.initial_size
        # Propagate the shared knobs into the module configs.
        self.dim.reg = self.reg
        self.sse.reg = self.reg
        self.sse.error_bound = self.error_bound
        self.sse.confidence = self.confidence
        self.sse.beta = self.beta
        self.sse.n_parameter_samples = self.n_parameter_samples


@dataclass
class ScisResult:
    """Everything Algorithm 1 returns, plus timing diagnostics."""

    imputed: np.ndarray
    n_star: int
    n_initial: int
    n_total: int
    sse_result: SseResult
    initial_report: DimReport
    retrain_report: Optional[DimReport]
    timings: Dict[str, float]

    @property
    def sample_rate(self) -> float:
        """Training sample rate R_t = n*/N (×100 in the paper's tables)."""
        return self.n_star / self.n_total

    @property
    def total_seconds(self) -> float:
        return self.timings["total"]


class SCIS:
    """The end-to-end system; wraps one generative imputer instance."""

    def __init__(self, model: GenerativeImputer, config: Optional[ScisConfig] = None):
        self.model = model
        self.config = config if config is not None else ScisConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._dim = DIM(self.config.dim)

    def fit_transform(self, dataset: IncompleteDataset) -> ScisResult:
        """Run Algorithm 1 and return the imputed matrix with diagnostics."""
        cfg = self.config
        n_total = dataset.n_samples
        if cfg.initial_size + cfg.validation_size > n_total:
            raise ValueError(
                f"initial_size + validation_size = "
                f"{cfg.initial_size + cfg.validation_size} exceeds N = {n_total}"
            )
        timings: Dict[str, float] = {}
        start_total = time.perf_counter()

        # Line 1: validation + initial samples.
        split = dataset.split_validation_initial(
            cfg.validation_size, cfg.initial_size, self._rng
        )

        # Line 2: train M₀ with the MS loss.
        self.model.build(dataset.n_features, rng=self._rng)
        with trace("scis.initial_train"):
            initial_report = self._dim.train(self.model, split.initial, self._rng)
        timings["initial_train"] = initial_report.seconds

        # Line 3: minimum sample size.
        sse = SSE(
            self.model,
            split.validation.values,
            split.validation.mask,
            config=cfg.sse,
            rng=self._rng,
            seed=cfg.seed,
            context=ExecutionContext.from_env(workers=cfg.workers),
        )
        with trace("scis.sse"):
            sse.prepare(split.initial.values, split.initial.mask)
            sse_result = sse.estimate_minimum_size(cfg.initial_size, n_total)
        timings["sse"] = sse_result.seconds

        # Lines 4-5: retrain on the minimum sample when it exceeds n₀.
        retrain_report: Optional[DimReport] = None
        if sse_result.n_star > cfg.initial_size:
            sample = dataset.subsample(
                sse_result.n_star, self._rng, name=f"{dataset.name}[n*]"
            )
            with trace("scis.retrain"):
                retrain_report = self._dim.train(self.model, sample, self._rng)
            timings["retrain"] = retrain_report.seconds
        else:
            timings["retrain"] = 0.0

        # Lines 6-7: impute the full matrix.
        start_impute = time.perf_counter()
        with trace("scis.impute"):
            imputed = self._impute_full(dataset)
        timings["impute"] = time.perf_counter() - start_impute
        timings["total"] = time.perf_counter() - start_total

        recorder = get_recorder()
        if recorder.enabled:
            recorder.emit(
                "scis.result",
                n_star=sse_result.n_star,
                n_initial=cfg.initial_size,
                n_total=n_total,
                sample_rate=sse_result.n_star / n_total,
                seconds_total=timings["total"],
                retrained=retrain_report is not None,
                initial_health=initial_report.health_verdict,
                retrain_health=(
                    retrain_report.health_verdict if retrain_report else None
                ),
            )

        return ScisResult(
            imputed=imputed,
            n_star=sse_result.n_star,
            n_initial=cfg.initial_size,
            n_total=n_total,
            sse_result=sse_result,
            initial_report=initial_report,
            retrain_report=retrain_report,
            timings=timings,
        )

    def _impute_full(self, dataset: IncompleteDataset) -> np.ndarray:
        """Reconstruct in chunks and apply Eq. 1."""
        cfg = self.config
        values, mask = dataset.values, dataset.mask
        out = np.empty_like(mask)
        noise_rng = np.random.default_rng(cfg.seed)
        for start in range(0, dataset.n_samples, cfg.impute_chunk):
            chunk_values = values[start : start + cfg.impute_chunk]
            chunk_mask = mask[start : start + cfg.impute_chunk]
            noise = self.model.sample_noise(chunk_mask.shape, noise_rng)
            with no_grad():
                recon = self.model.reconstruct_batch(chunk_values, chunk_mask, noise)
            out[start : start + cfg.impute_chunk] = recon.data
        return impute_equation(values, mask, out)
