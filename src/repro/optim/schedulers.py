"""Learning-rate schedules for the optimisers.

Schedulers mutate the wrapped optimiser's ``lr`` in place; call
:meth:`step` once per epoch (or per training step for warmup)::

    optimizer = Adam(net.parameters(), lr=1e-3)
    scheduler = CosineAnnealing(optimizer, period=100, minimum_lr=1e-5)
    for epoch in range(100):
        train_one_epoch(...)
        scheduler.step()
"""

from __future__ import annotations

import math

from .optimizers import Optimizer

__all__ = ["Scheduler", "StepDecay", "ExponentialDecay", "CosineAnnealing", "LinearWarmup"]


class Scheduler:
    """Base class: tracks the step count and the optimiser's initial lr."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.steps = 0

    def _compute_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance the schedule and return the new learning rate."""
        self.steps += 1
        self.optimizer.lr = self._compute_lr()
        return self.optimizer.lr


class StepDecay(Scheduler):
    """Multiply the lr by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.period = period
        self.gamma = gamma

    def _compute_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.steps // self.period)


class ExponentialDecay(Scheduler):
    """lr = base · gamma^steps."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma

    def _compute_lr(self) -> float:
        return self.base_lr * self.gamma**self.steps


class CosineAnnealing(Scheduler):
    """Cosine decay from the base lr to ``minimum_lr`` over ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, minimum_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self.minimum_lr = minimum_lr

    def _compute_lr(self) -> float:
        progress = min(self.steps, self.period) / self.period
        return self.minimum_lr + 0.5 * (self.base_lr - self.minimum_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class LinearWarmup(Scheduler):
    """Ramp from 0 to the base lr over ``warmup`` steps, then hold."""

    def __init__(self, optimizer: Optimizer, warmup: int) -> None:
        super().__init__(optimizer)
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.warmup = warmup

    def _compute_lr(self) -> float:
        return self.base_lr * min(1.0, self.steps / self.warmup)
