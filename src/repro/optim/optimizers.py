"""Stochastic gradient optimisers.

The paper trains every deep model with ADAM (lr 1e-3); SGD and RMSprop are
provided for ablations and for the simpler downstream prediction heads.
"""

from __future__ import annotations

import time
from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter
from ..obs import get_recorder

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop"]


class Optimizer:
    """Base class holding the parameter list and the zero-grad helper.

    ``step()`` is a template method: subclasses implement the update in
    ``_step()``, and the base times each call into the active recorder's
    ``optim.<name>.step_seconds`` histogram (``optim.adam.step_seconds``
    etc.) when telemetry is enabled — a bare ``_step()`` call otherwise.
    The enabled path also observes the global gradient norm into
    ``optim.<name>.grad_norm`` and emits a ``health.nan_grad`` event if
    the norm is non-finite (the watchdog's lowest-level tripwire).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        recorder = get_recorder()
        if not recorder.enabled:
            self._step()
            return
        label = type(self).__name__.lower()
        sq = 0.0
        for param in self.parameters:
            if param.grad is not None:
                sq += float(np.sum(param.grad * param.grad))
        grad_norm = sq**0.5
        recorder.observe(f"optim.{label}.grad_norm", grad_norm)
        if not np.isfinite(grad_norm):
            recorder.emit("health.nan_grad", optimizer=label, grad_norm=grad_norm)
        start = time.perf_counter()
        self._step()
        recorder.inc(f"optim.{label}.steps")
        recorder.observe(f"optim.{label}.step_seconds", time.perf_counter() - start)

    def _step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain SGD with optional classical momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Kingma & Ba (2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def _step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """Tieleman & Hinton's running-average-of-squares scheme."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, sq in zip(self.parameters, self._sq):
            if param.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(sq) + self.eps)
