"""First-order optimisers and learning-rate schedules."""

from .optimizers import SGD, Adam, Optimizer, RMSprop
from .schedulers import (
    CosineAnnealing,
    ExponentialDecay,
    LinearWarmup,
    Scheduler,
    StepDecay,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "Scheduler",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "LinearWarmup",
]
