"""Request-scoped distributed tracing: trace/span identity and waterfalls.

The recorder layer (:mod:`repro.obs.recorder`) times code blocks as nested
spans, but its ``span`` events only know their lexical parent on the
current thread — once a serving request crosses the dispatcher queue or a
sharded run fans out into fork workers, causality is lost.  This module
adds the missing identity:

:class:`TraceContext`
    An immutable ``(trace_id, span_id, parent_span_id)`` triple.  One
    trace = one request (or one sharded run); every span within it carries
    the same ``trace_id`` and links to its parent via ``parent_span_id``.
:func:`span` / :func:`record_span`
    Emit ``span`` events that carry the context (plus a ``start`` offset
    on the recorder clock), so a trace file can be reassembled into a
    latency waterfall after the fact.  ``span()`` manages a per-thread
    context stack; ``record_span()`` is the explicit form used when the
    span's endpoints were measured elsewhere (e.g. the serving dispatcher
    timestamps ``submitted``/``dequeued`` across threads).
:func:`current_trace` / :func:`set_trace_context` / :func:`trace_context`
    The per-thread ambient context.  :mod:`repro.parallel` propagates it
    through fork spawn payloads so spans emitted in a worker re-link to
    the parent trace on absorption (see ``InMemoryRecorder.absorb`` and
    clock anchoring in :class:`~repro.obs.recorder.InMemoryRecorder`).
:func:`spans_of_trace` / :func:`trace_ids` / :func:`format_waterfall`
    Offline analysis over an exported trace dict — what the
    ``repro obs waterfall`` CLI renders.

Pure standard library by design — same layering rule as the rest of
``repro.obs``.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .export import TraceLike, trace_to_dict
from .recorder import Recorder, get_recorder

__all__ = [
    "TraceContext",
    "start_trace",
    "current_trace",
    "set_trace_context",
    "trace_context",
    "span",
    "record_span",
    "spans_of_trace",
    "trace_ids",
    "format_trace_index",
    "format_waterfall",
]


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one span within one trace.

    ``trace_id`` groups every span of a request end to end;
    ``span_id`` names this span; ``parent_span_id`` links it upward
    (``None`` for the root span).
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A fresh child context: same trace, new span, parented here."""
        return TraceContext(self.trace_id, _new_id(), self.span_id)

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Optional[str]]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_span_id=(
                None
                if data.get("parent_span_id") is None
                else str(data["parent_span_id"])
            ),
        )


def start_trace() -> TraceContext:
    """A fresh root context: new trace, new root span, no parent."""
    return TraceContext(trace_id=_new_id(), span_id=_new_id())


_local = threading.local()


def current_trace() -> Optional[TraceContext]:
    """The ambient context on this thread (``None`` outside any trace)."""
    return getattr(_local, "ctx", None)


def set_trace_context(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``ctx`` as this thread's ambient context; returns the old one."""
    previous = current_trace()
    _local.ctx = ctx
    return previous


@contextmanager
def trace_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Scoped :func:`set_trace_context`: restores the previous context on exit."""
    previous = set_trace_context(ctx)
    try:
        yield ctx
    finally:
        set_trace_context(previous)


def record_span(
    name: str,
    ctx: Optional[TraceContext],
    seconds: float,
    start: Optional[float] = None,
    recorder: Optional[Recorder] = None,
    **fields: object,
) -> None:
    """Emit one already-measured span under ``ctx``.

    ``start`` is the span's start offset on the recorder clock (see
    ``InMemoryRecorder.clock_at``); when omitted, waterfall rendering falls
    back to ``event.t - seconds``.  No-op when the recorder is disabled.
    """
    rec = recorder if recorder is not None else get_recorder()
    if not rec.enabled:
        return
    rec.observe(f"span.{name}.seconds", float(seconds))
    payload: Dict[str, object] = {"span": name, "seconds": float(seconds)}
    if start is not None:
        payload["start"] = float(start)
    if ctx is not None:
        payload.update(ctx.to_dict())
    payload.update(fields)
    rec.emit("span", **payload)


@contextmanager
def span(
    name: str, recorder: Optional[Recorder] = None, **fields: object
) -> Iterator[Optional[TraceContext]]:
    """Time a block as a traced span and yield its :class:`TraceContext`.

    Child of the ambient :func:`current_trace` when one is set, otherwise
    the root of a brand-new trace.  The yielded context becomes ambient for
    the block (so nested ``span()`` calls chain), and the ``span`` event is
    emitted on close with the context and a ``start`` clock offset.  With a
    disabled recorder the block runs untimed and ``None`` is yielded.
    """
    import time

    rec = recorder if recorder is not None else get_recorder()
    if not rec.enabled:
        yield None
        return
    parent = current_trace()
    ctx = parent.child() if parent is not None else start_trace()
    clock_at = getattr(rec, "clock_at", None)
    t0 = time.perf_counter()
    previous = set_trace_context(ctx)
    try:
        yield ctx
    finally:
        seconds = time.perf_counter() - t0
        set_trace_context(previous)
        record_span(
            name,
            ctx,
            seconds,
            start=clock_at(t0) if callable(clock_at) else None,
            recorder=rec,
            **fields,
        )


# ----------------------------------------------------------------------
# Offline analysis: spans -> waterfall
# ----------------------------------------------------------------------
def spans_of_trace(
    trace: TraceLike, trace_id: Optional[str] = None
) -> List[Dict[str, object]]:
    """Extract traced spans (events carrying a ``trace_id``) from a trace.

    Each returned dict has ``name`` / ``seconds`` / ``start`` /
    ``trace_id`` / ``span_id`` / ``parent_span_id`` plus any extra span
    fields; ``trace_id`` filters to one request's spans.
    """
    spans: List[Dict[str, object]] = []
    for event in trace_to_dict(trace)["events"]:
        if event["name"] != "span":
            continue
        fields = event.get("fields", {})
        if "trace_id" not in fields:
            continue  # legacy depth/parent span with no trace identity
        if trace_id is not None and fields["trace_id"] != trace_id:
            continue
        seconds = float(fields["seconds"])
        start = fields.get("start")
        record = dict(fields)
        record["name"] = record.pop("span")
        record["seconds"] = seconds
        record["start"] = (
            float(start) if start is not None else float(event["t"]) - seconds
        )
        spans.append(record)
    return spans


def trace_ids(trace: TraceLike) -> Dict[str, Dict[str, object]]:
    """Index the traces present in a trace file.

    Maps ``trace_id`` to ``{"root", "n_spans", "seconds", "start"}`` where
    ``root`` is the name of the parentless span (``"?"`` if the root was
    not captured) and ``seconds`` is the root's duration (or the spans'
    envelope when there is no root).  Sorted by start time.
    """
    groups: Dict[str, List[Dict[str, object]]] = {}
    for record in spans_of_trace(trace):
        groups.setdefault(str(record["trace_id"]), []).append(record)
    index: Dict[str, Dict[str, object]] = {}
    for tid, spans in groups.items():
        roots = [s for s in spans if s.get("parent_span_id") is None]
        t0 = min(float(s["start"]) for s in spans)
        t1 = max(float(s["start"]) + float(s["seconds"]) for s in spans)
        index[tid] = {
            "root": str(roots[0]["name"]) if roots else "?",
            "n_spans": len(spans),
            "seconds": float(roots[0]["seconds"]) if roots else t1 - t0,
            "start": t0,
        }
    return dict(sorted(index.items(), key=lambda kv: kv[1]["start"]))


def format_trace_index(trace: TraceLike) -> str:
    """One line per trace in the file — what to feed ``--trace-id``."""
    index = trace_ids(trace)
    if not index:
        return "no traced spans found (record with a tracing-aware build)"
    lines = [f"{len(index)} trace(s):"]
    for tid, info in index.items():
        lines.append(
            f"  {tid}  {info['root']:<24} spans={info['n_spans']:<3} "
            f"{1000.0 * float(info['seconds']):8.2f}ms @ {float(info['start']):.3f}s"
        )
    return "\n".join(lines)


def format_waterfall(trace: TraceLike, trace_id: str, width: int = 40) -> str:
    """Render one trace's spans as an indented latency waterfall.

    ``width`` is the bar column in characters; bars are positioned on the
    trace's own [first start, last end] envelope.  Raises ``ValueError``
    when the trace id has no spans in the file.
    """
    spans = spans_of_trace(trace, trace_id=trace_id)
    if not spans:
        raise ValueError(f"no spans found for trace id {trace_id!r}")
    spans.sort(key=lambda s: (float(s["start"]), -float(s["seconds"])))
    t0 = min(float(s["start"]) for s in spans)
    t1 = max(float(s["start"]) + float(s["seconds"]) for s in spans)
    total = max(t1 - t0, 1e-9)
    by_id = {str(s["span_id"]): s for s in spans}
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    for record in spans:
        parent = record.get("parent_span_id")
        key = str(parent) if parent is not None and str(parent) in by_id else None
        children.setdefault(key, []).append(record)

    name_width = max(len(str(s["name"])) + 2 * _depth(s, by_id) for s in spans)
    lines = [
        f"trace {trace_id}: {len(spans)} spans over {1000.0 * total:.2f}ms"
    ]

    def render(record: Dict[str, object], depth: int) -> None:
        start = float(record["start"]) - t0
        seconds = float(record["seconds"])
        lead = int(round(width * start / total))
        bar = max(1, int(round(width * seconds / total)))
        lead = min(lead, width - 1)
        bar = min(bar, width - lead)
        label = "  " * depth + str(record["name"])
        lines.append(
            f"  {label:<{name_width}} |{' ' * lead}{'#' * bar}"
            f"{' ' * (width - lead - bar)}| {1000.0 * start:8.2f}ms "
            f"+{1000.0 * seconds:.2f}ms"
        )
        for child in children.get(str(record["span_id"]), []):
            render(child, depth + 1)

    for root in children.get(None, []):
        render(root, 0)
    return "\n".join(lines)


def _depth(record: Dict[str, object], by_id: Dict[str, Dict[str, object]]) -> int:
    depth = 0
    seen = set()
    parent = record.get("parent_span_id")
    while parent is not None and str(parent) in by_id and str(parent) not in seen:
        seen.add(str(parent))
        depth += 1
        parent = by_id[str(parent)].get("parent_span_id")
    return depth
