"""Training observability: metrics, structured events, spans, exporters.

This package is the instrumentation substrate for the whole stack (contract
in ``docs/observability.md``).  It is zero-dependency (standard library
only) and sits *below* ``repro.tensor`` in the layering: any module may
import it, it imports nothing from ``repro``.

Typical use::

    from repro.obs import recording, write_json_trace

    with recording() as rec:
        DIM(config).train(model, dataset, rng)   # instrumented internally
    write_json_trace(rec, "trace.json")

With no recorder attached (the default), every instrumented site reduces to
one function call plus one attribute check — the overhead guarantee that
lets instrumentation live in hot paths like the Sinkhorn solver and
``Optimizer.step``.
"""

from .export import (
    events_to_csv,
    load_trace,
    summarize_trace,
    trace_to_dict,
    write_csv_events,
    write_json_trace,
)
from .health import HealthConfig, HealthMonitor
from .live import (
    LiveAggregator,
    QuantileDigest,
    SlidingWindow,
    StreamingRecorder,
    prometheus_exposition,
    tail_events,
)
from .profiler import (
    OpProfiler,
    OpStats,
    flame_from_profile,
    format_profile_table,
    get_op_profiler,
    profile_from_trace,
    profiling,
)
from .recorder import (
    Event,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
    trace,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import (
    TraceContext,
    current_trace,
    format_trace_index,
    format_waterfall,
    record_span,
    set_trace_context,
    span,
    spans_of_trace,
    start_trace,
    trace_context,
    trace_ids,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Event",
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "get_recorder",
    "set_recorder",
    "recording",
    "trace",
    "trace_to_dict",
    "write_json_trace",
    "load_trace",
    "events_to_csv",
    "write_csv_events",
    "summarize_trace",
    "OpProfiler",
    "OpStats",
    "get_op_profiler",
    "profiling",
    "profile_from_trace",
    "flame_from_profile",
    "format_profile_table",
    "HealthConfig",
    "HealthMonitor",
    "TraceContext",
    "start_trace",
    "current_trace",
    "set_trace_context",
    "trace_context",
    "span",
    "record_span",
    "spans_of_trace",
    "trace_ids",
    "format_trace_index",
    "format_waterfall",
    "QuantileDigest",
    "SlidingWindow",
    "LiveAggregator",
    "prometheus_exposition",
    "StreamingRecorder",
    "tail_events",
]
