"""Metric primitives: counters, gauges, histograms, and their registry.

The registry is the aggregate half of the observability layer (events are
the other half, see :mod:`repro.obs.recorder`).  Three metric types cover
everything the training stack needs:

``Counter``
    Monotonically increasing total (Sinkhorn solves, Adam steps, epochs).
``Gauge``
    Last-written value (current epoch, current SSE bracket).
``Histogram``
    Streaming distribution summary (Sinkhorn iteration counts, step
    timings, per-batch losses).  Exact count/total/min/max plus a bounded
    reservoir for quantiles, so memory stays O(``max_samples``) no matter
    how long training runs.

Everything here is pure standard library — the observability layer must be
importable below ``repro.tensor`` without dragging in NumPy.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic counter; ``inc`` with a negative amount is rejected."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """Last-value metric; ``value`` is ``None`` until first set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution: exact moments, reservoir-sampled quantiles.

    The first ``max_samples`` observations are kept verbatim; afterwards
    classic reservoir sampling (seeded per-histogram, so summaries are
    reproducible) keeps a uniform subsample.  ``count``/``total``/``min``/
    ``max`` stay exact regardless.
    """

    __slots__ = ("name", "count", "total", "min", "max", "max_samples", "_samples", "_rng")

    def __init__(self, name: str, max_samples: int = 2048) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: List[float] = []
        # crc32, not hash(): str hashes are salted per process, which made
        # reservoir quantiles differ between identical runs.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self._samples[slot] = value

    def absorb(
        self,
        count: int,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
        samples: Optional[List[float]] = None,
    ) -> None:
        """Fold another histogram's contents into this one.

        Used when a parent recorder merges a worker's trace
        (:meth:`repro.obs.recorder.InMemoryRecorder.absorb`).  The exact
        moments — ``count``/``total``/``min``/``max`` and hence ``mean`` —
        merge losslessly; the quantile reservoir is extended with the
        child's (bounded) sample list, so percentiles remain an
        approximation after a merge.
        """
        if count < 0:
            raise ValueError(f"histogram {self.name!r} cannot absorb count {count}")
        if count == 0:
            return
        self.count += int(count)
        self.total += float(total)
        if minimum is not None:
            self.min = minimum if self.min is None else min(self.min, float(minimum))
        if maximum is not None:
            self.max = maximum if self.max is None else max(self.max, float(maximum))
        for value in samples or ():
            if len(self._samples) < self.max_samples:
                self._samples.append(float(value))
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.max_samples:
                    self._samples[slot] = float(value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile (``q`` in [0, 100]) over the reservoir."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self, include_samples: bool = False) -> Dict[str, object]:
        """Summary dict; ``include_samples`` adds the raw (bounded) reservoir
        so a parent recorder can merge this histogram with exact moments and
        approximate quantiles."""
        out: Dict[str, object] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }
        if include_samples:
            out["samples"] = list(self._samples)
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics; name reuse across types raises.

    Thread-safe for creation; individual metric updates are plain attribute
    arithmetic (atomic enough under the GIL for telemetry purposes).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        holders = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in holders.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._check_free(name, "counter")
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._check_free(name, "gauge")
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._check_free(name, "histogram")
                self._histograms[name] = Histogram(name, max_samples=max_samples)
            return self._histograms[name]

    def snapshot(self, include_samples: bool = False) -> Dict[str, Dict[str, object]]:
        """JSON-ready view of every metric, sorted by name.

        ``include_samples`` forwards to :meth:`Histogram.summary` so worker
        traces can carry mergeable reservoirs.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary(include_samples=include_samples)
                    for n, h in sorted(self._histograms.items())
                },
            }
