"""Recorders and span timers: the event half of the observability layer.

The instrumentation contract (documented in ``docs/observability.md``) is
deliberately tiny so every layer of the stack can afford it:

* Hot paths fetch the process-wide recorder with :func:`get_recorder` and
  guard all work behind ``recorder.enabled`` — with the default
  :class:`NullRecorder` attached, instrumentation costs one function call
  and one attribute read per site.
* When a :class:`InMemoryRecorder` is attached (usually via the
  :func:`recording` context manager), instrumented code emits structured
  :class:`Event` rows and updates metrics on the recorder's
  :class:`~repro.obs.registry.MetricsRegistry`.
* :func:`trace` times a code block as a named span; spans nest, and each
  close emits a ``span`` event carrying its name, depth, parent, and
  duration, plus a ``span.<name>.seconds`` histogram observation.

Pure standard library by design — this module sits below ``repro.tensor``
in the dependency order and must not import anything from ``repro``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .registry import MetricsRegistry

__all__ = [
    "Event",
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "get_recorder",
    "set_recorder",
    "recording",
    "trace",
]


@dataclass
class Event:
    """One structured telemetry row.

    ``t`` is seconds since the recorder was attached; ``fields`` holds the
    event's scalar payload (numbers, strings, bools, ``None``).
    """

    name: str
    t: float
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "t": self.t, "fields": dict(self.fields)}


class Recorder:
    """Recorder protocol: what instrumented code is allowed to call.

    ``enabled`` is the contract's overhead guarantee: instrumentation MUST
    check it before doing any work beyond the call itself, so a disabled
    recorder costs O(1) per site with no allocation.
    """

    enabled: bool = False

    @property
    def metrics(self) -> MetricsRegistry:
        raise NotImplementedError

    def emit(self, name: str, **fields: object) -> None:
        raise NotImplementedError

    # Metric conveniences so call sites need only the recorder handle.
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)


class NullRecorder(Recorder):
    """The default recorder: every operation is a no-op.

    Kept stateless and metric-free so an accidentally unguarded call still
    cannot accumulate memory.
    """

    enabled = False

    @property
    def metrics(self) -> MetricsRegistry:  # fresh throwaway, never retained
        return MetricsRegistry()

    def emit(self, name: str, **fields: object) -> None:
        pass

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


class InMemoryRecorder(Recorder):
    """Collects events and metrics in memory for later export.

    ``max_events`` bounds the event list; overflow increments
    ``dropped_events`` (reported in the exported trace) instead of growing
    without bound during long runs.  Metrics are always updated — they are
    O(1) in memory by construction.
    """

    enabled = True

    def __init__(
        self, max_events: int = 100_000, clock_anchor: Optional[float] = None
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped_events = 0
        self._metrics = MetricsRegistry()
        # A fork worker anchors its recorder to the parent recorder's epoch
        # (perf_counter is the system-wide monotonic clock on Linux, so the
        # anchor survives the fork): its event timestamps are then directly
        # comparable to the parent's, and absorb() keeps them verbatim.
        self._start = time.perf_counter() if clock_anchor is None else clock_anchor
        self.anchored = clock_anchor is not None
        self._lock = threading.Lock()
        self._spans = threading.local()

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    def clock(self) -> float:
        """Seconds since this recorder was created (or since its anchor)."""
        return time.perf_counter() - self._start

    def clock_at(self, perf_t: float) -> float:
        """Map a ``time.perf_counter()`` reading onto this recorder's clock."""
        return perf_t - self._start

    def emit(self, name: str, **fields: object) -> None:
        self._record(Event(name=name, t=self.clock(), fields=fields))

    def _record(self, event: Event) -> None:
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped_events += 1

    # ------------------------------------------------------------------
    # Span bookkeeping (used by trace(); stack is per-thread)
    # ------------------------------------------------------------------
    def _span_stack(self) -> List[str]:
        stack = getattr(self._spans, "stack", None)
        if stack is None:
            stack = []
            self._spans.stack = stack
        return stack

    def to_dict(self, include_samples: bool = False) -> Dict[str, object]:
        """JSON-ready trace: events, metric snapshot, bookkeeping.

        ``include_samples`` adds each histogram's raw reservoir to the
        snapshot so another recorder can :meth:`absorb` the trace with
        exact moments (worker→parent merging in ``repro.parallel``).
        """
        with self._lock:
            events = [event.to_dict() for event in self.events]
            dropped = self.dropped_events
        return {
            "version": 1,
            "duration_seconds": self.clock(),
            "n_events": len(events),
            "dropped_events": dropped,
            "anchored": self.anchored,
            "events": events,
            "metrics": self._metrics.snapshot(include_samples=include_samples),
        }

    def absorb(self, trace: Dict[str, object]) -> None:
        """Merge a child recorder's trace dict into this recorder.

        Used by :class:`repro.parallel.ExecutionContext` to fold per-worker
        telemetry back into the parent: events from an *anchored* child
        (one created with ``clock_anchor=parent._start``) keep their
        original timestamps — they are already on this recorder's clock —
        while unanchored events are re-stamped at absorb time; counters
        add, gauges take the child's last value, and histograms merge via
        :meth:`Histogram.absorb` — count/total/mean/min/max exactly,
        quantiles approximately.  Callers should absorb child traces in a
        deterministic order (task order).
        """
        anchored = bool(trace.get("anchored"))
        for event in trace.get("events", []):
            if anchored:
                self._record(
                    Event(
                        name=event["name"],
                        t=float(event.get("t", 0.0)),
                        fields=dict(event.get("fields", {})),
                    )
                )
            else:
                self.emit(event["name"], **event.get("fields", {}))
        metrics = trace.get("metrics", {})
        for name, value in metrics.get("counters", {}).items():
            self.metrics.counter(name).inc(value)
        for name, value in metrics.get("gauges", {}).items():
            if value is not None:
                self.metrics.gauge(name).set(value)
        for name, summary in metrics.get("histograms", {}).items():
            self.metrics.histogram(name).absorb(
                count=summary.get("count", 0),
                total=summary.get("total", 0.0),
                minimum=summary.get("min"),
                maximum=summary.get("max"),
                samples=summary.get("samples"),
            )
        dropped = int(trace.get("dropped_events", 0))
        if dropped:
            with self._lock:
                self.dropped_events += dropped


_NULL = NullRecorder()
_active: Recorder = _NULL


def get_recorder() -> Recorder:
    """The process-wide recorder; :class:`NullRecorder` unless attached."""
    return _active


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Attach ``recorder`` globally (``None`` restores the null recorder).

    Returns the previously attached recorder so callers can restore it.
    """
    global _active
    previous = _active
    _active = recorder if recorder is not None else _NULL
    return previous


@contextmanager
def recording(recorder: Optional[InMemoryRecorder] = None) -> Iterator[InMemoryRecorder]:
    """Attach a recorder for the duration of the block and yield it.

    ::

        with recording() as rec:
            DIM(config).train(model, dataset, rng)
        write_json_trace(rec, "trace.json")
    """
    rec = recorder if recorder is not None else InMemoryRecorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


@contextmanager
def trace(name: str, recorder: Optional[Recorder] = None, **fields: object) -> Iterator[None]:
    """Time a block as a span named ``name``.

    No-op (and allocation-free) when the active recorder is disabled.  On
    close, emits a ``span`` event with the span's name, nesting depth,
    parent span (or ``None``), duration, and any extra ``fields``, and
    observes the duration in the ``span.<name>.seconds`` histogram.
    """
    rec = recorder if recorder is not None else _active
    if not rec.enabled:
        yield
        return
    stack = rec._span_stack() if isinstance(rec, InMemoryRecorder) else []
    parent = stack[-1] if stack else None
    depth = len(stack)
    stack.append(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - start
        if stack and stack[-1] == name:
            stack.pop()
        rec.observe(f"span.{name}.seconds", seconds)
        rec.emit(
            "span", span=name, seconds=seconds, depth=depth, parent=parent, **fields
        )
