"""Trace exporters: JSON (full fidelity) and CSV (events only), plus a
human summary used by the ``repro obs`` CLI subcommand.

A *trace* is the dict produced by
:meth:`repro.obs.recorder.InMemoryRecorder.to_dict`:

``{"version": 1, "duration_seconds": ..., "n_events": ...,
"dropped_events": ..., "events": [{"name", "t", "fields"}, ...],
"metrics": {"counters": ..., "gauges": ..., "histograms": ...}}``

JSON round-trips losslessly through :func:`write_json_trace` /
:func:`load_trace`.  CSV flattens events to one row each with a column per
field key (union across events), for spreadsheet-style inspection.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Union

from .recorder import InMemoryRecorder

__all__ = [
    "trace_to_dict",
    "write_json_trace",
    "load_trace",
    "events_to_csv",
    "write_csv_events",
    "summarize_trace",
]

TraceLike = Union[InMemoryRecorder, Dict[str, object]]


def trace_to_dict(trace: TraceLike) -> Dict[str, object]:
    """Normalise a recorder or an already-built trace dict to a dict."""
    if isinstance(trace, InMemoryRecorder):
        return trace.to_dict()
    if isinstance(trace, dict):
        return trace
    raise TypeError(f"expected InMemoryRecorder or dict, got {type(trace)!r}")


def _jsonify(value: object) -> object:
    # NumPy scalars reach here from instrumented call sites; duck-type via
    # .item() so this module stays NumPy-free.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def write_json_trace(trace: TraceLike, path: Union[str, Path]) -> Path:
    """Serialise the trace to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_dict(trace), indent=2, default=_jsonify))
    return path


def load_trace(path: Union[str, Path]) -> Dict[str, object]:
    """Load a JSON trace written by :func:`write_json_trace`."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "events" not in data:
        raise ValueError(f"{path} is not a repro.obs trace (no 'events' key)")
    return data


def events_to_csv(trace: TraceLike, event_name: str = "") -> str:
    """Render events as CSV text: ``t,name,<field columns...>``.

    ``event_name`` filters to one event type (empty string keeps all),
    which also keeps the column set narrow.
    """
    events = trace_to_dict(trace)["events"]
    if event_name:
        events = [e for e in events if e["name"] == event_name]
    field_names: List[str] = []
    for event in events:
        for key in event["fields"]:
            if key not in field_names:
                field_names.append(key)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["t", "name", *field_names])
    for event in events:
        fields = event["fields"]
        writer.writerow(
            [event["t"], event["name"], *[fields.get(k, "") for k in field_names]]
        )
    return buffer.getvalue()


def write_csv_events(
    trace: TraceLike, path: Union[str, Path], event_name: str = ""
) -> Path:
    """Write :func:`events_to_csv` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(events_to_csv(trace, event_name=event_name))
    return path


def _format_number(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summarize_trace(trace: TraceLike) -> str:
    """Multi-line human summary: event counts, counters, gauges, histograms."""
    data = trace_to_dict(trace)
    lines = [
        f"trace: {data.get('n_events', len(data['events']))} events over "
        f"{float(data.get('duration_seconds', 0.0)):.3f}s "
        f"({data.get('dropped_events', 0)} dropped)"
    ]
    counts: Dict[str, int] = {}
    for event in data["events"]:
        counts[event["name"]] = counts.get(event["name"], 0) + 1
    if counts:
        lines.append("events:")
        for name, count in sorted(counts.items()):
            lines.append(f"  {name:<32} x{count}")
    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<32} {_format_number(value)}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<32} {_format_number(value)}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, summary in sorted(histograms.items()):
            mean = summary.get("mean")
            lines.append(
                f"  {name:<32} n={summary.get('count')} "
                f"mean={_format_number(mean) if mean is not None else '-'} "
                f"min={_format_number(summary.get('min'))} "
                f"p50={_format_number(summary.get('p50'))} "
                f"p99={_format_number(summary.get('p99'))} "
                f"max={_format_number(summary.get('max'))}"
            )
    return "\n".join(lines)
