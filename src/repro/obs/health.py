"""Numerical-health watchdog for training loops.

The paper's central training-dynamics claim — MS-divergence training
converges where GAIN's JS-based adversarial loop oscillates or NaNs out —
and the known instabilities of entropic OT at small ``reg`` (overflowing
log-sum-exp potentials, vanishing gradients; Muzellec et al.) both call
for detection *during* a run, not a post-mortem.  This module provides the
watchdog that training layers register their loss streams and gradient
norms with:

* **NaN/Inf detection** — :meth:`HealthMonitor.check_finite` on losses,
  :meth:`HealthMonitor.observe_gradient_norm` on per-module gradient
  norms (which also maintains a ``health.grad_norm.<module>`` gauge).
* **Divergence detection** — a windowed least-squares slope over each
  registered loss stream; a sustained relative rise beyond
  ``HealthConfig.divergence_rise`` flags the stream as diverging.
* **Oscillation detection** — the fraction of consecutive-difference sign
  flips plus the relative swing amplitude over the same window; a
  zig-zagging stream whose swings are large relative to its level is
  flagged as oscillating (the classic unstable-GAN signature).

Every issue emits a structured ``health.*`` event through the active
recorder (guarded — with the default ``NullRecorder`` detection still
works, it just leaves no events) and feeds the end-of-run verdict
returned by :meth:`HealthMonitor.finalize`.  The ``policy`` decides what
a detection does: ``"warn"`` records it, ``"halt"`` additionally raises
:attr:`HealthMonitor.should_halt` so the owning training loop stops and a
``health.halt`` event marks where.

Pure standard library (``math``/``collections``), like all of
``repro.obs`` — callers pass plain floats, never arrays.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .recorder import get_recorder

__all__ = ["HealthConfig", "HealthMonitor", "HEALTH_POLICIES"]

HEALTH_POLICIES = ("warn", "halt")

# Verdict severity, worst first; "healthy" when no issue was recorded.
_SEVERITY = ("nan", "divergence", "oscillation")


@dataclass
class HealthConfig:
    """Detection thresholds (chosen for per-epoch loss streams).

    ``window`` observations are buffered per stream; detection runs once
    the window fills.  ``divergence_rise`` is the *relative* rise of the
    least-squares fit across the full window (0.25 = the trend line climbs
    by 25 % of the stream's mean level).  Oscillation needs both a flip
    rate (fraction of consecutive-difference sign changes) above
    ``oscillation_flip_rate`` and a mean swing above
    ``oscillation_amplitude`` relative to the stream's level — so noisy
    but small-amplitude convergence is not flagged.
    """

    window: int = 8
    divergence_rise: float = 0.25
    oscillation_flip_rate: float = 0.6
    oscillation_amplitude: float = 0.2

    def __post_init__(self) -> None:
        if self.window < 4:
            raise ValueError(f"window must be >= 4, got {self.window}")


class HealthMonitor:
    """Watches loss streams and gradient norms; verdicts and halt policy.

    One monitor per training run.  Layers call :meth:`check_finite` on
    every scalar loss, :meth:`observe_loss` once per epoch per stream, and
    :meth:`observe_gradient_norm` when telemetry is enabled; the loop
    checks :attr:`should_halt` after each call and stops when the policy
    says so.
    """

    def __init__(
        self, policy: str = "warn", config: Optional[HealthConfig] = None
    ) -> None:
        if policy not in HEALTH_POLICIES:
            raise ValueError(
                f"on_divergence policy must be one of {HEALTH_POLICIES}, got {policy!r}"
            )
        self.policy = policy
        self.config = config if config is not None else HealthConfig()
        self.issues: List[Dict[str, object]] = []
        self.should_halt = False
        self._windows: Dict[str, Deque[float]] = {}
        self._reported: set = set()
        self._finalized = False

    # ------------------------------------------------------------------
    # Issue plumbing
    # ------------------------------------------------------------------
    def _flag(self, kind: str, stream: str, **fields: object) -> None:
        issue = {"kind": kind, "stream": stream, **fields}
        self.issues.append(issue)
        recorder = get_recorder()
        key = (kind, stream)
        first = key not in self._reported
        self._reported.add(key)
        if recorder.enabled:
            recorder.inc("health.issues")
            if first:  # one event per (kind, stream); the counter keeps totals
                recorder.emit(f"health.{kind}", stream=stream, **fields)
        if self.policy == "halt" and not self.should_halt:
            self.should_halt = True
            if recorder.enabled:
                recorder.emit("health.halt", stream=stream, kind=kind, **fields)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check_finite(self, stream: str, value: float, **fields: object) -> bool:
        """NaN/Inf check on a scalar loss; returns True when healthy."""
        if math.isfinite(value):
            return True
        self._flag("nan", stream, value=value, **fields)
        return False

    def observe_gradient_norm(self, source: str, value: float) -> bool:
        """Gauge a module's gradient norm; flags non-finite norms."""
        recorder = get_recorder()
        if recorder.enabled:
            recorder.set_gauge(f"health.grad_norm.{source}", value)
        if math.isfinite(value):
            return True
        self._flag("nan", f"grad.{source}", value=value)
        return False

    def observe_loss(self, stream: str, value: float) -> Optional[str]:
        """Feed one (usually per-epoch) loss; returns the issue kind if any."""
        if not self.check_finite(stream, value):
            return "nan"
        window = self._windows.get(stream)
        if window is None:
            window = deque(maxlen=self.config.window)
            self._windows[stream] = window
        window.append(float(value))
        if len(window) < self.config.window:
            return None
        kind = self._classify(stream, list(window))
        if kind is not None:
            # Restart accumulation so one pathology is not re-flagged on
            # every subsequent observation while the window still overlaps.
            window.clear()
        return kind

    def _classify(self, stream: str, values: List[float]) -> Optional[str]:
        n = len(values)
        mean = sum(values) / n
        level = abs(mean) + 1e-12
        # Least-squares slope over indices 0..n-1.
        idx_mean = (n - 1) / 2.0
        cov = sum((i - idx_mean) * (v - mean) for i, v in enumerate(values))
        var = sum((i - idx_mean) ** 2 for i in range(n))
        slope = cov / var
        rise = slope * (n - 1) / level  # trend-line climb across the window
        if rise > self.config.divergence_rise:
            self._flag("divergence", stream, rise=rise, window=n)
            return "divergence"
        diffs = [b - a for a, b in zip(values, values[1:])]
        flips = sum(
            1 for a, b in zip(diffs, diffs[1:]) if a * b < 0.0
        )
        flip_rate = flips / max(len(diffs) - 1, 1)
        amplitude = sum(abs(d) for d in diffs) / len(diffs) / level
        if (
            flip_rate >= self.config.oscillation_flip_rate
            and amplitude >= self.config.oscillation_amplitude
        ):
            self._flag(
                "oscillation", stream, flip_rate=flip_rate, amplitude=amplitude, window=n
            )
            return "oscillation"
        return None

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------
    @property
    def verdict(self) -> str:
        """Worst issue kind seen so far (``"healthy"`` when none)."""
        kinds = {issue["kind"] for issue in self.issues}
        for kind in _SEVERITY:
            if kind in kinds:
                return kind
        return "healthy"

    def finalize(self) -> str:
        """Emit the end-of-run ``health.verdict`` event; returns the verdict."""
        verdict = self.verdict
        if not self._finalized:
            self._finalized = True
            recorder = get_recorder()
            if recorder.enabled:
                counts: Dict[str, int] = {}
                for issue in self.issues:
                    kind = str(issue["kind"])
                    counts[kind] = counts.get(kind, 0) + 1
                recorder.emit(
                    "health.verdict",
                    verdict=verdict,
                    issues=len(self.issues),
                    halted=self.should_halt,
                    **{f"n_{kind}": count for kind, count in sorted(counts.items())},
                )
        return verdict
