"""Op-level profiling for the autodiff engine.

The span timers in :mod:`repro.obs.recorder` answer *which phase* of a run
is slow (an epoch, an SSE evaluation, a bench case); this module answers
*where time goes inside the autodiff engine*: per elementary op, how many
times it ran, how long its forward and backward passes took, and how large
its biggest output was.

The hook lives in ``repro.tensor``: every op in ``repro.tensor.ops`` is
wrapped so that, when the process-wide :class:`OpProfiler` is enabled, the
op's forward wall-time and output bytes are folded into a per-op-name
aggregate, and ``Tensor.backward`` times each node's backward closure under
the same name.  When the profiler is disabled (the default), each op pays
exactly one attribute read — the same overhead contract the recorder's
``enabled`` guard makes (``docs/observability.md``).

Typical use::

    from repro.obs import profiling, recording, write_json_trace

    with recording() as rec, profiling() as prof:
        DIM(config).train(model, dataset, rng)
    write_json_trace(rec, "trace.json")     # includes profiler.* events
    print(format_profile_table(prof.snapshot()))

``repro profile trace.json`` renders the same table from a written trace
and ``--flame out.json`` exports the aggregates as a nested flame-graph
JSON (``{"name", "value", "children"}`` nodes).

Pure standard library, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .recorder import get_recorder

__all__ = [
    "OpStats",
    "OpProfiler",
    "get_op_profiler",
    "profiling",
    "profile_from_trace",
    "flame_from_profile",
    "format_profile_table",
]


class OpStats:
    """Aggregate for one op name: call counts, wall-time, peak output bytes."""

    __slots__ = (
        "name",
        "count",
        "forward_seconds",
        "backward_count",
        "backward_seconds",
        "peak_bytes",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.forward_seconds = 0.0
        self.backward_count = 0
        self.backward_seconds = 0.0
        self.peak_bytes = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "forward_seconds": self.forward_seconds,
            "backward_count": self.backward_count,
            "backward_seconds": self.backward_seconds,
            "total_seconds": self.total_seconds,
            "peak_bytes": self.peak_bytes,
        }


class OpProfiler:
    """Process-wide per-op aggregates behind a single ``enabled`` flag.

    Updates are plain attribute arithmetic on per-name :class:`OpStats`
    (atomic enough under the GIL, like the metric registry); only stats
    *creation* takes the lock.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._stats: Dict[str, OpStats] = {}
        self._lock = threading.Lock()

    def _get(self, name: str) -> OpStats:
        stats = self._stats.get(name)
        if stats is None:
            with self._lock:
                stats = self._stats.setdefault(name, OpStats(name))
        return stats

    def record_forward(self, name: str, seconds: float, out_bytes: int) -> None:
        stats = self._get(name)
        stats.count += 1
        stats.forward_seconds += seconds
        if out_bytes > stats.peak_bytes:
            stats.peak_bytes = out_bytes

    def record_backward(self, name: str, seconds: float) -> None:
        stats = self._get(name)
        stats.backward_count += 1
        stats.backward_seconds += seconds

    def reset(self) -> None:
        with self._lock:
            self._stats = {}

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-op aggregates, sorted by name."""
        with self._lock:
            return {name: s.to_dict() for name, s in sorted(self._stats.items())}

    def totals(self) -> Dict[str, float]:
        snap = self.snapshot()
        return {
            "forward_seconds": sum(s["forward_seconds"] for s in snap.values()),
            "backward_seconds": sum(s["backward_seconds"] for s in snap.values()),
            "ops": float(len(snap)),
        }


_PROFILER = OpProfiler()


def get_op_profiler() -> OpProfiler:
    """The process-wide op profiler (disabled unless :func:`profiling` is active)."""
    return _PROFILER


def _export_to_recorder(profiler: OpProfiler) -> None:
    """Fold the profiler's aggregates into the active recorder as events."""
    recorder = get_recorder()
    if not recorder.enabled:
        return
    snapshot = profiler.snapshot()
    total_forward = 0.0
    total_backward = 0.0
    for name, stats in snapshot.items():
        total_forward += stats["forward_seconds"]
        total_backward += stats["backward_seconds"]
        recorder.emit(
            "profiler.op",
            op=name,
            count=stats["count"],
            forward_seconds=stats["forward_seconds"],
            backward_count=stats["backward_count"],
            backward_seconds=stats["backward_seconds"],
            peak_bytes=stats["peak_bytes"],
        )
    recorder.emit(
        "profiler.summary",
        ops=len(snapshot),
        forward_seconds=total_forward,
        backward_seconds=total_backward,
        total_seconds=total_forward + total_backward,
    )


@contextmanager
def profiling(reset: bool = True) -> Iterator[OpProfiler]:
    """Enable op profiling for the block and yield the profiler.

    On exit the profiler is disabled and — if a recorder is attached and
    enabled — its aggregates are exported as one ``profiler.op`` event per
    op plus a ``profiler.summary`` event, so the written trace carries the
    profile.  ``reset=False`` accumulates across consecutive blocks.
    """
    profiler = get_op_profiler()
    if reset:
        profiler.reset()
    previous = profiler.enabled
    profiler.enabled = True
    try:
        yield profiler
    finally:
        profiler.enabled = previous
        _export_to_recorder(profiler)


# ----------------------------------------------------------------------
# Trace-side helpers (used by the `repro profile` CLI)
# ----------------------------------------------------------------------
def profile_from_trace(trace: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """Rebuild the per-op aggregates from a trace's ``profiler.op`` events.

    Raises ``ValueError`` when the trace holds no profiler events (it was
    recorded without :func:`profiling` / ``--profile``).
    """
    ops: Dict[str, Dict[str, object]] = {}
    for event in trace.get("events", []):
        if event.get("name") != "profiler.op":
            continue
        fields = event["fields"]
        name = str(fields["op"])
        stats = ops.setdefault(
            name,
            {
                "count": 0,
                "forward_seconds": 0.0,
                "backward_count": 0,
                "backward_seconds": 0.0,
                "total_seconds": 0.0,
                "peak_bytes": 0,
            },
        )
        stats["count"] += int(fields.get("count", 0))
        stats["forward_seconds"] += float(fields.get("forward_seconds", 0.0))
        stats["backward_count"] += int(fields.get("backward_count", 0))
        stats["backward_seconds"] += float(fields.get("backward_seconds", 0.0))
        stats["total_seconds"] = stats["forward_seconds"] + stats["backward_seconds"]
        stats["peak_bytes"] = max(stats["peak_bytes"], int(fields.get("peak_bytes", 0)))
    if not ops:
        raise ValueError(
            "trace has no profiler.op events; record it with "
            "repro.obs.profiling() or the CLI --profile flag"
        )
    return ops


def flame_from_profile(profile: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Nested flame-graph JSON (``name``/``value``/``children`` nodes).

    The root spans the whole profiled autodiff time; each op is a child
    split into its forward and backward phases, so any flame-graph viewer
    that takes the d3-flame-graph format renders it directly.
    """
    children: List[Dict[str, object]] = []
    total = 0.0
    for name, stats in sorted(
        profile.items(), key=lambda kv: -float(kv[1]["total_seconds"])
    ):
        op_total = float(stats["total_seconds"])
        total += op_total
        phases: List[Dict[str, object]] = [
            {
                "name": "forward",
                "value": float(stats["forward_seconds"]),
                "count": int(stats["count"]),
            }
        ]
        if stats["backward_count"]:
            phases.append(
                {
                    "name": "backward",
                    "value": float(stats["backward_seconds"]),
                    "count": int(stats["backward_count"]),
                }
            )
        children.append(
            {
                "name": name,
                "value": op_total,
                "peak_bytes": int(stats["peak_bytes"]),
                "children": phases,
            }
        )
    return {"name": "autodiff", "value": total, "children": children}


def format_profile_table(
    profile: Dict[str, Dict[str, object]], top: Optional[int] = None
) -> str:
    """Top-k table of ops by total wall-time (forward + backward)."""
    rows = sorted(profile.items(), key=lambda kv: -float(kv[1]["total_seconds"]))
    total = sum(float(s["total_seconds"]) for _, s in rows) or 1.0
    if top is not None:
        rows = rows[:top]
    lines = [
        f"{'op':<14} {'calls':>8} {'fwd s':>10} {'bwd s':>10} "
        f"{'total s':>10} {'%':>6} {'peak MB':>9}"
    ]
    for name, stats in rows:
        lines.append(
            f"{name:<14} {int(stats['count']):>8} "
            f"{float(stats['forward_seconds']):>10.4f} "
            f"{float(stats['backward_seconds']):>10.4f} "
            f"{float(stats['total_seconds']):>10.4f} "
            f"{100.0 * float(stats['total_seconds']) / total:>5.1f}% "
            f"{int(stats['peak_bytes']) / 1e6:>9.2f}"
        )
    return "\n".join(lines)
