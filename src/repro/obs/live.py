"""Live telemetry plane: streaming quantiles, sliding windows, exposition.

The recorder layer aggregates for *post-hoc* export; this module serves
the *while-it-runs* questions — "what is p95 latency right now?" — from
the same event stream:

:class:`QuantileDigest`
    A deterministic, mergeable streaming quantile sketch: a bounded list
    of weighted centroids compacted by equal-weight re-binning (no RNG, so
    two ingests of the same stream summarize identically).  Memory is
    O(``max_centroids``) regardless of stream length.
:class:`SlidingWindow`
    Time-bucketed digests over the last ``window_seconds``; a snapshot
    merges the live buckets into one digest, so quantiles age out as the
    window slides.
:class:`LiveAggregator`
    Feeds events into per-metric sliding windows — ``serve.request``
    latencies and every traced span duration — and renders a live table.
:func:`prometheus_exposition`
    Text exposition (version 0.0.4 format) of a metrics snapshot:
    counters, gauges, and histograms as summaries with quantile labels.
    Served by the ``metrics`` op on the JSONL transport and by
    ``repro obs export --format prom``.
:class:`StreamingRecorder` / :func:`tail_events`
    The wire between them: a recorder that tees every event to a JSONL
    file as it happens, and a reader that follows that file as it grows
    (``repro serve run --live`` + ``repro obs tail --follow``).

Pure standard library, same layering rule as the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from .export import _jsonify
from .recorder import Event, InMemoryRecorder

__all__ = [
    "QuantileDigest",
    "SlidingWindow",
    "LiveAggregator",
    "prometheus_exposition",
    "StreamingRecorder",
    "tail_events",
]


class QuantileDigest:
    """Deterministic mergeable quantile sketch over weighted centroids.

    Values are held exactly until ``max_centroids`` is exceeded, then
    compacted into at most ``max_centroids // 2`` equal-weight bins (the
    stream minimum and maximum survive compaction verbatim, so extreme
    quantiles stay exact).  Compaction is purely rank-based — no sampling,
    no RNG — so the sketch is reproducible and order-robust.
    """

    __slots__ = ("max_centroids", "count", "total", "min", "max", "_centroids")

    def __init__(self, max_centroids: int = 128) -> None:
        if max_centroids < 4:
            raise ValueError(f"max_centroids must be >= 4, got {max_centroids}")
        self.max_centroids = max_centroids
        self.count = 0.0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._centroids: List[List[float]] = []  # sorted [value, weight]

    def add(self, value: float, weight: float = 1.0) -> None:
        value = float(value)
        if not math.isfinite(value) or weight <= 0:
            return
        self.count += weight
        self.total += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        lo, hi = 0, len(self._centroids)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._centroids[mid][0] < value:
                lo = mid + 1
            else:
                hi = mid
        self._centroids.insert(lo, [value, float(weight)])
        if len(self._centroids) > self.max_centroids:
            self._compress()

    def merge(self, other: "QuantileDigest") -> None:
        """Fold another digest's centroids into this one."""
        for value, weight in other._centroids:
            self.add(value, weight)

    def _compress(self) -> None:
        bins = max(2, self.max_centroids // 2)
        per_bin = self.count / bins
        merged: List[List[float]] = []
        acc_value, acc_weight = 0.0, 0.0
        for value, weight in self._centroids:
            acc_value += value * weight
            acc_weight += weight
            if acc_weight >= per_bin:
                merged.append([acc_value / acc_weight, acc_weight])
                acc_value, acc_weight = 0.0, 0.0
        if acc_weight > 0:
            merged.append([acc_value / acc_weight, acc_weight])
        self._centroids = merged

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._centroids:
            return None
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cum = 0.0
        prev_value, prev_center = self.min, 0.0
        for value, weight in self._centroids:
            center = cum + weight / 2.0
            if center >= target:
                if center == prev_center:
                    return value
                frac = (target - prev_center) / (center - prev_center)
                return prev_value + frac * (value - prev_value)
            cum += weight
            prev_value, prev_center = value, center
        return self.max

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class SlidingWindow:
    """Per-bucket digests covering the trailing ``window_seconds``.

    Observations land in ``buckets`` fixed-width time buckets; a snapshot
    merges only the buckets still inside the window behind ``now``, so old
    observations age out bucket by bucket.  Stale buckets are pruned on
    write, keeping memory at O(``buckets`` × digest).
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        buckets: int = 12,
        max_centroids: int = 128,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.window_seconds = float(window_seconds)
        self.buckets = buckets
        self.max_centroids = max_centroids
        self._span = self.window_seconds / buckets
        self._digests: Dict[int, QuantileDigest] = {}
        self.last_t: Optional[float] = None

    def _bucket(self, t: float) -> int:
        return int(math.floor(t / self._span))

    def observe(self, t: float, value: float) -> None:
        index = self._bucket(t)
        digest = self._digests.get(index)
        if digest is None:
            digest = self._digests[index] = QuantileDigest(self.max_centroids)
            oldest = index - self.buckets
            for stale in [i for i in self._digests if i <= oldest]:
                del self._digests[stale]
        digest.add(value)
        self.last_t = t if self.last_t is None else max(self.last_t, t)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Optional[float]]:
        """Merged digest summary over buckets inside ``[now - window, now]``.

        ``now`` defaults to the newest observation time, which makes
        offline replays (``repro obs tail`` without ``--follow``) summarize
        the end-of-file window rather than an empty one.
        """
        if now is None:
            now = self.last_t if self.last_t is not None else 0.0
        oldest = self._bucket(now) - self.buckets
        merged = QuantileDigest(self.max_centroids)
        for index, digest in sorted(self._digests.items()):
            if index > oldest:
                merged.merge(digest)
        out = merged.summary()
        out["rate_per_second"] = (
            merged.count / self.window_seconds if merged.count else 0.0
        )
        out["window_seconds"] = self.window_seconds
        return out


class LiveAggregator:
    """Routes raw events into sliding-window quantile digests.

    Two event families feed it: ``serve.request`` (its
    ``latency_seconds`` field becomes the ``serve.latency_seconds``
    series) and ``span`` (each span name becomes a
    ``span.<name>.seconds`` series).  Everything else is counted but not
    windowed.
    """

    def __init__(self, window_seconds: float = 60.0, buckets: int = 12) -> None:
        self.window_seconds = float(window_seconds)
        self.buckets = buckets
        self.windows: Dict[str, SlidingWindow] = {}
        self.n_events = 0
        self.last_t: Optional[float] = None

    def _window(self, name: str) -> SlidingWindow:
        window = self.windows.get(name)
        if window is None:
            window = self.windows[name] = SlidingWindow(
                self.window_seconds, buckets=self.buckets
            )
        return window

    def ingest(self, event: Dict[str, object]) -> None:
        """Feed one event dict (``{"name", "t", "fields"}``)."""
        self.n_events += 1
        t = float(event.get("t", 0.0))
        self.last_t = t if self.last_t is None else max(self.last_t, t)
        name = event.get("name")
        fields = event.get("fields", {}) or {}
        if name == "span" and "seconds" in fields:
            self._window(f"span.{fields.get('span')}.seconds").observe(
                t, float(fields["seconds"])
            )
        elif name == "serve.request" and "latency_seconds" in fields:
            self._window("serve.latency_seconds").observe(
                t, float(fields["latency_seconds"])
            )

    def render(self, now: Optional[float] = None) -> str:
        """Human table: one row per windowed series with count/rate/quantiles."""
        if now is None:
            now = self.last_t
        header = (
            f"{self.n_events} events; {len(self.windows)} live series "
            f"(window {self.window_seconds:g}s)"
        )
        if not self.windows:
            return header
        lines = [
            header,
            f"  {'series':<40} {'n':>6} {'rate/s':>8} {'mean':>10} "
            f"{'p50':>10} {'p95':>10} {'p99':>10}",
        ]
        for name in sorted(self.windows):
            snap = self.windows[name].snapshot(now=now)
            cells = [
                f"{snap[q] * 1000.0:9.3f}m" if snap[q] is not None else f"{'-':>10}"
                for q in ("mean", "p50", "p95", "p99")
            ]
            lines.append(
                f"  {name:<40} {int(snap['count'] or 0):>6} "
                f"{snap['rate_per_second']:>8.2f} " + " ".join(cells)
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized.startswith("repro_"):
        sanitized = f"repro_{sanitized}"
    return sanitized


def _prom_value(value: float) -> str:
    return repr(float(value))


def prometheus_exposition(metrics: Union[Dict[str, object], object]) -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    Accepts a ``MetricsRegistry.snapshot()`` dict, a full trace dict (its
    ``"metrics"`` key is used), or a ``MetricsRegistry``.  Counters map to
    ``counter`` samples, gauges to ``gauge`` samples (unset gauges are
    skipped), histograms to ``summary`` families with ``quantile`` labels
    plus ``_sum`` / ``_count`` samples.  Metric names are sanitized to the
    Prometheus charset and prefixed ``repro_``.
    """
    snapshot_method = getattr(metrics, "snapshot", None)
    if callable(snapshot_method):
        snapshot = snapshot_method()
    elif isinstance(metrics, dict):
        snapshot = metrics.get("metrics", metrics) if "metrics" in metrics else metrics
    else:
        raise TypeError(f"expected snapshot dict or registry, got {type(metrics)!r}")
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        if value is None:
            continue
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for label, key in (("0.5", "p50"), ("0.9", "p90"), ("0.95", "p95"), ("0.99", "p99")):
            quantile = summary.get(key)
            if quantile is not None:
                lines.append(
                    f'{prom}{{quantile="{label}"}} {_prom_value(quantile)}'
                )
        lines.append(f"{prom}_sum {_prom_value(summary.get('total', 0.0))}")
        lines.append(f"{prom}_count {_prom_value(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The live wire: JSONL event tee + follower
# ----------------------------------------------------------------------
class StreamingRecorder(InMemoryRecorder):
    """An :class:`InMemoryRecorder` that also tees events to a JSONL file.

    Every event is appended (and flushed) to ``path`` as one JSON line the
    moment it is recorded — including events absorbed from fork workers —
    so ``repro obs tail --follow`` sees telemetry while the run is still
    in flight.  Metric aggregates stay in memory only; the final trace is
    exported exactly as with the base class.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_events: int = 100_000,
        clock_anchor: Optional[float] = None,
    ) -> None:
        super().__init__(max_events=max_events, clock_anchor=clock_anchor)
        self.path = Path(path)
        self._stream = open(self.path, "a", encoding="utf-8")
        self._stream_lock = threading.Lock()

    def _record(self, event: Event) -> None:
        super()._record(event)
        line = json.dumps(event.to_dict(), default=_jsonify)
        with self._stream_lock:
            if not self._stream.closed:
                self._stream.write(line + "\n")
                self._stream.flush()

    def close(self) -> None:
        with self._stream_lock:
            if not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "StreamingRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def tail_events(
    path: Union[str, Path],
    follow: bool = False,
    poll_seconds: float = 0.2,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, object]]:
    """Yield event dicts from a JSONL event file, optionally as it grows.

    With ``follow=False`` the generator drains the file and returns; with
    ``follow=True`` it keeps polling for appended lines until
    ``should_stop()`` (when given) returns true.  Partial trailing lines —
    a writer mid-append — are buffered until their newline arrives, and
    non-JSON lines are skipped rather than raised.
    """
    with open(path, "r", encoding="utf-8") as stream:
        partial = ""
        while True:
            chunk = stream.readline()
            if chunk:
                partial += chunk
                if not partial.endswith("\n"):
                    continue
                line, partial = partial.strip(), ""
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict) and "name" in event:
                    yield event
                continue
            if not follow or (should_stop is not None and should_stop()):
                return
            time.sleep(poll_seconds)
