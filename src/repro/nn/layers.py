"""Standard layers: linear maps, activations, dropout, sequential stacks."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..tensor import Tensor, ops
from . import init as initializers
from .module import Module, ModuleList, Parameter

__all__ = [
    "Linear",
    "Sequential",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Identity",
    "Dropout",
    "mlp",
]


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output width.
    bias:
        Include the additive bias term (default true).
    init:
        Weight initialiser from :mod:`repro.nn.init` (default Xavier uniform,
        matching the GAIN reference implementation).
    rng:
        NumPy generator used for initialisation; pass one for reproducibility.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: Callable[..., np.ndarray] = initializers.xavier_uniform,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init(in_features, out_features, rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Elementwise rectifier module."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class LeakyReLU(Module):
    """Rectifier with configurable negative slope."""

    def __init__(self, slope: float = 0.01) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.slope)


class Tanh(Module):
    """Hyperbolic-tangent activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sigmoid(Module):
    """Logistic-sigmoid activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Softplus(Module):
    """Softplus activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.softplus(x)


class Identity(Module):
    """No-op module (used as the default output activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = ops.dropout_mask(x.shape, self.rate, self.rng)
        return x * Tensor(mask)


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)


_ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
    "identity": Identity,
}


def mlp(
    sizes: Sequence[int],
    activation: str = "relu",
    output_activation: str = "identity",
    dropout: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a fully-connected stack, e.g. ``mlp([d, h, d], "relu", "sigmoid")``.

    ``dropout`` (if nonzero) is inserted after every hidden activation, which
    matches the §VI "dropout rate 0.5" setting of the paper's deep baselines.
    """
    if len(sizes) < 2:
        raise ValueError("mlp needs at least an input and an output size")
    for name in (activation, output_activation):
        if name not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; options: {sorted(_ACTIVATIONS)}")
    if rng is None:
        rng = np.random.default_rng()
    layers: list[Module] = []
    for i in range(len(sizes) - 1):
        layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
        is_last = i == len(sizes) - 2
        name = output_activation if is_last else activation
        layers.append(_ACTIVATIONS[name]())
        if dropout > 0.0 and not is_last:
            layers.append(Dropout(dropout, rng=rng))
    return Sequential(*layers)
