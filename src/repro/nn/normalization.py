"""Normalisation layers: LayerNorm and BatchNorm1d.

Not used by the paper's reference architectures (GAIN/GINN are plain MLPs),
but custom :class:`~repro.models.base.GenerativeImputer` implementations
plugged into DIM/SSE routinely want them, so the substrate provides both
with full gradient support.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from .module import Module, Parameter

__all__ = ["LayerNorm", "BatchNorm1d"]


class LayerNorm(Module):
    """Per-row normalisation over the feature axis with learnable affine."""

    def __init__(self, n_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.n_features = n_features
        self.eps = eps
        self.gain = Parameter(np.ones(n_features), name="gain")
        self.bias = Parameter(np.zeros(n_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / ops.sqrt(variance + self.eps)
        return normalized * self.gain + self.bias


class BatchNorm1d(Module):
    """Batch normalisation over axis 0 with running statistics.

    Training mode normalises with batch statistics and updates the running
    mean/variance; eval mode uses the running values (so single rows can be
    reconstructed deterministically).
    """

    def __init__(self, n_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.n_features = n_features
        self.eps = eps
        self.momentum = momentum
        self.gain = Parameter(np.ones(n_features), name="gain")
        self.bias = Parameter(np.zeros(n_features), name="bias")
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.mean(axis=0, keepdims=True)
            centered = x - batch_mean
            batch_var = (centered * centered).mean(axis=0, keepdims=True)
            # Update running statistics outside the tape.
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean
                + self.momentum * batch_mean.data.reshape(-1)
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var
                + self.momentum * batch_var.data.reshape(-1)
            )
            normalized = centered / ops.sqrt(batch_var + self.eps)
        else:
            normalized = (x - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps)
            )
        return normalized * self.gain + self.bias
