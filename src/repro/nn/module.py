"""Module system: parameter containers with recursive discovery.

The design mirrors the familiar ``torch.nn.Module`` contract at the scale this
project needs: attribute assignment registers parameters and submodules, and
``parameters()`` walks the tree in a deterministic order.  Determinism matters
because the SSE module flattens the parameter tree into a single vector
(:func:`flatten_parameters`) and must be able to restore it bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "ModuleList",
    "flatten_parameters",
    "load_flat_parameters",
    "flatten_gradients",
]


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural building blocks.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of submodules (registered in order)."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers don't forward
        raise RuntimeError("ModuleList is a container and cannot be called")


# ----------------------------------------------------------------------
# Flat parameter-vector utilities (used by the SSE module)
# ----------------------------------------------------------------------
def flatten_parameters(module: Module) -> np.ndarray:
    """Concatenate every parameter into one flat vector (copy)."""
    params = module.parameters()
    if not params:
        return np.zeros(0)
    return np.concatenate([p.data.reshape(-1) for p in params])


def load_flat_parameters(module: Module, flat: np.ndarray) -> None:
    """Write a flat vector produced by :func:`flatten_parameters` back in."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = module.num_parameters()
    if flat.size != expected:
        raise ValueError(f"expected {expected} values, got {flat.size}")
    offset = 0
    for param in module.parameters():
        block = flat[offset : offset + param.size]
        param.data[...] = block.reshape(param.shape)
        offset += param.size


def flatten_gradients(module: Module) -> np.ndarray:
    """Concatenate parameter gradients (zeros where no grad accumulated)."""
    chunks = []
    for param in module.parameters():
        grad = param.grad if param.grad is not None else np.zeros_like(param.data)
        chunks.append(np.asarray(grad).reshape(-1))
    if not chunks:
        return np.zeros(0)
    return np.concatenate(chunks)
