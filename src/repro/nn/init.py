"""Weight initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_normal", "zeros"]


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation, the GAIN default."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) initialisation, suited to ReLU stacks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (biases)."""
    del rng
    return np.zeros((fan_in, fan_out))
