"""Common loss functions used by the imputation models."""

from __future__ import annotations

from ..tensor import Tensor

__all__ = ["mse_loss", "masked_mse_loss", "bce_loss", "masked_bce_loss"]

_EPS = 1e-8


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = prediction - target
    return (diff * diff).mean()


def masked_mse_loss(prediction: Tensor, target: Tensor, mask) -> Tensor:
    """MSE restricted to entries where ``mask`` is 1.

    Normalised by the number of unmasked entries, not the full matrix size,
    so the loss scale is invariant to the missing rate.
    """
    mask_t = Tensor(mask)
    diff = (prediction - target) * mask_t
    total = (diff * diff).sum()
    count = float(mask_t.data.sum())
    return total / max(count, 1.0)


def bce_loss(probability: Tensor, target: Tensor) -> Tensor:
    """Binary cross-entropy for probabilities already in (0, 1)."""
    p = probability.clip(_EPS, 1.0 - _EPS)
    return -(target * p.log() + (1.0 - target) * (1.0 - p).log()).mean()


def masked_bce_loss(probability: Tensor, target: Tensor, mask) -> Tensor:
    """BCE restricted to entries where ``mask`` is 1 (GAIN's hint trick)."""
    mask_t = Tensor(mask)
    p = probability.clip(_EPS, 1.0 - _EPS)
    point = -(target * p.log() + (1.0 - target) * (1.0 - p).log()) * mask_t
    count = float(mask_t.data.sum())
    return point.sum() / max(count, 1.0)
