"""Neural-network building blocks on top of :mod:`repro.tensor`."""

from . import init
from .layers import (
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    mlp,
)
from .normalization import BatchNorm1d, LayerNorm
from .losses import bce_loss, masked_bce_loss, masked_mse_loss, mse_loss
from .module import (
    Module,
    ModuleList,
    Parameter,
    flatten_gradients,
    flatten_parameters,
    load_flat_parameters,
)

__all__ = [
    "init",
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Sequential",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Identity",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "mlp",
    "mse_loss",
    "masked_mse_loss",
    "bce_loss",
    "masked_bce_loss",
    "flatten_parameters",
    "load_flat_parameters",
    "flatten_gradients",
]
