"""Imputation-as-a-service: model registry + long-lived serving layer.

The paper's whole point (DIM + SSE) is making GAN imputers cheap enough to
train that imputation can run at production scale — which is wasted if
every impute request retrains from scratch.  This package closes the loop
(contract: ``docs/serving.md``):

* :class:`ModelRegistry` persists trained imputers to disk keyed by
  dataset-schema fingerprint + config hash, with a versioned manifest and
  save→load→impute round-trip validation (``repro.serve.registry``).
* :class:`ImputationServer` loads registry entries once into a long-lived
  process and serves impute requests — single rows and bulk CSVs — through
  a request queue with micro-batching/coalescing on a
  :class:`repro.parallel.ExecutionContext` (``repro.serve.server``).
* :func:`serve_jsonl` is the ``repro serve run`` transport: JSONL requests
  in, JSONL responses out, graceful drain-then-exit shutdown.

The serving bench (rows/sec, p50/p99 latency under concurrent load) lives
in :mod:`repro.bench.serving` and gates CI through the ``BENCH_serving.json``
baseline exactly like RMSE does.
"""

from .registry import (
    LoadedModel,
    ModelRegistry,
    RegistryEntry,
    RegistryError,
    config_id,
    registry_key,
    schema_fingerprint,
    schema_of,
)
from .server import ImputationServer, ImputeResponse, ServeConfig, serve_jsonl

__all__ = [
    "RegistryError",
    "RegistryEntry",
    "LoadedModel",
    "ModelRegistry",
    "schema_of",
    "schema_fingerprint",
    "config_id",
    "registry_key",
    "ServeConfig",
    "ImputeResponse",
    "ImputationServer",
    "serve_jsonl",
]
