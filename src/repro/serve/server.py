"""Long-lived imputation serving: request queue, micro-batching, JSONL loop.

:class:`ImputationServer` is the in-process serving core.  Registry entries
are loaded once (and LRU-cached up to ``ServeConfig.max_models``); callers
submit impute requests — single rows or whole matrices — and get
:class:`concurrent.futures.Future` handles back.  A single dispatcher
thread drains the queue, *coalesces* adjacent requests for the same
registry key into one model invocation (bounded by
``max_batch_requests`` / ``max_batch_rows`` / ``batch_window_seconds``),
and executes the per-key groups of each batch through a
:class:`repro.parallel.ExecutionContext` (serial by default — forking from
the dispatcher thread is opt-in via an explicit context).

Serving semantics (contract: ``docs/serving.md``):

* Observed cells pass through **bit-exactly** — the raw request value is
  restored after any normalise/denormalise round trip.
* Missing cells are filled by the entry's model on the entry's normaliser
  scale; stochastic models draw their noise per *service batch*, so a
  row's imputed values are deterministic given the batch composition but
  may differ across batch compositions.
* A failed request (unknown key, schema mismatch, wrong width) resolves
  its future with an error response; it never tears down the server.

Telemetry (all recorder-guarded): ``serve.request`` and ``serve.batch``
events, the ``serve.queue_depth`` gauge, ``serve.requests`` /
``serve.batches`` / ``serve.errors`` / ``serve.evictions`` counters, and
``serve.latency_seconds`` / ``serve.coalesced`` histograms.  Every request
additionally carries a :class:`~repro.obs.tracing.TraceContext` from
submit to reply: the lifecycle is emitted as a ``serve.request`` root span
with ``serve.queue_wait`` / ``serve.coalesce`` / ``serve.execute`` /
``serve.reply`` children that tile the request's wall-clock, plus a
``serve.model`` span from inside the worker (fork children included —
their spans are clock-anchored and absorbed with the parent trace_id), so
``repro obs waterfall <trace_id>`` reconstructs the end-to-end breakdown.

:func:`serve_jsonl` is the transport the ``repro serve run`` CLI speaks:
line-delimited JSON requests in, line-delimited JSON responses out
(matched by ``id``, not order), with graceful drain-then-exit shutdown on
EOF or an explicit ``{"op": "shutdown"}`` request.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO, Union

import numpy as np

from ..data.batches import BatchPlan
from ..data.dataset import IncompleteDataset
from ..data.io import read_csv, write_csv
from ..obs import get_recorder
from ..obs.live import prometheus_exposition
from ..obs.tracing import TraceContext, record_span, start_trace
from ..parallel import ExecutionContext
from .registry import LoadedModel, ModelRegistry, RegistryError, schema_fingerprint

__all__ = [
    "ServeConfig",
    "ImputeResponse",
    "ImputationServer",
    "serve_jsonl",
]

_SHUTDOWN = object()  # queue sentinel


@dataclass
class ServeConfig:
    """Knobs of the serving loop.

    ``batch_window_seconds`` is how long the dispatcher waits for more
    requests to coalesce after the first arrives; ``max_batch_requests`` /
    ``max_batch_rows`` cap one dispatch.  ``max_models`` bounds the
    loaded-entry LRU cache (eviction emits ``serve.evict``); evicted
    entries are transparently reloaded from disk on next use.
    """

    max_batch_requests: int = 64
    max_batch_rows: int = 4096
    batch_window_seconds: float = 0.005
    max_models: int = 8

    def __post_init__(self) -> None:
        if self.max_batch_requests < 1:
            raise ValueError(f"max_batch_requests must be >= 1, got {self.max_batch_requests}")
        if self.max_batch_rows < 1:
            raise ValueError(f"max_batch_rows must be >= 1, got {self.max_batch_rows}")
        if self.batch_window_seconds < 0:
            raise ValueError(f"batch_window_seconds must be >= 0, got {self.batch_window_seconds}")
        if self.max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {self.max_models}")


@dataclass
class ImputeResponse:
    """The resolution of one impute request."""

    id: str
    key: str
    values: Optional[np.ndarray]  # imputed rows (None on error)
    error: Optional[str] = None
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    coalesced: int = 1  # requests served by the same model invocation

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Pending:
    """A queued request: payload plus its future and timing bookkeeping.

    ``ctx`` is the request's root :class:`TraceContext` (``None`` with a
    disabled recorder) — it is carried explicitly because the request
    crosses from the submitting thread to the dispatcher thread, where
    thread-local ambient context cannot follow.  ``dequeued`` is stamped by
    the dispatcher when the request leaves the queue, splitting queue-wait
    from coalescing time in the request's span waterfall.
    """

    id: str
    key: str
    values: np.ndarray
    future: "Future[ImputeResponse]"
    submitted: float = field(default_factory=time.perf_counter)
    ctx: Optional[TraceContext] = None
    dequeued: float = 0.0


class ImputationServer:
    """Loads registry entries once and serves impute requests from a queue."""

    def __init__(
        self,
        registry: Union[ModelRegistry, str],
        config: Optional[ServeConfig] = None,
        context: Optional[ExecutionContext] = None,
    ) -> None:
        self.registry = (
            registry if isinstance(registry, ModelRegistry) else ModelRegistry(registry)
        )
        self.config = config if config is not None else ServeConfig()
        self.context = context if context is not None else ExecutionContext()
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._models: "Dict[str, LoadedModel]" = {}  # insertion order = LRU order
        self._models_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._draining = True
        self._started = False
        self._stopped = False
        # Monotonic default request ids: id(future) is reused after garbage
        # collection, so long-lived servers could emit colliding ids.
        self._request_seq = itertools.count()
        self.served_requests = 0
        self.served_rows = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ImputationServer":
        """Spawn the dispatcher thread (idempotent)."""
        if self._stopped:
            raise RuntimeError("server has been shut down; create a new one")
        if self._thread is None:
            recorder = get_recorder()
            if recorder.enabled:
                # Create the gauge before concurrency begins: later .set()
                # calls then never race on registry creation.
                recorder.set_gauge("serve.queue_depth", self._queue.qsize())
            self._thread = threading.Thread(
                target=self._loop, name="repro-serve-dispatcher", daemon=True
            )
            self._started = True
            self._thread.start()
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the dispatcher.

        ``drain`` (default) serves everything already queued first; with
        ``drain=False`` queued requests resolve with a shutdown error.
        Idempotent; safe to call before :meth:`start`.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = drain
        self._queue.put(_SHUTDOWN)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(
        self,
        key: str,
        values: np.ndarray,
        request_id: Optional[str] = None,
    ) -> "Future[ImputeResponse]":
        """Enqueue rows (nan marks missing) for imputation under ``key``."""
        if self._stopped:
            raise RuntimeError("server is shut down")
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.ndim != 2:
            raise ValueError(f"request values must be 1-D or 2-D, got shape {values.shape}")
        future: "Future[ImputeResponse]" = Future()
        recorder = get_recorder()
        pending = _Pending(
            id=request_id if request_id is not None else f"r{next(self._request_seq)}",
            key=key,
            values=values,
            future=future,
            ctx=start_trace() if recorder.enabled else None,
        )
        self._queue.put(pending)
        if recorder.enabled:
            recorder.set_gauge("serve.queue_depth", self._queue.qsize())
        return future

    def impute_rows(
        self, key: str, values: np.ndarray, timeout: Optional[float] = None
    ) -> ImputeResponse:
        """Synchronous convenience: submit and wait."""
        return self.submit(key, values).result(timeout=timeout)

    def impute_csv(
        self,
        key: str,
        input_path: str,
        output_path: str,
        timeout: Optional[float] = None,
    ) -> ImputeResponse:
        """Bulk path: read a CSV, impute it as one request, write the result.

        The bulk request rides the same queue and batching machinery as
        single-row requests.
        """
        dataset = read_csv(input_path)
        response = self.submit(key, dataset.values, request_id=f"csv:{input_path}").result(
            timeout=timeout
        )
        if response.ok:
            write_csv(
                IncompleteDataset(
                    response.values,
                    feature_names=list(dataset.feature_names),
                    name=dataset.name,
                ),
                output_path,
            )
        return response

    # ------------------------------------------------------------------
    # Model cache
    # ------------------------------------------------------------------
    def _get_model(self, key: str) -> LoadedModel:
        """Fetch a loaded entry, loading and LRU-evicting as needed."""
        with self._models_lock:
            if key in self._models:
                loaded = self._models.pop(key)  # re-insert = mark most recent
                self._models[key] = loaded
                return loaded
        loaded = self.registry.load(key)  # RegistryError propagates to caller
        recorder = get_recorder()
        with self._models_lock:
            self._models[key] = loaded
            while len(self._models) > self.config.max_models:
                evicted_key = next(iter(self._models))
                del self._models[evicted_key]
                if recorder.enabled:
                    recorder.inc("serve.evictions")
                    recorder.emit("serve.evict", key=evicted_key)
        return loaded

    def reload(self) -> None:
        """Drop the model cache so the next requests re-read the registry."""
        with self._models_lock:
            self._models.clear()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        stop = False
        while not stop:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            item.dequeued = time.perf_counter()
            batch = [item]
            rows = item.values.shape[0]
            deadline = time.perf_counter() + self.config.batch_window_seconds
            while (
                len(batch) < self.config.max_batch_requests
                and rows < self.config.max_batch_rows
            ):
                remaining = deadline - time.perf_counter()
                try:
                    nxt = self._queue.get(block=remaining > 0, timeout=max(remaining, 0) or None)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                nxt.dequeued = time.perf_counter()
                batch.append(nxt)
                rows += nxt.values.shape[0]
            self._dispatch(batch)
        # Post-sentinel: serve or fail whatever is still queued.
        leftovers: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                item.dequeued = time.perf_counter()
                leftovers.append(item)
        if leftovers:
            if self._draining:
                self._dispatch(leftovers)
            else:
                for pending in leftovers:
                    pending.future.set_result(
                        ImputeResponse(
                            id=pending.id, key=pending.key, values=None,
                            error="server shut down before the request was served",
                        )
                    )

    def _dispatch(self, batch: List[_Pending]) -> None:
        """Serve one coalesced batch: group by key, one model call per key."""
        recorder = get_recorder()
        if recorder.enabled:
            recorder.set_gauge("serve.queue_depth", self._queue.qsize())
        groups: Dict[str, List[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.key, []).append(pending)

        ready: List[tuple] = []  # (key, group, loaded) — model load errors resolve early
        for key, group in groups.items():
            try:
                loaded = self._get_model(key)
            except RegistryError as exc:
                self._fail_group(group, str(exc), recorder)
                continue
            width = loaded.entry.n_features
            ok_group = []
            for pending in group:
                if pending.values.shape[1] != width:
                    self._fail_group(
                        [pending],
                        f"registry entry {key!r} expects {width} columns, "
                        f"request has {pending.values.shape[1]}",
                        recorder,
                    )
                else:
                    ok_group.append(pending)
            if ok_group:
                ready.append((key, ok_group, loaded))
        if not ready:
            return

        started = time.perf_counter()
        # Pre-assign each request's execute-span identity so the model span
        # emitted inside the worker (possibly a fork child) can parent
        # itself to the right request even across the process boundary.
        staged = [
            (
                key,
                group,
                loaded,
                [p.ctx.child() if p.ctx is not None else None for p in group],
            )
            for key, group, loaded in ready
        ]
        tasks = [
            (lambda g=group, m=loaded, e=exec_ctxs: _serve_group_rows(m, g, e))
            for key, group, loaded, exec_ctxs in staged
        ]
        outputs = self.context.run(tasks, label="serve.batch")
        for (key, group, loaded, exec_ctxs), output in zip(staged, outputs):
            seconds = time.perf_counter() - started
            n_rows = int(sum(p.values.shape[0] for p in group))
            self.served_requests += len(group)
            self.served_rows += n_rows
            if recorder.enabled:
                recorder.inc("serve.batches")
                recorder.inc("serve.requests", len(group))
                recorder.observe("serve.coalesced", len(group))
                recorder.emit(
                    "serve.batch",
                    key=key,
                    n_requests=len(group),
                    n_rows=n_rows,
                    seconds=seconds,
                    queue_depth=self._queue.qsize(),
                )
            split = BatchPlan.of_sizes(
                [p.values.shape[0] for p in group]
            ).bounds(output.shape[0])
            for pending, exec_ctx, (start, stop) in zip(group, exec_ctxs, split):
                n = stop - start
                rows = output[start:stop]
                exec_end = time.perf_counter()
                response = ImputeResponse(
                    id=pending.id,
                    key=key,
                    values=rows,
                    queue_seconds=started - pending.submitted,
                    service_seconds=seconds,
                    coalesced=len(group),
                )
                pending.future.set_result(response)
                done = time.perf_counter()
                if recorder.enabled:
                    latency = done - pending.submitted
                    recorder.observe("serve.latency_seconds", latency)
                    recorder.emit(
                        "serve.request",
                        id=pending.id,
                        key=key,
                        n_rows=n,
                        queue_seconds=response.queue_seconds,
                        latency_seconds=latency,
                        coalesced=len(group),
                        trace_id=pending.ctx.trace_id if pending.ctx else None,
                    )
                    self._emit_request_spans(
                        recorder, pending, exec_ctx, started, exec_end, done
                    )

    def _emit_request_spans(
        self,
        recorder,
        pending: _Pending,
        exec_ctx: Optional[TraceContext],
        started: float,
        exec_end: float,
        done: float,
    ) -> None:
        """Emit the request's span waterfall: root + four tiling children.

        ``queue_wait`` / ``coalesce`` / ``execute`` / ``reply`` partition
        ``[submitted, done]`` with no gaps, so the children account for the
        request's full measured wall-clock by construction.  The execute
        span reuses the pre-assigned ``exec_ctx`` so the worker-side
        ``serve.model`` span (absorbed from a fork child) hangs under it.
        """
        ctx = pending.ctx
        if ctx is None:
            return
        clock_at = getattr(recorder, "clock_at", None)
        at = clock_at if callable(clock_at) else (lambda _t: None)
        dequeued = pending.dequeued or pending.submitted
        record_span(
            "serve.request",
            ctx,
            done - pending.submitted,
            start=at(pending.submitted),
            recorder=recorder,
            request=pending.id,
            key=pending.key,
        )
        for name, t0, t1, child in (
            ("serve.queue_wait", pending.submitted, dequeued, ctx.child()),
            ("serve.coalesce", dequeued, started, ctx.child()),
            ("serve.execute", started, exec_end, exec_ctx),
            ("serve.reply", exec_end, done, ctx.child()),
        ):
            record_span(
                name,
                child if child is not None else ctx.child(),
                t1 - t0,
                start=at(t0),
                recorder=recorder,
                request=pending.id,
            )

    def _fail_group(self, group: List[_Pending], message: str, recorder) -> None:
        for pending in group:
            done = time.perf_counter()
            latency = done - pending.submitted
            if recorder.enabled:
                recorder.inc("serve.errors")
                # Errored requests hit the same latency histogram as
                # successes — muting them would bias the tail downward.
                recorder.observe("serve.latency_seconds", latency)
                recorder.emit(
                    "serve.request",
                    id=pending.id,
                    key=pending.key,
                    n_rows=int(pending.values.shape[0]),
                    error=message,
                    latency_seconds=latency,
                    trace_id=pending.ctx.trace_id if pending.ctx else None,
                )
                if pending.ctx is not None:
                    clock_at = getattr(recorder, "clock_at", None)
                    record_span(
                        "serve.request",
                        pending.ctx,
                        latency,
                        start=(
                            clock_at(pending.submitted)
                            if callable(clock_at)
                            else None
                        ),
                        recorder=recorder,
                        request=pending.id,
                        key=pending.key,
                        error=True,
                    )
            pending.future.set_result(
                ImputeResponse(id=pending.id, key=pending.key, values=None, error=message)
            )


def _serve_group_rows(
    loaded: LoadedModel,
    group: List[_Pending],
    exec_ctxs: Optional[List[Optional[TraceContext]]] = None,
) -> np.ndarray:
    """Impute one key-group's stacked rows; observed cells pass through raw.

    Runs in the dispatcher thread (serial context) or a fork worker
    (process context).  ``exec_ctxs`` carries each request's pre-assigned
    execute-span context, so the ``serve.model`` span emitted here parents
    to the right request's trace even when it is recorded by a child
    recorder and absorbed later.
    """
    t0 = time.perf_counter()
    raw = np.vstack([pending.values for pending in group])
    mask = (~np.isnan(raw)).astype(np.float64)
    scaled = loaded.normalizer.transform(raw) if loaded.normalizer else raw
    dataset = IncompleteDataset(
        scaled,
        feature_names=list(loaded.entry.schema["feature_names"]),
        feature_types=list(loaded.entry.schema["feature_types"]),
        name=f"serve:{loaded.entry.key}",
    )
    imputed = loaded.model.transform(dataset)
    if loaded.normalizer is not None:
        imputed = loaded.normalizer.inverse_transform(imputed)
    # Bit-exact pass-through: never let the scale round trip touch observed
    # cells.
    result = np.where(mask == 1.0, np.nan_to_num(raw, nan=0.0), imputed)
    recorder = get_recorder()
    if recorder.enabled and exec_ctxs:
        seconds = time.perf_counter() - t0
        clock_at = getattr(recorder, "clock_at", None)
        start = clock_at(t0) if callable(clock_at) else None
        for pending, exec_ctx in zip(group, exec_ctxs):
            if exec_ctx is None:
                continue
            record_span(
                "serve.model",
                exec_ctx.child(),
                seconds,
                start=start,
                recorder=recorder,
                request=pending.id,
                key=loaded.entry.key,
                n_rows=int(pending.values.shape[0]),
            )
    return result


# ----------------------------------------------------------------------
# The JSONL transport (what `repro serve run` speaks)
# ----------------------------------------------------------------------
def _rows_from_json(rows: object) -> np.ndarray:
    if not isinstance(rows, list) or not rows or not all(isinstance(r, list) for r in rows):
        raise ValueError("'rows' must be a non-empty list of lists")
    return np.asarray(
        [[np.nan if cell is None else float(cell) for cell in row] for row in rows],
        dtype=np.float64,
    )


def _rows_to_json(values: np.ndarray) -> List[List[Optional[float]]]:
    return [
        [None if not np.isfinite(cell) else float(cell) for cell in row]
        for row in np.atleast_2d(values)
    ]


def serve_jsonl(
    server: ImputationServer,
    in_stream: TextIO,
    out_stream: TextIO,
) -> Dict[str, int]:
    """Serve line-delimited JSON requests until EOF or a shutdown request.

    Requests (one JSON object per line; responses are matched by ``id``,
    not by order):

    * ``{"op": "impute", "id": .., "key": .., "rows": [[..]]}`` — impute
      rows (``null`` cells are missing) → ``{"id", "ok", "rows", ..}``.
    * ``{"op": "impute_csv", "id": .., "key": .., "input": p, "output": p}``
      — bulk-impute a CSV file → ``{"id", "ok", "n_rows", "output"}``.
    * ``{"op": "keys", "id": ..}`` — list registry keys.
    * ``{"op": "metrics", "id": ..}`` — Prometheus text exposition of the
      live recorder's metrics (a placeholder comment when no recorder is
      attached).
    * ``{"op": "ping", "id": ..}`` — liveness check.
    * ``{"op": "shutdown", "id": ..}`` — drain, acknowledge, exit.

    EOF is the implicit shutdown request: the server drains every pending
    response before the function returns (graceful shutdown).
    """
    server.start()
    write_lock = threading.Lock()
    pending: List[Future] = []
    stats = {"requests": 0, "responses": 0, "errors": 0}

    def reply(payload: Dict[str, object]) -> None:
        with write_lock:
            out_stream.write(json.dumps(payload) + "\n")
            out_stream.flush()
        stats["responses"] += 1
        if payload.get("ok") is False:
            stats["errors"] += 1

    def on_done(request_id: str, op: str, output: Optional[str]):
        def callback(future: Future) -> None:
            response: ImputeResponse = future.result()
            if not response.ok:
                reply({"id": request_id, "ok": False, "error": response.error})
                return
            payload: Dict[str, object] = {
                "id": request_id,
                "ok": True,
                "key": response.key,
                "n_rows": int(response.values.shape[0]),
                "coalesced": response.coalesced,
            }
            if op == "impute":
                payload["rows"] = _rows_to_json(response.values)
            else:
                payload["output"] = output
            reply(payload)

        return callback

    shutdown_id: Optional[str] = None
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        stats["requests"] += 1
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op", "impute")
            request_id = str(request.get("id", stats["requests"]))
            if op == "shutdown":
                shutdown_id = request_id
                break
            if op == "ping":
                reply({"id": request_id, "ok": True, "op": "pong"})
                continue
            if op == "keys":
                reply({"id": request_id, "ok": True, "keys": server.registry.keys()})
                continue
            if op == "metrics":
                recorder = get_recorder()
                if recorder.enabled:
                    exposition = prometheus_exposition(recorder.metrics.snapshot())
                else:
                    exposition = "# no recorder attached (run with --trace or --live)\n"
                reply(
                    {
                        "id": request_id,
                        "ok": True,
                        "op": "metrics",
                        "exposition": exposition,
                    }
                )
                continue
            if op == "impute":
                values = _rows_from_json(request["rows"])
                future = server.submit(str(request["key"]), values, request_id=request_id)
                future.add_done_callback(on_done(request_id, "impute", None))
                pending.append(future)
            elif op == "impute_csv":
                # Reads/writes happen in a helper thread so bulk file I/O
                # does not stall the request-intake loop.
                def run_csv(req=request, rid=request_id):
                    try:
                        response = server.impute_csv(
                            str(req["key"]), str(req["input"]), str(req["output"])
                        )
                    except (OSError, ValueError) as exc:
                        reply({"id": rid, "ok": False, "error": str(exc)})
                        return
                    if response.ok:
                        reply(
                            {
                                "id": rid,
                                "ok": True,
                                "key": response.key,
                                "n_rows": int(response.values.shape[0]),
                                "coalesced": response.coalesced,
                                "output": str(req["output"]),
                            }
                        )
                    else:
                        reply({"id": rid, "ok": False, "error": response.error})

                worker = threading.Thread(target=run_csv, daemon=True)
                worker.start()
                pending.append(worker)
            else:
                reply({"id": request_id, "ok": False, "error": f"unknown op {op!r}"})
        except (KeyError, TypeError, ValueError, RegistryError) as exc:
            reply({"id": str(stats["requests"]), "ok": False, "error": str(exc)})

    # Graceful shutdown: every accepted request gets its response first.
    for item in pending:
        if isinstance(item, Future):
            item.exception()  # waits; response written by the callback
        else:
            item.join()
    server.shutdown(drain=True)
    if shutdown_id is not None:
        reply(
            {
                "id": shutdown_id,
                "ok": True,
                "op": "shutdown",
                "served_requests": server.served_requests,
                "served_rows": server.served_rows,
            }
        )
    return stats


def check_request_schema(
    server: ImputationServer, key: str, dataset: IncompleteDataset
) -> None:
    """Convenience pre-flight: schema-check a dataset against an entry."""
    loaded = server._get_model(key)
    if schema_fingerprint(dataset) != loaded.entry.schema_fp:
        raise RegistryError(
            f"schema mismatch for registry entry {key!r}", key=key
        )
