"""Model registry: persist trained imputers keyed by schema + config.

A registry is a directory of *entries*, one per (model family, dataset
schema, configuration) triple, plus a versioned ``manifest.json`` index.
Keys are content-derived and stable::

    <model_name>-<schema_fingerprint>-<config_id>
    e.g.  dim-gain-0f41ae2bd1c8-9be02c1a77d4

* ``schema_fingerprint`` hashes the dataset's column names and types, so a
  model trained for one table shape can never silently serve another.
* ``config_id`` hashes the imputer's constructor configuration (recovered
  generically from its ``__init__`` signature) plus any caller-supplied
  extras (e.g. the ``DimConfig`` used to train it), so two differently
  configured models of the same family occupy distinct entries.

Each entry directory holds ``entry.json`` (schema, config, normaliser
statistics, bookkeeping) and ``weights.npz`` (the fitted state — generator
parameters for :class:`~repro.models.base.GenerativeImputer` families via
the same (de)serialisation conventions as :mod:`repro.serialize`, fitted
arrays for the statistical families).  Every ``save`` round-trips the entry
through ``load`` and verifies the rebuilt model imputes a deterministic
probe batch *bit-identically* before the manifest is updated, so a corrupt
or non-reconstructible entry can never become visible.

All user-input failure modes (missing key, corrupt manifest/entry/weights,
schema mismatch) raise :class:`RegistryError` naming the offending key —
the CLI maps these to a one-line error and exit code 2, never a traceback.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..data.dataset import IncompleteDataset
from ..data.normalize import MinMaxNormalizer
from ..models.base import GenerativeImputer, Imputer
from ..models.registry import REGISTRY, make_imputer
from ..models.simple import KNNImputer, _ColumnStatImputer

__all__ = [
    "RegistryError",
    "RegistryEntry",
    "LoadedModel",
    "ModelRegistry",
    "schema_of",
    "schema_fingerprint",
    "config_id",
    "registry_key",
]

MANIFEST_VERSION = 1
MANIFEST_KIND = "model-registry"
MANIFEST_NAME = "manifest.json"
ENTRY_NAME = "entry.json"
WEIGHTS_NAME = "weights.npz"

_HASH_CHARS = 12  # 48 bits of sha256 — collision-safe at registry scale
_PROBE_ROWS = 6
_PROBE_SEED = 20240522  # fixed: probe imputations must be reproducible


class RegistryError(ValueError):
    """A registry entry is missing, corrupt, or schema-incompatible.

    ``key`` names the offending entry (or ``None`` for registry-level
    problems such as a corrupt manifest).
    """

    def __init__(self, message: str, key: Optional[str] = None) -> None:
        super().__init__(message)
        self.key = key


# ----------------------------------------------------------------------
# Keys: schema fingerprints and config hashes
# ----------------------------------------------------------------------
def schema_of(dataset: IncompleteDataset) -> Dict[str, list]:
    """The serving-relevant schema of a dataset: column names and types."""
    return {
        "feature_names": list(dataset.feature_names),
        "feature_types": list(dataset.feature_types),
    }


def _stable_hash(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_HASH_CHARS]


def schema_fingerprint(schema: Union[IncompleteDataset, Dict[str, list]]) -> str:
    """Stable fingerprint of a dataset schema (names + types)."""
    if isinstance(schema, IncompleteDataset):
        schema = schema_of(schema)
    return _stable_hash(
        {
            "feature_names": list(schema["feature_names"]),
            "feature_types": list(schema["feature_types"]),
        }
    )


def _ctor_config(model: object) -> Dict[str, object]:
    """Recover a model's constructor configuration from its attributes.

    Every imputer in this codebase stores its ``__init__`` parameters as
    same-named scalar attributes, so the signature doubles as the
    serialisable config schema; non-scalar or absent parameters are skipped
    (the rebuilt model falls back to its defaults for those).
    """
    config: Dict[str, object] = {}
    for name, param in inspect.signature(type(model).__init__).parameters.items():
        if name == "self" or param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if hasattr(model, name):
            value = getattr(model, name)
            if isinstance(value, (bool, int, float, str)) or value is None:
                config[name] = value
    return config


def config_id(model_name: str, config: Dict[str, object]) -> str:
    """Stable hash of a model's identifying configuration."""
    return _stable_hash({"model": model_name, "config": config})


def registry_key(model_name: str, schema_fp: str, cfg_id: str) -> str:
    return f"{model_name}-{schema_fp}-{cfg_id}"


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
@dataclass
class RegistryEntry:
    """One persisted model: identity, schema, config, and file locations."""

    key: str
    model_name: str
    kind: str  # "generative" | "column_stats" | "knn"
    inner_name: Optional[str]  # rebuildable family name (e.g. "gain" for dim-gain)
    schema: Dict[str, list]
    schema_fp: str
    config: Dict[str, object]
    config_id: str
    n_features: int
    created: float
    normalizer: Optional[Dict[str, list]] = None
    extra_config: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": MANIFEST_VERSION,
            "key": self.key,
            "model_name": self.model_name,
            "kind": self.kind,
            "inner_name": self.inner_name,
            "schema": self.schema,
            "schema_fingerprint": self.schema_fp,
            "config": self.config,
            "config_id": self.config_id,
            "n_features": self.n_features,
            "created": self.created,
            "normalizer": self.normalizer,
            "extra_config": self.extra_config,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object], key: str) -> "RegistryEntry":
        try:
            return cls(
                key=data["key"],
                model_name=data["model_name"],
                kind=data["kind"],
                inner_name=data.get("inner_name"),
                schema=data["schema"],
                schema_fp=data["schema_fingerprint"],
                config=data["config"],
                config_id=data["config_id"],
                n_features=int(data["n_features"]),
                created=float(data["created"]),
                normalizer=data.get("normalizer"),
                extra_config=data.get("extra_config", {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"registry entry {key!r} has a corrupt {ENTRY_NAME} "
                f"(missing or malformed field: {exc})",
                key=key,
            ) from exc


@dataclass
class LoadedModel:
    """A registry entry rehydrated for serving."""

    entry: RegistryEntry
    model: Imputer
    normalizer: Optional[MinMaxNormalizer]


# ----------------------------------------------------------------------
# (De)hydration of the supported model families
# ----------------------------------------------------------------------
def _unwrap(model: object):
    """Peel DIM-style wrappers down to the persistable inner imputer.

    Returns ``(outer_name, inner_model, extra_config)``: wrappers such as
    :class:`repro.core.DimImputer` delegate ``transform`` to their wrapped
    generative model, so persisting the inner model (under the wrapper's
    name and training config) reproduces the wrapper's imputations exactly.
    """
    inner = getattr(model, "model", None)
    if inner is not None and isinstance(inner, GenerativeImputer):
        extra: Dict[str, object] = {}
        config = getattr(model, "config", None)
        if config is not None and hasattr(config, "__dataclass_fields__"):
            extra = {
                name: getattr(config, name)
                for name in config.__dataclass_fields__
                if isinstance(getattr(config, name), (bool, int, float, str))
                or getattr(config, name) is None
            }
        return getattr(model, "name", inner.name), inner, extra
    return getattr(model, "name", type(model).__name__), model, {}


def _dehydrate(model: Imputer):
    """Split a fitted model into (kind, inner_name, arrays, ctor config)."""
    if isinstance(model, GenerativeImputer):
        state = model.generator.state_dict()  # raises RuntimeError if unbuilt
        arrays = {f"param/{name}": value for name, value in state.items()}
        return "generative", model.name, arrays, _ctor_config(model)
    if isinstance(model, _ColumnStatImputer):
        if model._fill is None:
            raise RegistryError(
                f"cannot register an unfitted {type(model).__name__}"
            )
        return "column_stats", model.name, {"fill": model._fill}, _ctor_config(model)
    if isinstance(model, KNNImputer):
        if model._train_values is None:
            raise RegistryError("cannot register an unfitted KNNImputer")
        arrays = {
            "train_values": model._train_values,
            "train_mask": model._train_mask,
            "column_means": model._column_means,
        }
        return "knn", model.name, arrays, _ctor_config(model)
    raise RegistryError(
        f"model family {type(model).__name__!r} is not registry-persistable "
        f"(supported: GenerativeImputer, column statistics, KNN)"
    )


def _rehydrate(entry: RegistryEntry, arrays: Dict[str, np.ndarray]) -> Imputer:
    """Rebuild a servable model from an entry's metadata and weights."""
    name = entry.inner_name
    if name not in REGISTRY:
        raise RegistryError(
            f"registry entry {entry.key!r} names unknown model family {name!r}",
            key=entry.key,
        )
    try:
        model = make_imputer(name, **entry.config)
    except TypeError as exc:
        raise RegistryError(
            f"registry entry {entry.key!r} has a config incompatible with "
            f"{name!r}: {exc}",
            key=entry.key,
        ) from exc
    try:
        if entry.kind == "generative":
            model.build(entry.n_features)
            state = {
                key[len("param/"):]: value
                for key, value in arrays.items()
                if key.startswith("param/")
            }
            model.generator.load_state_dict(state)
            model._fitted = True
        elif entry.kind == "column_stats":
            model._fill = np.asarray(arrays["fill"], dtype=np.float64)
            model._fitted = True
        elif entry.kind == "knn":
            model._train_values = np.asarray(arrays["train_values"], dtype=np.float64)
            model._train_mask = np.asarray(arrays["train_mask"], dtype=np.float64)
            model._column_means = np.asarray(arrays["column_means"], dtype=np.float64)
            model._fitted = True
        else:
            raise RegistryError(
                f"registry entry {entry.key!r} has unknown kind {entry.kind!r}",
                key=entry.key,
            )
    except (KeyError, ValueError) as exc:
        raise RegistryError(
            f"registry entry {entry.key!r} has corrupt weights: {exc}",
            key=entry.key,
        ) from exc
    return model


def _probe_dataset(schema: Dict[str, list]) -> IncompleteDataset:
    """A tiny deterministic dataset matching ``schema``, for validation."""
    names = list(schema["feature_names"])
    rng = np.random.default_rng(_PROBE_SEED)
    values = rng.random((_PROBE_ROWS, len(names)))
    missing = rng.random(values.shape) < 0.4
    missing[0, :] = False  # one fully observed row exercises pass-through
    missing[1, :] = True  # one fully missing row exercises the model path
    values[missing] = np.nan
    return IncompleteDataset(
        values,
        feature_names=names,
        feature_types=list(schema["feature_types"]),
        name="registry-probe",
    )


def _normalizer_state(normalizer: Optional[MinMaxNormalizer]) -> Optional[Dict[str, list]]:
    if normalizer is None:
        return None
    if normalizer.minima is None:
        raise RegistryError("cannot register an unfitted normalizer")
    return {
        "kind": "minmax",
        "minima": [float(v) for v in normalizer.minima],
        "ranges": [float(v) for v in normalizer.ranges],
    }


def _rebuild_normalizer(state: Optional[Dict[str, list]]) -> Optional[MinMaxNormalizer]:
    if state is None:
        return None
    normalizer = MinMaxNormalizer()
    normalizer.minima = np.asarray(state["minima"], dtype=np.float64)
    normalizer.ranges = np.asarray(state["ranges"], dtype=np.float64)
    return normalizer


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class ModelRegistry:
    """Directory-backed store of trained imputers with a versioned manifest.

    ``save`` is atomic from a reader's point of view: the entry directory is
    fully written and round-trip validated before the manifest names it, and
    the manifest itself is written via rename.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self, must_exist: bool = False) -> Dict[str, object]:
        path = self.manifest_path
        if not path.exists():
            if must_exist:
                raise RegistryError(f"no model registry at {self.root} (missing {MANIFEST_NAME})")
            return {"version": MANIFEST_VERSION, "kind": MANIFEST_KIND, "entries": {}}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"corrupt registry manifest {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != MANIFEST_KIND:
            raise RegistryError(
                f"{path} is not a model-registry manifest "
                f"(kind={data.get('kind') if isinstance(data, dict) else type(data).__name__!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise RegistryError(
                f"{path} has unsupported manifest version {data.get('version')!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        if not isinstance(data.get("entries"), dict):
            raise RegistryError(f"{path} has no 'entries' object")
        return data

    def _write_manifest(self, manifest: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        tmp.replace(self.manifest_path)

    def keys(self) -> List[str]:
        """All registered keys (empty when the registry does not exist yet)."""
        return sorted(self._read_manifest()["entries"])

    def entries(self) -> List[Dict[str, object]]:
        """Manifest rows (summary metadata) for every registered entry."""
        manifest = self._read_manifest()
        return [dict(manifest["entries"][key], key=key) for key in sorted(manifest["entries"])]

    # -- save ----------------------------------------------------------
    def save(
        self,
        model: Imputer,
        dataset: Optional[IncompleteDataset] = None,
        schema: Optional[Dict[str, list]] = None,
        normalizer: Optional[MinMaxNormalizer] = None,
        extra_config: Optional[Dict[str, object]] = None,
        validate: bool = True,
    ) -> RegistryEntry:
        """Persist a fitted model; returns the validated entry.

        ``dataset`` or ``schema`` supplies the schema the model was trained
        for.  ``normalizer`` (the fitted :class:`MinMaxNormalizer` used at
        training time) travels with the entry so the serving layer scales
        requests identically.  With ``validate`` (default) the entry is
        reloaded and must impute a deterministic probe batch bit-identically
        to the in-memory model before it becomes visible in the manifest.
        """
        if schema is None:
            if dataset is None:
                raise RegistryError("save() needs a dataset or an explicit schema")
            schema = schema_of(dataset)
        outer_name, inner, wrapper_extra = _unwrap(model)
        kind, inner_name, arrays, ctor = _dehydrate(inner)
        extras = dict(wrapper_extra)
        if extra_config:
            extras.update(extra_config)
        schema_fp = schema_fingerprint(schema)
        cfg_id = config_id(outer_name, {"ctor": ctor, "extra": extras})
        key = registry_key(outer_name, schema_fp, cfg_id)
        entry = RegistryEntry(
            key=key,
            model_name=outer_name,
            kind=kind,
            inner_name=inner_name,
            schema={k: list(v) for k, v in schema.items()},
            schema_fp=schema_fp,
            config=ctor,
            config_id=cfg_id,
            n_features=len(schema["feature_names"]),
            created=time.time(),
            normalizer=_normalizer_state(normalizer),
            extra_config=extras,
        )

        entry_dir = self.root / key
        entry_dir.mkdir(parents=True, exist_ok=True)
        np.savez(entry_dir / WEIGHTS_NAME, **arrays)
        (entry_dir / ENTRY_NAME).write_text(
            json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n"
        )

        if validate:
            reference = model.transform(_probe_dataset(schema))
            loaded = self._load_entry(entry)
            candidate = loaded.model.transform(_probe_dataset(schema))
            if not np.array_equal(reference, candidate, equal_nan=True):
                raise RegistryError(
                    f"round-trip validation failed for registry entry {key!r}: "
                    f"reloaded model does not impute the probe batch "
                    f"bit-identically",
                    key=key,
                )

        manifest = self._read_manifest()
        manifest["entries"][key] = {
            "model_name": outer_name,
            "kind": kind,
            "schema_fingerprint": schema_fp,
            "config_id": cfg_id,
            "n_features": entry.n_features,
            "created": entry.created,
        }
        self._write_manifest(manifest)
        return entry

    # -- load ----------------------------------------------------------
    def load(self, key: str) -> LoadedModel:
        """Rehydrate the entry named ``key`` (manifest-checked)."""
        manifest = self._read_manifest(must_exist=True)
        if key not in manifest["entries"]:
            known = ", ".join(sorted(manifest["entries"])) or "<none>"
            raise RegistryError(
                f"no registry entry {key!r} in {self.root} (known keys: {known})",
                key=key,
            )
        return self._load_entry_by_key(key)

    def _load_entry_by_key(self, key: str) -> LoadedModel:
        entry_path = self.root / key / ENTRY_NAME
        try:
            data = json.loads(entry_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"registry entry {key!r} is corrupt ({entry_path}: {exc})", key=key
            ) from exc
        return self._load_entry(RegistryEntry.from_dict(data, key=key))

    def _load_entry(self, entry: RegistryEntry) -> LoadedModel:
        weights_path = self.root / entry.key / WEIGHTS_NAME
        try:
            with np.load(weights_path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"registry entry {entry.key!r} has corrupt weights "
                f"({weights_path}: {exc})",
                key=entry.key,
            ) from exc
        model = _rehydrate(entry, arrays)
        return LoadedModel(
            entry=entry, model=model, normalizer=_rebuild_normalizer(entry.normalizer)
        )

    # -- checks and maintenance ---------------------------------------
    def check_schema(
        self, entry: RegistryEntry, schema: Union[IncompleteDataset, Dict[str, list]]
    ) -> None:
        """Raise :class:`RegistryError` unless ``schema`` matches the entry."""
        fingerprint = schema_fingerprint(schema)
        if fingerprint != entry.schema_fp:
            raise RegistryError(
                f"schema mismatch for registry entry {entry.key!r}: entry was "
                f"trained for schema {entry.schema_fp}, request has {fingerprint}",
                key=entry.key,
            )

    def delete(self, key: str) -> None:
        """Drop ``key`` from the manifest and remove its files."""
        manifest = self._read_manifest(must_exist=True)
        if key not in manifest["entries"]:
            raise RegistryError(f"no registry entry {key!r} in {self.root}", key=key)
        del manifest["entries"][key]
        self._write_manifest(manifest)
        entry_dir = self.root / key
        for name in (WEIGHTS_NAME, ENTRY_NAME):
            path = entry_dir / name
            if path.exists():
                path.unlink()
        if entry_dir.exists() and not any(entry_dir.iterdir()):
            entry_dir.rmdir()
