"""Differentiable elementary operations for :class:`repro.tensor.Tensor`.

Every function takes tensors (or array-likes, which are coerced), computes the
forward value through the active :mod:`tensor backend <repro.tensor.backend>`,
and registers a backward closure that maps the output gradient to a tuple of
parent gradients (``None`` for parents that do not require grad, though
returning a gradient anyway is harmless).

Backend contract (``docs/backends.md``): forward kernels dispatch through
:func:`repro.tensor.backend.get_backend` and convert back to NumPy, so the
tape — ``Tensor.data``/``Tensor.grad`` — stays host-side ndarray regardless
of backend.  Operator arithmetic (``+``, ``*``, ``@`` operands) and backward
closures run on those NumPy buffers directly; fancy-index scatter
(``getitem``'s backward) and dropout RNG are NumPy-only by design.
"""

from __future__ import annotations

import builtins
import functools
import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..obs.profiler import get_op_profiler
from .backend import get_backend
from .tensor import ArrayLike, Tensor, _unbroadcast, as_tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "matmul",
    "exp",
    "log",
    "sqrt",
    "abs",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "softplus",
    "softmax",
    "log_softmax",
    "logsumexp",
    "clip",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "concat",
    "getitem",
    "where",
    "dropout_mask",
]

_EPS = 1e-12


def _np(value) -> np.ndarray:
    """Bring a backend-native result back onto the NumPy tape."""
    return get_backend().to_numpy(value)


# ----------------------------------------------------------------------
# Binary arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise sum with NumPy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray):
        return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

    return a._make_child(out_data, (a, b), backward)


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise difference ``a - b``."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray):
        return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

    return a._make_child(out_data, (a, b), backward)


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise (Hadamard) product."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * b.data, a.shape),
            _unbroadcast(grad * a.data, b.shape),
        )

    return a._make_child(out_data, (a, b), backward)


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise quotient ``a / b``."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad / b.data, a.shape),
            _unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return a._make_child(out_data, (a, b), backward)


def neg(a: ArrayLike) -> Tensor:
    """Elementwise negation."""
    a = as_tensor(a)

    def backward(grad: np.ndarray):
        return (-grad,)

    return a._make_child(-a.data, (a,), backward)


def pow(a: ArrayLike, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-differentiated) exponent."""
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data**exponent

    def backward(grad: np.ndarray):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return a._make_child(out_data, (a,), backward)


def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix / vector product with the full ``@`` shape semantics."""
    a, b = as_tensor(a), as_tensor(b)
    bk = get_backend()
    out_data = _np(bk.matmul(a.data, b.data))

    def backward(grad: np.ndarray):
        if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
            return (grad * b.data, grad * a.data)
        if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
            return (grad @ b.data.T, np.outer(a.data, grad))
        if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
            return (np.outer(grad, b.data), a.data.T @ grad)
        return (grad @ b.data.swapaxes(-1, -2), a.data.swapaxes(-1, -2) @ grad)

    return a._make_child(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Elementwise nonlinearities
# ----------------------------------------------------------------------
def exp(a: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = _np(get_backend().exp(a.data))

    def backward(grad: np.ndarray):
        return (grad * out_data,)

    return a._make_child(out_data, (a,), backward)


def log(a: ArrayLike) -> Tensor:
    """Elementwise natural log (inputs clamped away from zero)."""
    a = as_tensor(a)
    bk = get_backend()
    out_data = _np(bk.log(bk.maximum(a.data, _EPS)))

    def backward(grad: np.ndarray):
        return (grad / np.maximum(a.data, _EPS),)

    return a._make_child(out_data, (a,), backward)


def sqrt(a: ArrayLike) -> Tensor:
    """Elementwise square root (negative inputs clamp to zero)."""
    a = as_tensor(a)
    bk = get_backend()
    out_data = _np(bk.sqrt(bk.maximum(a.data, 0.0)))

    def backward(grad: np.ndarray):
        return (grad * 0.5 / np.maximum(out_data, _EPS),)

    return a._make_child(out_data, (a,), backward)


def abs(a: ArrayLike) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the kink)."""
    a = as_tensor(a)
    out_data = _np(get_backend().abs(a.data))

    def backward(grad: np.ndarray):
        return (grad * np.sign(a.data),)

    return a._make_child(out_data, (a,), backward)


def tanh(a: ArrayLike) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    out_data = _np(get_backend().tanh(a.data))

    def backward(grad: np.ndarray):
        return (grad * (1.0 - out_data**2),)

    return a._make_child(out_data, (a,), backward)


def sigmoid(a: ArrayLike) -> Tensor:
    """Elementwise logistic sigmoid."""
    a = as_tensor(a)
    bk = get_backend()
    out_data = 1.0 / (1.0 + _np(bk.exp(-a.data)))

    def backward(grad: np.ndarray):
        return (grad * out_data * (1.0 - out_data),)

    return a._make_child(out_data, (a,), backward)


def relu(a: ArrayLike) -> Tensor:
    """Elementwise rectifier ``max(a, 0)``."""
    a = as_tensor(a)
    out_data = _np(get_backend().maximum(a.data, 0.0))

    def backward(grad: np.ndarray):
        return (grad * (a.data > 0.0),)

    return a._make_child(out_data, (a,), backward)


def leaky_relu(a: ArrayLike, slope: float = 0.01) -> Tensor:
    """Rectifier with a small negative-side slope."""
    a = as_tensor(a)
    bk = get_backend()
    out_data = _np(bk.where(a.data > 0.0, a.data, slope * a.data))

    def backward(grad: np.ndarray):
        return (grad * np.where(a.data > 0.0, 1.0, slope),)

    return a._make_child(out_data, (a,), backward)


def softplus(a: ArrayLike) -> Tensor:
    """Smooth rectifier ``log(1 + e^a)``."""
    a = as_tensor(a)
    bk = get_backend()
    # Numerically stable: log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
    out_data = _np(bk.maximum(a.data, 0.0)) + _np(bk.log1p(bk.exp(-np.fabs(a.data))))

    def backward(grad: np.ndarray):
        return (grad / (1.0 + np.exp(-a.data)),)

    return a._make_child(out_data, (a,), backward)


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Shift-stabilised softmax along ``axis``."""
    a = as_tensor(a)
    bk = get_backend()
    shifted = a.data - _np(bk.max(a.data, axis=axis, keepdims=True))
    exps = _np(bk.exp(shifted))
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (grad - dot),)

    return a._make_child(out_data, (a,), backward)


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(a))``."""
    a = as_tensor(a)
    bk = get_backend()
    out_data = a.data - _np(bk.logsumexp(a.data, axis=axis, keepdims=True))
    soft = np.exp(out_data)

    def backward(grad: np.ndarray):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return a._make_child(out_data, (a,), backward)


def logsumexp(a: ArrayLike, axis: Optional[int] = None, keepdims: bool = False) -> Tensor:
    """Shift-stabilised ``log Σ exp`` reduction along ``axis``.

    This is the Sinkhorn solvers' inner kernel: each dual sweep in
    ``repro.ot`` is one call, so routing it through here gives the op
    profiler and the tensor backend full visibility of the OT hot path.
    The gradient is the softmax of the inputs.
    """
    a = as_tensor(a)
    bk = get_backend()
    out_data = _np(bk.logsumexp(a.data, axis=axis, keepdims=keepdims))

    def backward(grad: np.ndarray):
        lse = out_data
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            lse = np.expand_dims(lse, axis=axis)
            g = np.expand_dims(g, axis=axis)
        return (g * np.exp(a.data - lse),)

    return a._make_child(out_data, (a,), backward)


def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    """Clamp values; gradient flows only through the un-clipped region."""
    a = as_tensor(a)
    out_data = _np(get_backend().clip(a.data, low, high))

    def backward(grad: np.ndarray):
        mask = (a.data >= low) & (a.data <= high)
        return (grad * mask,)

    return a._make_child(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Sum reduction over ``axis`` (all elements when ``None``)."""
    a = as_tensor(a)
    out_data = _np(get_backend().sum(a.data, axis=axis, keepdims=keepdims))

    def backward(grad: np.ndarray):
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            g = np.expand_dims(g, axis=tuple(ax % a.ndim for ax in axes))
        return (np.broadcast_to(g, a.shape).copy(),)

    return a._make_child(out_data, (a,), backward)


def mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction over ``axis``."""
    a = as_tensor(a)
    out_data = _np(get_backend().mean(a.data, axis=axis, keepdims=keepdims))
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax] for ax in axes]))

    def backward(grad: np.ndarray):
        g = np.asarray(grad) / count
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            g = np.expand_dims(g, axis=tuple(ax % a.ndim for ax in axes))
        return (np.broadcast_to(g, a.shape).copy(),)

    return a._make_child(out_data, (a,), backward)


def max(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction; ties split gradient evenly among argmax entries."""
    a = as_tensor(a)
    out_data = _np(get_backend().max(a.data, axis=axis, keepdims=keepdims))

    def backward(grad: np.ndarray):
        expanded = a.data.max(axis=axis, keepdims=True)
        mask = (a.data == expanded).astype(np.float64)
        mask /= mask.sum(axis=axis, keepdims=True)
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            g = np.expand_dims(g, axis=tuple(ax % a.ndim for ax in axes))
        return (mask * g,)

    return a._make_child(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """View with a new shape (same number of elements)."""
    a = as_tensor(a)
    out_data = _np(get_backend().reshape(a.data, shape))

    def backward(grad: np.ndarray):
        return (grad.reshape(a.shape),)

    return a._make_child(out_data, (a,), backward)


def transpose(a: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Axis permutation (full reversal when ``axes`` is ``None``)."""
    a = as_tensor(a)
    out_data = _np(get_backend().transpose(a.data, axes))

    def backward(grad: np.ndarray):
        if axes is None:
            return (grad.transpose(),)
        inverse = np.argsort(axes)
        return (grad.transpose(inverse),)

    return a._make_child(out_data, (a,), backward)


def concat(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``; gradients split back per input."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = _np(get_backend().concat([t.data for t in tensors], axis=axis))
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        pieces = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [builtins.slice(None)] * grad.ndim
            index[axis] = builtins.slice(int(start), int(stop))
            pieces.append(grad[tuple(index)])
        return tuple(pieces)

    return tensors[0]._make_child(out_data, tensors, backward)


def getitem(a: ArrayLike, index) -> Tensor:
    """Indexing/slicing; repeated fancy indices accumulate gradients.

    NumPy-only (not backend-dispatched): the backward pass is a fancy-index
    scatter (``np.add.at``) with no array-API equivalent.
    """
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return a._make_child(out_data, (a,), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select from ``a`` where ``condition`` is true, else ``b``.

    The condition is a constant boolean array (not differentiated).
    """
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = _np(get_backend().where(cond, a.data, b.data))

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * cond, a.shape),
            _unbroadcast(grad * ~cond, b.shape),
        )

    return a._make_child(out_data, (a, b), backward)


def dropout_mask(shape: Tuple[int, ...], rate: float, rng: np.random.Generator) -> np.ndarray:
    """Sample an inverted-dropout mask: zeros with probability ``rate``.

    Kept separate from the tape (and from the backend — RNG is host-side);
    multiply a tensor by the returned constant array to apply dropout.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(np.float64) / keep


# ----------------------------------------------------------------------
# Op-level profiling hooks (repro.obs.profiler)
# ----------------------------------------------------------------------
_OP_PROFILER = get_op_profiler()  # process-wide singleton, bound once


def _profiled(fn, name: str):
    """Wrap an op: time the forward and tag the output for backward timing.

    The disabled path is one attribute read (`enabled`) on top of the call
    itself — the same overhead contract as `recorder.enabled` sites.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not _OP_PROFILER.enabled:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        _OP_PROFILER.record_forward(name, time.perf_counter() - start, out.data.nbytes)
        out._op = name
        return out

    return wrapper


for _name in __all__:
    if _name == "dropout_mask":  # returns a plain ndarray, not a tape op
        continue
    globals()[_name] = _profiled(globals()[_name], _name)
del _name
