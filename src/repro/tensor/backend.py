"""Pluggable tensor backend: the array substrate behind ``repro.tensor``.

The paper's scalability story runs batched Sinkhorn sweeps on a GPU
(PyTorch + TITAN Xp); this reproduction keeps a single autodiff graph and
swaps the *array substrate* underneath it instead.  A
:class:`TensorBackend` is a small, explicit protocol — the ~30 array
primitives that ``repro.tensor.ops`` and the Sinkhorn solvers actually
dispatch (:data:`PROTOCOL_FUNCTIONS`).  NumPy is the default and the
reference implementation; any array-API-compatible namespace
(``array_api_strict``, CuPy's array-API namespace, NumPy ≥ 2 itself)
plugs in through :class:`ArrayApiBackend` without touching the graph.

Contract (``docs/backends.md``):

* Backend methods accept NumPy arrays *and* backend-native arrays, and
  return backend-native arrays; :meth:`TensorBackend.to_numpy` is the one
  explicit exit back to host NumPy.
* The autodiff tape stays NumPy: each op in ``repro.tensor.ops`` runs its
  forward kernel on the active backend and converts the result back, so
  ``Tensor.data`` / ``Tensor.grad`` are always ``np.ndarray`` regardless
  of backend.  Hot loops that want to stay native across many kernels
  (the batched Sinkhorn solver) hold backend arrays themselves and
  convert once at the boundary.
* Not dispatched: fancy-index scatter (``ops.getitem``'s backward uses
  ``np.add.at``), dropout RNG, and host-side bookkeeping.  These run on
  NumPy always.

Selection: :func:`set_backend` (a backend instance, a namespace module,
or a name such as ``"numpy"`` / ``"array_api_strict"``), the
``REPRO_BACKEND`` environment variable (read once, at first use), or the
:func:`use_backend` context manager for scoped swaps in tests.
:func:`validate_backend` smoke-checks protocol conformance — every
required primitive present plus a tiny known-answer computation — and
runs automatically inside :func:`set_backend`.
"""

from __future__ import annotations

import importlib
import math
import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence, Union

import numpy as np

__all__ = [
    "PROTOCOL_FUNCTIONS",
    "TensorBackend",
    "NumpyBackend",
    "ArrayApiBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "validate_backend",
]

#: The explicit protocol: every backend must expose these callables.
PROTOCOL_FUNCTIONS = (
    # creation / conversion
    "asarray",
    "to_numpy",
    "zeros",
    "zeros_like",
    "ones_like",
    "full",
    # elementwise
    "exp",
    "log",
    "log1p",
    "sqrt",
    "tanh",
    "abs",
    "sign",
    "maximum",
    "where",
    "clip",
    "isfinite",
    # reductions
    "sum",
    "mean",
    "max",
    "logsumexp",
    # shape / linalg
    "reshape",
    "transpose",
    "swapaxes",
    "broadcast_to",
    "concat",
    "stack",
    "matmul",
    "outer",
)


class TensorBackend:
    """Protocol base: the primitives ``repro.tensor`` dispatches.

    Subclasses implement every name in :data:`PROTOCOL_FUNCTIONS`.
    Methods take NumPy or native arrays and return *native* arrays;
    :meth:`to_numpy` converts back.  The base class implements
    :meth:`logsumexp` generically from ``max``/``exp``/``sum``/``log`` so
    adapters only override it when the namespace has a fused kernel.
    """

    name: str = "abstract"

    # -- conversion ----------------------------------------------------
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        raise NotImplementedError

    def to_numpy(self, x: Any) -> np.ndarray:
        raise NotImplementedError

    # -- generic stable logsumexp --------------------------------------
    def logsumexp(self, x: Any, axis: Optional[int] = None, keepdims: bool = False) -> Any:
        """Shift-stabilised ``log(sum(exp(x)))`` along ``axis``."""
        x = self.asarray(x)
        shift = self.max(x, axis=axis, keepdims=True)
        # An all -inf slice would make (x - shift) = nan; pin its shift to 0.
        shift = self.where(self.isfinite(shift), shift, self.zeros_like(shift))
        total = self.sum(self.exp(x - shift), axis=axis, keepdims=True)
        out = self.log(total) + shift
        if not keepdims and axis is not None:
            out = self._squeeze(out, axis)
        elif not keepdims:
            out = self.reshape(out, ())
        return out

    def _squeeze(self, x: Any, axis: int) -> Any:
        shape = list(x.shape)
        del shape[axis % len(shape)]
        return self.reshape(x, tuple(shape))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(TensorBackend):
    """The default backend: direct delegation to NumPy (float64 arrays)."""

    name = "numpy"
    module = np

    def asarray(self, x, dtype=None):
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x):
        return np.asarray(x)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype if dtype is not None else np.float64)

    def zeros_like(self, x):
        return np.zeros_like(x)

    def ones_like(self, x):
        return np.ones_like(x)

    def full(self, shape, fill_value, dtype=None):
        return np.full(shape, fill_value, dtype=dtype if dtype is not None else np.float64)

    def exp(self, x):
        return np.exp(x)

    def log(self, x):
        return np.log(x)

    def log1p(self, x):
        return np.log1p(x)

    def sqrt(self, x):
        return np.sqrt(x)

    def tanh(self, x):
        return np.tanh(x)

    def abs(self, x):
        return np.abs(x)

    def sign(self, x):
        return np.sign(x)

    def maximum(self, x, y):
        return np.maximum(x, y)

    def where(self, cond, x, y):
        return np.where(cond, x, y)

    def clip(self, x, low, high):
        return np.clip(x, low, high)

    def isfinite(self, x):
        return np.isfinite(x)

    def sum(self, x, axis=None, keepdims=False):
        return np.sum(x, axis=axis, keepdims=keepdims)

    def mean(self, x, axis=None, keepdims=False):
        return np.mean(x, axis=axis, keepdims=keepdims)

    def max(self, x, axis=None, keepdims=False):
        return np.max(x, axis=axis, keepdims=keepdims)

    def reshape(self, x, shape):
        return np.reshape(x, shape)

    def transpose(self, x, axes=None):
        return np.transpose(x, axes)

    def swapaxes(self, x, axis1, axis2):
        return np.swapaxes(x, axis1, axis2)

    def broadcast_to(self, x, shape):
        return np.broadcast_to(x, shape)

    def concat(self, arrays, axis=0):
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis=0):
        return np.stack(arrays, axis=axis)

    def matmul(self, x, y):
        return np.matmul(x, y)

    def outer(self, x, y):
        return np.outer(x, y)

    def logsumexp(self, x, axis=None, keepdims=False):
        # Fused override of the generic implementation: same max-shift,
        # same -inf guard, same reduction order — bit-identical results —
        # but one function frame instead of eight dispatched primitives.
        # This is the Sinkhorn solvers' inner kernel, called once per
        # dual sweep, so call overhead is measurable.
        x = np.asarray(x)
        shift = x.max(axis=axis, keepdims=True)
        finite = np.isfinite(shift)
        if not finite.all():
            shift = np.where(finite, shift, 0.0)
        out = np.log(np.exp(x - shift).sum(axis=axis, keepdims=True)) + shift
        if not keepdims:
            out = out.reshape(
                () if axis is None else _squeezed_shape(out.shape, axis)
            )
        return out


def _squeezed_shape(shape: Sequence[int], axis: int) -> tuple:
    shape = list(shape)
    del shape[axis % len(shape)]
    return tuple(shape)


class ArrayApiBackend(TensorBackend):
    """Adapter wrapping any array-API-compatible namespace.

    Built from standard names only (``exp``, ``concat``, ``permute_dims``,
    ``expand_dims``, …) so ``array_api_strict``, NumPy ≥ 2's main
    namespace, or CuPy's array-API namespace all fit.  Inputs are coerced
    with ``xp.asarray`` per call; :meth:`to_numpy` tries the buffer
    protocol first and falls back to DLPack for namespaces whose arrays
    refuse ``np.asarray``.
    """

    def __init__(self, namespace: Any, name: Optional[str] = None) -> None:
        self.module = namespace
        self.name = name if name is not None else getattr(
            namespace, "__name__", type(namespace).__name__
        )
        self._float = getattr(namespace, "float64")

    def _coerce(self, x: Any) -> Any:
        xp = self.module
        if isinstance(x, np.ndarray) or np.isscalar(x) or isinstance(x, (list, tuple)):
            return xp.asarray(x)
        return x

    def asarray(self, x, dtype=None):
        xp = self.module
        if isinstance(x, np.generic):  # NumPy scalar types confuse strict modes
            x = x.item()
        if dtype is not None:
            return xp.asarray(x, dtype=dtype)
        return xp.asarray(x)

    def to_numpy(self, x):
        try:
            return np.asarray(x)
        except (TypeError, RuntimeError):
            return np.from_dlpack(x)

    def zeros(self, shape, dtype=None):
        return self.module.zeros(shape, dtype=dtype if dtype is not None else self._float)

    def zeros_like(self, x):
        return self.module.zeros_like(self._coerce(x))

    def ones_like(self, x):
        return self.module.ones_like(self._coerce(x))

    def full(self, shape, fill_value, dtype=None):
        return self.module.full(
            shape, fill_value, dtype=dtype if dtype is not None else self._float
        )

    def exp(self, x):
        return self.module.exp(self._coerce(x))

    def log(self, x):
        return self.module.log(self._coerce(x))

    def log1p(self, x):
        return self.module.log1p(self._coerce(x))

    def sqrt(self, x):
        return self.module.sqrt(self._coerce(x))

    def tanh(self, x):
        return self.module.tanh(self._coerce(x))

    def abs(self, x):
        return self.module.abs(self._coerce(x))

    def sign(self, x):
        return self.module.sign(self._coerce(x))

    def maximum(self, x, y):
        x = self._coerce(x)
        y = self._coerce(y)
        if hasattr(self.module, "maximum"):
            return self.module.maximum(x, self.module.asarray(y, dtype=x.dtype))
        return self.module.where(x >= y, x, y)

    def where(self, cond, x, y):
        xp = self.module
        cond = xp.asarray(self._coerce(cond), dtype=xp.bool)
        x = self._coerce(x)
        y = self._coerce(y)
        # Strict namespaces refuse mixed int/float scalars: unify dtype.
        if hasattr(x, "dtype") and hasattr(y, "dtype") and x.dtype != y.dtype:
            y = xp.astype(y, x.dtype)
        return xp.where(cond, x, y)

    def clip(self, x, low, high):
        x = self._coerce(x)
        return self.module.clip(x, float(low), float(high))

    def isfinite(self, x):
        return self.module.isfinite(self._coerce(x))

    def sum(self, x, axis=None, keepdims=False):
        return self.module.sum(self._coerce(x), axis=axis, keepdims=keepdims)

    def mean(self, x, axis=None, keepdims=False):
        return self.module.mean(self._coerce(x), axis=axis, keepdims=keepdims)

    def max(self, x, axis=None, keepdims=False):
        return self.module.max(self._coerce(x), axis=axis, keepdims=keepdims)

    def reshape(self, x, shape):
        return self.module.reshape(self._coerce(x), shape)

    def transpose(self, x, axes=None):
        x = self._coerce(x)
        if axes is None:
            axes = tuple(reversed(range(x.ndim)))
        return self.module.permute_dims(x, tuple(axes))

    def swapaxes(self, x, axis1, axis2):
        x = self._coerce(x)
        axes = list(range(x.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.module.permute_dims(x, tuple(axes))

    def broadcast_to(self, x, shape):
        return self.module.broadcast_to(self._coerce(x), shape)

    def concat(self, arrays, axis=0):
        return self.module.concat([self._coerce(a) for a in arrays], axis=axis)

    def stack(self, arrays, axis=0):
        return self.module.stack([self._coerce(a) for a in arrays], axis=axis)

    def matmul(self, x, y):
        return self.module.matmul(self._coerce(x), self._coerce(y))

    def outer(self, x, y):
        xp = self.module
        x = self._coerce(x)
        y = self._coerce(y)
        if hasattr(xp, "linalg") and hasattr(xp.linalg, "outer"):
            return xp.linalg.outer(x, y)
        return xp.reshape(x, (-1, 1)) * xp.reshape(y, (1, -1))


def validate_backend(backend: TensorBackend) -> TensorBackend:
    """Protocol conformance check: required callables + a known answer.

    Raises ``TypeError`` naming the first missing primitive, or
    ``ValueError`` when the smoke computation (a 2×3 ``logsumexp`` sweep,
    the Sinkhorn solver's inner kernel) disagrees with NumPy.
    """
    for name in PROTOCOL_FUNCTIONS:
        if not callable(getattr(backend, name, None)):
            raise TypeError(
                f"backend {backend.name!r} does not implement the TensorBackend "
                f"protocol: missing callable {name!r}"
            )
    probe = np.array([[0.0, 1.0, -1.0], [2.0, 2.0, 2.0]])
    expected = np.array(
        [math.log(1.0 + math.e + math.exp(-1.0)), math.log(3.0) + 2.0]
    )
    got = backend.to_numpy(backend.logsumexp(backend.asarray(probe), axis=1))
    if got.shape != (2,) or not np.allclose(got, expected, atol=1e-12):
        raise ValueError(
            f"backend {backend.name!r} failed the logsumexp known-answer check: "
            f"got {got!r}, expected {expected!r}"
        )
    return backend


_NUMPY_BACKEND = NumpyBackend()
_ACTIVE: Optional[TensorBackend] = None  # resolved lazily (REPRO_BACKEND)


def _resolve(spec: Union[str, Any, TensorBackend]) -> TensorBackend:
    if isinstance(spec, TensorBackend):
        return spec
    if isinstance(spec, str):
        if spec in ("numpy", "np", ""):
            return _NUMPY_BACKEND
        try:
            module = importlib.import_module(spec)
        except ImportError as exc:
            raise ValueError(
                f"cannot resolve tensor backend {spec!r}: {exc}"
            ) from exc
        return ArrayApiBackend(module)
    if spec is np:
        return _NUMPY_BACKEND
    return ArrayApiBackend(spec)


def get_backend() -> TensorBackend:
    """The active backend; first call honours ``REPRO_BACKEND`` (default NumPy)."""
    global _ACTIVE
    if _ACTIVE is None:
        spec = os.environ.get("REPRO_BACKEND", "numpy")
        _ACTIVE = validate_backend(_resolve(spec))
    return _ACTIVE


def set_backend(spec: Union[str, Any, TensorBackend, None]) -> TensorBackend:
    """Install (and validate) the process-wide backend; returns it.

    ``spec`` is a :class:`TensorBackend`, an array-API namespace module,
    a module name string, or ``None``/``"numpy"`` for the default.
    Switching backends mid-computation is not thread-safe; do it at
    process start or under :func:`use_backend` in tests.
    """
    global _ACTIVE
    backend = validate_backend(_resolve("numpy" if spec is None else spec))
    _ACTIVE = backend
    return backend


@contextmanager
def use_backend(spec: Union[str, Any, TensorBackend]) -> Iterator[TensorBackend]:
    """Scoped :func:`set_backend`: restores the previous backend on exit."""
    previous = get_backend()
    backend = set_backend(spec)
    try:
        yield backend
    finally:
        set_backend(previous)
