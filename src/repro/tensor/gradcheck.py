"""Numerical gradient verification for the autodiff engine.

Used heavily by the test suite to certify every op against central finite
differences, the same technique the original autodiff literature recommends.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs).sum()`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(func(*inputs).data.sum())
        flat[i] = original - eps
        lower = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients match finite differences for all inputs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
