"""Global gradient-recording mode.

The autodiff tape can be switched off wholesale (e.g. while solving the
optimal-transport plan, which the envelope theorem treats as a constant) with
the :func:`no_grad` context manager, mirroring the familiar PyTorch idiom::

    with no_grad():
        plan = sinkhorn(cost)
"""

from __future__ import annotations

import contextlib
import threading

__all__ = ["is_grad_enabled", "no_grad", "set_grad_enabled"]

_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded on the autodiff tape."""
    return getattr(_STATE, "enabled", True)


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient recording for this thread."""
    _STATE.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording inside its block."""
    previous = is_grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)
