"""Reverse-mode automatic differentiation on NumPy.

Public surface:

* :class:`Tensor` — the differentiable array type.
* :mod:`repro.tensor.ops` — functional ops (also exposed as Tensor methods).
* :func:`no_grad` — disable tape recording (used around the Sinkhorn solver).
* :func:`check_gradients` — finite-difference verification helper.
* :mod:`repro.tensor.backend` — pluggable array backend (NumPy default;
  any array-API namespace via :func:`set_backend` / ``REPRO_BACKEND``).
"""

from . import ops
from .backend import (
    ArrayApiBackend,
    NumpyBackend,
    TensorBackend,
    get_backend,
    set_backend,
    use_backend,
    validate_backend,
)
from .grad_mode import is_grad_enabled, no_grad, set_grad_enabled
from .gradcheck import check_gradients, numerical_gradient
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "ops",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "check_gradients",
    "numerical_gradient",
    "TensorBackend",
    "NumpyBackend",
    "ArrayApiBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "validate_backend",
]
