"""A small reverse-mode automatic-differentiation engine on NumPy.

This module is the computational substrate for every neural model in the
repository (GAIN, GINN, the autoencoder baselines, the downstream prediction
heads) and for the differentiable masking-Sinkhorn loss.  It provides a
:class:`Tensor` that records elementary operations on a tape and replays them
in reverse topological order on :meth:`Tensor.backward`.

Design notes
------------
* Data is kept in ``float64`` by default so that numerical gradient checking
  (``repro.tensor.gradcheck``) is tight; models that care about speed may pass
  ``float32`` arrays explicitly.
* Broadcasting follows NumPy semantics; gradients of broadcast operands are
  reduced back to the operand's shape by :func:`_unbroadcast`.
* The tape is a DAG of parent references.  ``backward`` accumulates into
  ``Tensor.grad`` (a plain ndarray), so parameters can be reused across many
  forward passes within one step.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.profiler import get_op_profiler
from .grad_mode import is_grad_enabled

__all__ = ["Tensor", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array that supports reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_op")

    # Make ndarray.__mul__ defer to Tensor.__rmul__ etc.
    __array_priority__ = 100.0

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name
        self._op: Optional[str] = None  # producing op, set only while profiling

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, threshold=6)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to ones, so calling ``loss.backward()`` on a scalar
        loss seeds the chain rule with ``dL/dL = 1``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        # Topological order via iterative DFS (recursion-free for deep nets).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        profiler = get_op_profiler()
        profile = profiler.enabled
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward is not None:
                if profile:
                    t0 = time.perf_counter()
                    parent_grads = node._backward(node_grad)
                    profiler.record_backward(
                        node._op or "unattributed", time.perf_counter() - t0
                    )
                else:
                    parent_grads = node._backward(node_grad)
                for parent, pgrad in zip(node._parents, parent_grads):
                    if pgrad is None or not (
                        parent.requires_grad or parent._backward is not None
                    ):
                        continue
                    key = id(parent)
                    if key in grads:
                        grads[key] = grads[key] + pgrad
                    else:
                        grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from . import ops

        return ops.getitem(self, index)

    # ------------------------------------------------------------------
    # Method-style op aliases
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None) -> "Tensor":
        from . import ops

        return ops.transpose(self, axes=axes)

    def exp(self) -> "Tensor":
        from . import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from . import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        from . import ops

        return ops.sqrt(self)

    def abs(self) -> "Tensor":
        from . import ops

        return ops.abs(self)

    def tanh(self) -> "Tensor":
        from . import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        from . import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        from . import ops

        return ops.relu(self)

    def clip(self, low: float, high: float) -> "Tensor":
        from . import ops

        return ops.clip(self, low, high)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
