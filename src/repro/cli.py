"""Command-line interface.

Four subcommands cover the everyday workflows:

``repro impute``
    Impute a CSV with any registered method (or SCIS on top of a GAN
    method) and write the completed CSV.

``repro datagen``
    Emit one of the six COVID-like synthetic datasets as CSV.

``repro evaluate``
    Hold out observed cells from a CSV, impute, and report RMSE/MAE —
    the paper's §VI protocol on your own data.

``repro obs``
    Summarize or dump a telemetry trace captured with ``--trace`` (on
    ``impute``/``evaluate``) or with :func:`repro.obs.recording`.

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from .core import SCIS, DimConfig, ScisConfig
from .data import (
    IncompleteDataset,
    MinMaxNormalizer,
    generate,
    holdout_split,
    read_csv,
    write_csv,
)
from .models import GenerativeImputer, make_imputer
from .models.registry import REGISTRY
from .obs import (
    events_to_csv,
    load_trace,
    recording,
    summarize_trace,
    write_json_trace,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCIS: differentiable and scalable GAN-based data imputation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    impute = sub.add_parser("impute", help="impute a CSV file")
    impute.add_argument("input", help="input CSV (empty/NA/nan cells are missing)")
    impute.add_argument("output", help="output CSV for the imputed table")
    impute.add_argument(
        "--method",
        default="gain",
        choices=sorted(REGISTRY),
        help="imputation method (default: gain)",
    )
    impute.add_argument(
        "--scis",
        action="store_true",
        help="wrap the (GAN) method in SCIS for sample-size-optimised training",
    )
    impute.add_argument("--epochs", type=int, default=100)
    impute.add_argument("--initial-size", type=int, default=500, help="SCIS n0")
    impute.add_argument("--error-bound", type=float, default=0.02, help="SCIS epsilon")
    impute.add_argument("--seed", type=int, default=0)
    impute.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record training telemetry and write a JSON trace to PATH",
    )

    datagen = sub.add_parser("datagen", help="generate a synthetic COVID-like CSV")
    datagen.add_argument("name", choices=["trial", "emergency", "response", "search", "weather", "surveil"])
    datagen.add_argument("output")
    datagen.add_argument("--samples", type=int, default=None)
    datagen.add_argument("--seed", type=int, default=0)

    evaluate = sub.add_parser("evaluate", help="holdout-evaluate a method on a CSV")
    evaluate.add_argument("input")
    evaluate.add_argument("--method", default="gain", choices=sorted(REGISTRY))
    evaluate.add_argument("--scis", action="store_true")
    evaluate.add_argument("--holdout", type=float, default=0.2)
    evaluate.add_argument("--epochs", type=int, default=100)
    evaluate.add_argument("--initial-size", type=int, default=500)
    evaluate.add_argument("--error-bound", type=float, default=0.02)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record training telemetry and write a JSON trace to PATH",
    )

    obs = sub.add_parser("obs", help="inspect a telemetry trace (JSON)")
    obs.add_argument("action", choices=["summarize", "dump"])
    obs.add_argument("trace", help="trace JSON written by --trace or write_json_trace")
    obs.add_argument(
        "--format",
        dest="fmt",
        default="csv",
        choices=["csv", "json"],
        help="dump format (default: csv)",
    )
    obs.add_argument(
        "--event",
        default="",
        help="restrict dump to one event name (e.g. dim.epoch)",
    )
    obs.add_argument("--output", default=None, help="write to file instead of stdout")
    return parser


def _make_runner(args):
    """Build the imputer (optionally SCIS-wrapped) from CLI arguments."""
    seedless = {"mean", "median", "mode", "knn", "constant", "em"}
    kwargs = {} if args.method in seedless else {"seed": args.seed}
    if args.method in ("gain", "ginn", "datawig", "rrsi", "midae", "vaei", "miwae",
                       "eddi", "hivae"):
        kwargs["epochs"] = args.epochs
    model = make_imputer(args.method, **kwargs)
    if not args.scis:
        return model
    if not isinstance(model, GenerativeImputer):
        raise SystemExit(
            f"--scis requires a GAN-based method (gain, ginn); got {args.method!r}"
        )
    config = ScisConfig(
        initial_size=args.initial_size,
        error_bound=args.error_bound,
        dim=DimConfig(epochs=args.epochs),
        seed=args.seed,
    )
    return SCIS(model, config)


def _impute(runner, dataset: IncompleteDataset):
    """Run the imputer and return (imputed matrix, sample rate)."""
    if isinstance(runner, SCIS):
        result = runner.fit_transform(dataset)
        return result.imputed, result.sample_rate
    return runner.fit_transform(dataset), 1.0


def _cmd_impute(args) -> int:
    dataset = read_csv(args.input)
    print(f"loaded {dataset}", file=sys.stderr)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(dataset)
    runner = _make_runner(args)
    start = time.perf_counter()
    if args.trace is not None:
        with recording() as rec:
            imputed, sample_rate = _impute(runner, normalized)
        write_json_trace(rec, args.trace)
        print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
    else:
        imputed, sample_rate = _impute(runner, normalized)
    elapsed = time.perf_counter() - start
    restored = normalizer.inverse_transform(imputed)
    out = IncompleteDataset(
        restored, feature_names=list(dataset.feature_names), name=dataset.name
    )
    write_csv(out, args.output)
    print(
        f"imputed {dataset.shape[0]}x{dataset.shape[1]} table in {elapsed:.1f}s "
        f"(training sample rate {sample_rate:.1%}) -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_datagen(args) -> int:
    generated = generate(args.name, n_samples=args.samples, seed=args.seed)
    write_csv(generated.dataset, args.output)
    print(
        f"wrote {generated.dataset.n_samples}x{generated.dataset.n_features} "
        f"{args.name} table ({generated.dataset.missing_rate:.1%} missing) "
        f"-> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_evaluate(args) -> int:
    dataset = read_csv(args.input)
    normalized = MinMaxNormalizer().fit_transform(dataset)
    holdout = holdout_split(normalized, args.holdout, np.random.default_rng(args.seed))
    runner = _make_runner(args)
    start = time.perf_counter()
    if args.trace is not None:
        with recording() as rec:
            imputed, sample_rate = _impute(runner, holdout.train)
        write_json_trace(rec, args.trace)
        print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
    else:
        imputed, sample_rate = _impute(runner, holdout.train)
    elapsed = time.perf_counter() - start
    method = f"scis-{args.method}" if args.scis else args.method
    print(f"method:      {method}")
    print(f"rmse:        {holdout.rmse(imputed):.4f}")
    print(f"mae:         {holdout.mae(imputed):.4f}")
    print(f"time:        {elapsed:.1f}s")
    print(f"sample rate: {sample_rate:.1%}")
    return 0


def _cmd_obs(args) -> int:
    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro obs: {exc}")
    if args.action == "summarize":
        text = summarize_trace(trace)
    elif args.fmt == "csv":
        text = events_to_csv(trace, event_name=args.event)
    else:
        import json

        events = trace["events"]
        if args.event:
            events = [e for e in events if e["name"] == args.event]
        text = json.dumps({**trace, "events": events, "n_events": len(events)}, indent=2)
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.action} -> {args.output}", file=sys.stderr)
    else:
        try:
            print(text)
        except BrokenPipeError:  # e.g. `repro obs summarize t.json | head`
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: dispatch to the selected subcommand, return exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "impute": _cmd_impute,
        "datagen": _cmd_datagen,
        "evaluate": _cmd_evaluate,
        "obs": _cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
