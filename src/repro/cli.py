"""Command-line interface.

Four subcommands cover the everyday workflows:

``repro impute``
    Impute a CSV with any registered method (or SCIS on top of a GAN
    method) and write the completed CSV.

``repro datagen``
    Emit one of the six COVID-like synthetic datasets as CSV.

``repro evaluate``
    Hold out observed cells from a CSV, impute, and report RMSE/MAE —
    the paper's §VI protocol on your own data.

``repro obs``
    Summarize or dump a telemetry trace captured with ``--trace`` (on
    ``impute``/``evaluate``) or with :func:`repro.obs.recording`, or
    ``diff`` a run against a persisted bench baseline and flag metric
    regressions.

``repro profile``
    Render the per-op autodiff profile recorded in a trace (run
    ``impute``/``evaluate`` with ``--trace --profile``) as a top-k table
    or nested flame JSON.

``repro bench``
    Run the fixed smoke bench (``smoke``), the serving bench
    (``serving``), or the slow scaling tier (``scaling``: time-vs-n
    curves with timeout "—" cells, the SSE n*-vs-full savings run, and
    the out-of-core sharded driver) and write a ``BENCH_<name>.json``
    baseline for later ``repro obs diff`` gating.

``repro serve``
    Imputation-as-a-service (contract: ``docs/serving.md``): ``fit``
    trains an imputer and persists it into a model registry, ``list``
    shows registry entries, and ``run`` starts a long-lived serving
    process that answers JSONL impute requests — single rows and bulk
    CSVs — with micro-batching, until EOF or a shutdown request.

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from .core import SCIS, DimConfig, DimImputer, ScisConfig
from .data import (
    IncompleteDataset,
    MinMaxNormalizer,
    generate,
    holdout_split,
    read_csv,
    write_csv,
)
from .models import GenerativeImputer, make_imputer
from .models.registry import REGISTRY
from .obs import (
    events_to_csv,
    flame_from_profile,
    format_profile_table,
    load_trace,
    profile_from_trace,
    profiling,
    recording,
    summarize_trace,
    write_json_trace,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCIS: differentiable and scalable GAN-based data imputation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    impute = sub.add_parser("impute", help="impute a CSV file")
    impute.add_argument("input", help="input CSV (empty/NA/nan cells are missing)")
    impute.add_argument("output", help="output CSV for the imputed table")
    impute.add_argument(
        "--method",
        default="gain",
        choices=sorted(REGISTRY),
        help="imputation method (default: gain)",
    )
    impute.add_argument(
        "--scis",
        action="store_true",
        help="wrap the (GAN) method in SCIS for sample-size-optimised training",
    )
    impute.add_argument("--epochs", type=int, default=100)
    impute.add_argument("--initial-size", type=int, default=500, help="SCIS n0")
    impute.add_argument("--error-bound", type=float, default=0.02, help="SCIS epsilon")
    impute.add_argument("--seed", type=int, default=0)
    impute.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for parallelisable phases (SCIS's SSE "
        "sampling); default: REPRO_WORKERS env var, else serial",
    )
    impute.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record training telemetry and write a JSON trace to PATH",
    )
    impute.add_argument(
        "--profile",
        action="store_true",
        help="also record per-op autodiff timings into the trace "
        "(requires --trace; render with `repro profile`)",
    )

    datagen = sub.add_parser("datagen", help="generate a synthetic COVID-like CSV")
    datagen.add_argument("name", choices=["trial", "emergency", "response", "search", "weather", "surveil"])
    datagen.add_argument("output")
    datagen.add_argument("--samples", type=int, default=None)
    datagen.add_argument("--seed", type=int, default=0)
    datagen.add_argument(
        "--shards",
        action="store_true",
        help="write OUTPUT as a sharded store directory (out-of-core "
        "generation: O(--shard-rows) memory at any --samples, e.g. the "
        "paper-scale full sizes) instead of a CSV",
    )
    datagen.add_argument(
        "--shard-rows",
        type=int,
        default=100_000,
        help="rows per shard for --shards (default: 100000)",
    )

    evaluate = sub.add_parser("evaluate", help="holdout-evaluate a method on a CSV")
    evaluate.add_argument("input")
    evaluate.add_argument("--method", default="gain", choices=sorted(REGISTRY))
    evaluate.add_argument("--scis", action="store_true")
    evaluate.add_argument("--holdout", type=float, default=0.2)
    evaluate.add_argument("--epochs", type=int, default=100)
    evaluate.add_argument("--initial-size", type=int, default=500)
    evaluate.add_argument("--error-bound", type=float, default=0.02)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for parallelisable phases (SCIS's SSE "
        "sampling); default: REPRO_WORKERS env var, else serial",
    )
    evaluate.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record training telemetry and write a JSON trace to PATH",
    )
    evaluate.add_argument(
        "--profile",
        action="store_true",
        help="also record per-op autodiff timings into the trace "
        "(requires --trace; render with `repro profile`)",
    )

    obs = sub.add_parser("obs", help="inspect a telemetry trace (JSON)")
    obs.add_argument(
        "action",
        choices=["summarize", "dump", "diff", "waterfall", "export", "tail"],
    )
    obs.add_argument(
        "trace",
        help="trace JSON written by --trace / write_json_trace, a JSONL "
        "event stream (for tail, written by --live), or (for diff) the "
        "BENCH_<name>.json baseline to compare against",
    )
    obs.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="diff only: the candidate run — a trace JSON or another baseline",
    )
    obs.add_argument(
        "--format",
        dest="fmt",
        default=None,
        choices=["csv", "json", "prom"],
        help="dump format (default: csv) or export format (default: prom)",
    )
    obs.add_argument(
        "--event",
        default="",
        help="restrict dump to one event name (e.g. dim.epoch)",
    )
    obs.add_argument(
        "--trace-id",
        default=None,
        help="waterfall only: which trace to render (omit to list the "
        "trace ids present in the file)",
    )
    obs.add_argument(
        "--follow",
        action="store_true",
        help="tail only: keep following the event stream as it grows "
        "(Ctrl-C prints the live summary and exits)",
    )
    obs.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="tail only: sliding-window width in seconds for the live "
        "quantile table (default: 60)",
    )
    obs.add_argument("--output", default=None, help="write to file instead of stdout")
    obs.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="diff only: max tolerated relative increase for "
        "machine-independent metrics (default: 0.25)",
    )
    obs.add_argument(
        "--time-threshold",
        type=float,
        default=0.75,
        help="diff only: max tolerated relative increase for wall-clock "
        "metrics (default: 0.75; pass a huge value to ignore timings)",
    )

    profile = sub.add_parser(
        "profile", help="render the per-op autodiff profile from a trace"
    )
    profile.add_argument(
        "trace", help="trace JSON recorded with --trace --profile"
    )
    profile.add_argument(
        "--top", type=int, default=15, help="rows in the table (default: 15)"
    )
    profile.add_argument(
        "--flame",
        metavar="PATH",
        default=None,
        help="also write the nested flame-style JSON to PATH",
    )

    bench = sub.add_parser("bench", help="run a bench and snapshot a baseline")
    bench.add_argument("action", choices=["smoke", "serving", "scaling"])
    bench.add_argument(
        "--out",
        default=None,
        help="baseline JSON to write (default: BENCH_<action>.json)",
    )
    bench.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="also write the full telemetry trace to PATH",
    )
    bench.add_argument("--samples", type=int, default=96)
    bench.add_argument("--epochs", type=int, default=2)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the (method x dataset) grid / the "
        "shard-impute fan-out; default: REPRO_WORKERS env var, else serial",
    )
    bench.add_argument(
        "--sizes",
        default=None,
        help="scaling only: comma-separated n grid (default: 500,2000,8000)",
    )
    bench.add_argument(
        "--budget",
        type=float,
        default=None,
        help="scaling only: per-cell wall-clock cutoff in seconds "
        "(default: 5.0); over-budget cells become the paper's — cells",
    )
    bench.add_argument(
        "--dataset",
        default="trial",
        help="scaling only: generator to sweep (default: trial)",
    )
    bench.add_argument(
        "--sharded-rows",
        type=int,
        default=None,
        help="scaling only: rows in the out-of-core sharded-driver "
        "measurement (default: 20000)",
    )

    serve = sub.add_parser(
        "serve", help="model registry + long-lived imputation serving"
    )
    serve_sub = serve.add_subparsers(dest="serve_action", required=True)

    serve_fit = serve_sub.add_parser(
        "fit", help="train an imputer on a CSV and persist it to a registry"
    )
    serve_fit.add_argument("input", help="training CSV (empty/NA/nan cells missing)")
    serve_fit.add_argument("--registry", required=True, help="registry directory")
    serve_fit.add_argument(
        "--method",
        default="gain",
        choices=sorted(REGISTRY),
        help="imputation method (default: gain)",
    )
    serve_fit.add_argument(
        "--dim",
        action="store_true",
        help="train the (GAN) method under the DIM masking-Sinkhorn loss",
    )
    serve_fit.add_argument("--epochs", type=int, default=100)
    serve_fit.add_argument("--seed", type=int, default=0)

    serve_list = serve_sub.add_parser("list", help="list registry entries")
    serve_list.add_argument("--registry", required=True, help="registry directory")

    serve_run = serve_sub.add_parser(
        "run",
        help="serve JSONL impute requests from stdin (or a file) until "
        "EOF or a shutdown request",
    )
    serve_run.add_argument("--registry", required=True, help="registry directory")
    serve_run.add_argument(
        "--input",
        default="-",
        help="JSONL request stream (default: - for stdin)",
    )
    serve_run.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="max requests coalesced into one model invocation (default: 64)",
    )
    serve_run.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="seconds the dispatcher waits to coalesce more requests "
        "after the first arrives (default: 0.005)",
    )
    serve_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for multi-key batches; default: serial "
        "(REPRO_WORKERS is deliberately not consulted — forking from the "
        "dispatcher thread is opt-in)",
    )
    serve_run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record serve.* telemetry and write a JSON trace to PATH on exit",
    )
    serve_run.add_argument(
        "--live",
        metavar="PATH",
        default=None,
        help="stream every telemetry event to PATH as JSONL while serving "
        "(follow it live with `repro obs tail PATH --follow`); implies "
        "recording, composes with --trace",
    )
    return parser


def _make_runner(args):
    """Build the imputer (optionally SCIS-wrapped) from CLI arguments."""
    seedless = {"mean", "median", "mode", "knn", "constant", "em"}
    kwargs = {} if args.method in seedless else {"seed": args.seed}
    if args.method in ("gain", "ginn", "datawig", "rrsi", "midae", "vaei", "miwae",
                       "eddi", "hivae", "otdirect"):
        kwargs["epochs"] = args.epochs
    model = make_imputer(args.method, **kwargs)
    if not args.scis:
        return model
    if not isinstance(model, GenerativeImputer):
        raise SystemExit(
            f"--scis requires a GAN-based method (gain, ginn); got {args.method!r}"
        )
    config = ScisConfig(
        initial_size=args.initial_size,
        error_bound=args.error_bound,
        dim=DimConfig(epochs=args.epochs),
        seed=args.seed,
        workers=args.workers,
    )
    return SCIS(model, config)


def _impute(runner, dataset: IncompleteDataset):
    """Run the imputer and return (imputed matrix, sample rate)."""
    if isinstance(runner, SCIS):
        result = runner.fit_transform(dataset)
        return result.imputed, result.sample_rate
    return runner.fit_transform(dataset), 1.0


def _traced_impute(args, runner, dataset):
    """Run ``_impute`` under the requested telemetry/profiling wrappers."""
    if args.trace is None:
        if args.profile:
            print(
                "repro: --profile needs --trace (the profile is stored in "
                "the trace)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return _impute(runner, dataset)
    with recording() as rec:
        if args.profile:
            # profiling() folds the per-op aggregates into the recorder as
            # profiler.* events on exit — while the recording is still open.
            with profiling():
                result = _impute(runner, dataset)
        else:
            result = _impute(runner, dataset)
    write_json_trace(rec, args.trace)
    print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
    return result


def _cmd_impute(args) -> int:
    dataset = read_csv(args.input)
    print(f"loaded {dataset}", file=sys.stderr)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(dataset)
    runner = _make_runner(args)
    start = time.perf_counter()
    imputed, sample_rate = _traced_impute(args, runner, normalized)
    elapsed = time.perf_counter() - start
    restored = normalizer.inverse_transform(imputed)
    out = IncompleteDataset(
        restored, feature_names=list(dataset.feature_names), name=dataset.name
    )
    write_csv(out, args.output)
    print(
        f"imputed {dataset.shape[0]}x{dataset.shape[1]} table in {elapsed:.1f}s "
        f"(training sample rate {sample_rate:.1%}) -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_datagen(args) -> int:
    if args.shards:
        from .data import generate_sharded

        store = generate_sharded(
            args.name,
            args.output,
            n_samples=args.samples,
            seed=args.seed,
            shard_rows=args.shard_rows,
        )
        print(
            f"wrote {store.rows}x{store.n_features} {args.name} store "
            f"({store.n_shards} shards of <= {args.shard_rows} rows, "
            f"fingerprint {store.manifest.fingerprint}) -> {args.output}",
            file=sys.stderr,
        )
        return 0
    generated = generate(args.name, n_samples=args.samples, seed=args.seed)
    write_csv(generated.dataset, args.output)
    print(
        f"wrote {generated.dataset.n_samples}x{generated.dataset.n_features} "
        f"{args.name} table ({generated.dataset.missing_rate:.1%} missing) "
        f"-> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_evaluate(args) -> int:
    dataset = read_csv(args.input)
    normalized = MinMaxNormalizer().fit_transform(dataset)
    holdout = holdout_split(normalized, args.holdout, np.random.default_rng(args.seed))
    runner = _make_runner(args)
    start = time.perf_counter()
    imputed, sample_rate = _traced_impute(args, runner, holdout.train)
    elapsed = time.perf_counter() - start
    method = f"scis-{args.method}" if args.scis else args.method
    print(f"method:      {method}")
    print(f"rmse:        {holdout.rmse(imputed):.4f}")
    print(f"mae:         {holdout.mae(imputed):.4f}")
    print(f"time:        {elapsed:.1f}s")
    print(f"sample rate: {sample_rate:.1%}")
    return 0


def _cmd_obs(args) -> int:
    if args.action == "diff":
        return _obs_diff(args)
    if args.action == "tail":
        return _obs_tail(args)
    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        # Missing or corrupt traces are a user-input problem, not a crash:
        # one line on stderr, exit code 2.
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2
    if args.action == "summarize":
        text = summarize_trace(trace)
    elif args.action == "waterfall":
        from .obs import format_trace_index, format_waterfall

        if args.trace_id is None:
            text = format_trace_index(trace)
        else:
            try:
                text = format_waterfall(trace, args.trace_id)
            except ValueError as exc:
                print(f"repro obs: {exc}", file=sys.stderr)
                return 2
    elif args.action == "export":
        from .obs import prometheus_exposition

        if args.fmt not in (None, "prom"):
            print(
                f"repro obs: export supports --format prom only, got {args.fmt}",
                file=sys.stderr,
            )
            return 2
        text = prometheus_exposition(trace)
    elif args.fmt in (None, "csv"):
        text = events_to_csv(trace, event_name=args.event)
    elif args.fmt == "prom":
        print(
            "repro obs: --format prom belongs to `repro obs export`",
            file=sys.stderr,
        )
        return 2
    else:
        import json

        events = trace["events"]
        if args.event:
            events = [e for e in events if e["name"] == args.event]
        text = json.dumps({**trace, "events": events, "n_events": len(events)}, indent=2)
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.action} -> {args.output}", file=sys.stderr)
    else:
        try:
            print(text)
        except BrokenPipeError:  # e.g. `repro obs summarize t.json | head`
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _obs_tail(args) -> int:
    """``repro obs tail <events.jsonl>``: live quantiles over an event stream.

    Without ``--follow``, drains the file and prints the end-of-stream
    sliding-window table.  With ``--follow``, echoes events as they are
    appended and prints the table on Ctrl-C (or when the writer stops and
    the user interrupts).
    """
    from .obs import LiveAggregator, tail_events

    aggregator = LiveAggregator(window_seconds=args.window)
    try:
        for event in tail_events(args.trace, follow=args.follow):
            aggregator.ingest(event)
            if args.follow:
                fields = " ".join(
                    f"{k}={v}" for k, v in (event.get("fields") or {}).items()
                )
                print(f"{float(event.get('t', 0.0)):10.3f}s {event['name']} {fields}")
        print(aggregator.render())
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe — normal
        # for a tail command; suppress the shutdown flush error too.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except OSError as exc:
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(aggregator.render())
    return 0


def _obs_diff(args) -> int:
    """``repro obs diff <baseline> <trace-or-baseline>``: flag regressions."""
    from .bench.baselines import diff_baselines, format_diff, load_baseline

    if args.candidate is None:
        print(
            "repro obs: diff needs two files: <baseline> <trace-or-baseline>",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_baseline(args.trace)
        candidate = load_baseline(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2
    deltas = diff_baselines(
        baseline,
        candidate,
        threshold=args.threshold,
        time_threshold=args.time_threshold,
    )
    text = format_diff(deltas)
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote diff -> {args.output}", file=sys.stderr)
    else:
        print(text)
    return 1 if any(d.regressed for d in deltas) else 0


def _cmd_profile(args) -> int:
    try:
        trace = load_trace(args.trace)
        profile = profile_from_trace(trace)
    except (OSError, ValueError) as exc:
        print(f"repro profile: {exc}", file=sys.stderr)
        return 2
    if args.flame is not None:
        import json

        with open(args.flame, "w") as handle:
            json.dump(flame_from_profile(profile), handle, indent=2)
        print(f"wrote flame JSON -> {args.flame}", file=sys.stderr)
    print(format_profile_table(profile, top=args.top))
    return 0


def _cmd_bench(args) -> int:
    from .bench import run_smoke_bench
    from .bench.baselines import (
        snapshot_from_results,
        snapshot_from_trace,
        write_baseline,
    )
    from .obs import trace_to_dict

    from .parallel import ExecutionContext

    if args.out is None:
        args.out = f"BENCH_{args.action}.json"
    if args.action == "serving":
        return _bench_serving(args)
    if args.action == "scaling":
        return _bench_scaling(args)
    start = time.perf_counter()
    with recording() as rec:
        results = run_smoke_bench(
            n_samples=args.samples,
            epochs=args.epochs,
            seed=args.seed,
            context=ExecutionContext.from_env(workers=args.workers),
        )
    trace = trace_to_dict(rec)
    baseline = snapshot_from_results(results, name=args.action)
    # The trace adds the solver/loop metrics bench aggregates can't see.
    for key, value in snapshot_from_trace(trace, name=args.action)["metrics"].items():
        baseline["metrics"].setdefault(key, value)
    write_baseline(baseline, args.out)
    if args.trace is not None:
        write_json_trace(trace, args.trace)
        print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
    print(
        f"smoke bench: {len(results)} runs in {time.perf_counter() - start:.1f}s, "
        f"{len(baseline['metrics'])} metrics -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _bench_scaling(args) -> int:
    """``repro bench scaling``: the slow tier behind the paper's plots."""
    from .bench.baselines import write_baseline
    from .bench.scaling import ScalingConfig, run_scaling_bench, snapshot_from_scaling
    from .obs import trace_to_dict
    from .parallel import ExecutionContext

    config = ScalingConfig(dataset=args.dataset, seed=args.seed, epochs=args.epochs)
    if args.sizes is not None:
        try:
            config.sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
        except ValueError:
            print(
                f"repro bench: --sizes must be comma-separated integers, "
                f"got {args.sizes!r}",
                file=sys.stderr,
            )
            return 2
    if args.budget is not None:
        config.time_budget = args.budget
    if args.sharded_rows is not None:
        config.sharded_rows = args.sharded_rows
    start = time.perf_counter()
    with recording() as rec:
        result = run_scaling_bench(
            config, context=ExecutionContext.from_env(workers=args.workers)
        )
    write_baseline(snapshot_from_scaling(result, name=args.action), args.out)
    if args.trace is not None:
        write_json_trace(trace_to_dict(rec), args.trace)
        print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
    print(result.format())
    print(
        f"scaling bench done in {time.perf_counter() - start:.1f}s -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _bench_serving(args) -> int:
    """``repro bench serving``: run the serving bench, snapshot a baseline."""
    from .bench.baselines import write_baseline
    from .bench.serving import run_serving_bench

    result = run_serving_bench(epochs=args.epochs, seed=args.seed)
    write_baseline(result.baseline, args.out)
    if args.trace is not None:
        write_json_trace(result.trace, args.trace)
        print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
    print(
        f"serving bench: {result.n_requests} requests / {result.n_rows} rows "
        f"in {result.seconds:.1f}s, {len(result.baseline['metrics'])} metrics "
        f"-> {args.out}",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args) -> int:
    """``repro serve {fit,list,run}`` with hardened registry error paths."""
    from .serve import RegistryError

    handlers = {
        "fit": _serve_fit,
        "list": _serve_list,
        "run": _serve_run,
    }
    try:
        return handlers[args.serve_action](args)
    except RegistryError as exc:
        # Registry problems are user-input problems, not crashes: one line
        # naming the offending key (when there is one), exit code 2.
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2


def _serve_fit(args) -> int:
    from .serve import ModelRegistry

    dataset = read_csv(args.input)
    print(f"loaded {dataset}", file=sys.stderr)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(dataset)
    seedless = {"mean", "median", "mode", "knn", "constant", "em"}
    kwargs = {} if args.method in seedless else {"seed": args.seed}
    if args.method in ("gain", "ginn", "datawig", "rrsi", "midae", "vaei", "miwae",
                       "eddi", "hivae", "otdirect"):
        kwargs["epochs"] = args.epochs
    model = make_imputer(args.method, **kwargs)
    if args.dim:
        if not isinstance(model, GenerativeImputer):
            print(
                f"repro serve: --dim requires a GAN-based method (gain, ginn); "
                f"got {args.method!r}",
                file=sys.stderr,
            )
            return 2
        model = DimImputer(model, config=DimConfig(epochs=args.epochs), seed=args.seed)
    start = time.perf_counter()
    model.fit(normalized)
    entry = ModelRegistry(args.registry).save(
        model, dataset=dataset, normalizer=normalizer
    )
    print(
        f"trained + registered {entry.model_name} in "
        f"{time.perf_counter() - start:.1f}s -> {args.registry}",
        file=sys.stderr,
    )
    # The key alone on stdout, so scripts can do KEY=$(repro serve fit ...).
    print(entry.key)
    return 0


def _serve_list(args) -> int:
    from .serve import ModelRegistry

    entries = ModelRegistry(args.registry).entries()
    if not entries:
        print(f"no entries in registry {args.registry}", file=sys.stderr)
        return 0
    for entry in entries:
        print(
            f"{entry['key']}  model={entry['model_name']}  "
            f"d={entry['n_features']}  schema={entry['schema_fingerprint']}"
        )
    return 0


def _serve_run(args) -> int:
    from .parallel import ExecutionContext
    from .serve import ImputationServer, ModelRegistry, ServeConfig, serve_jsonl

    registry = ModelRegistry(args.registry)
    keys = registry.keys()  # validates the manifest up front
    if not keys:
        print(
            f"repro serve: registry {args.registry} has no entries "
            f"(run `repro serve fit` first)",
            file=sys.stderr,
        )
        return 2
    context = (
        ExecutionContext.from_env(workers=args.workers)
        if args.workers is not None
        else ExecutionContext()
    )
    server = ImputationServer(
        registry,
        config=ServeConfig(
            max_batch_requests=args.max_batch,
            batch_window_seconds=args.batch_window,
        ),
        context=context,
    )
    print(
        f"serving {len(keys)} registry entries from {args.registry} "
        f"(JSONL on stdin, EOF or {{\"op\": \"shutdown\"}} to stop)",
        file=sys.stderr,
    )

    def run(in_stream) -> dict:
        if args.trace is None and args.live is None:
            return serve_jsonl(server, in_stream, sys.stdout)
        from .obs import StreamingRecorder

        recorder = (
            StreamingRecorder(args.live) if args.live is not None else None
        )
        try:
            with recording(recorder) as rec:
                stats = serve_jsonl(server, in_stream, sys.stdout)
        finally:
            if recorder is not None:
                recorder.close()
        if args.live is not None:
            print(f"streamed telemetry events -> {args.live}", file=sys.stderr)
        if args.trace is not None:
            write_json_trace(rec, args.trace)
            print(f"wrote telemetry trace -> {args.trace}", file=sys.stderr)
        return stats

    if args.input == "-":
        stats = run(sys.stdin)
    else:
        with open(args.input) as handle:
            stats = run(handle)
    print(
        f"served {server.served_requests} requests / {server.served_rows} rows "
        f"({stats['errors']} errors)",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: dispatch to the selected subcommand, return exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "impute": _cmd_impute,
        "datagen": _cmd_datagen,
        "evaluate": _cmd_evaluate,
        "obs": _cmd_obs,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
