"""Command-line interface.

Three subcommands cover the everyday workflows:

``repro impute``
    Impute a CSV with any registered method (or SCIS on top of a GAN
    method) and write the completed CSV.

``repro datagen``
    Emit one of the six COVID-like synthetic datasets as CSV.

``repro evaluate``
    Hold out observed cells from a CSV, impute, and report RMSE/MAE —
    the paper's §VI protocol on your own data.

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from .core import SCIS, DimConfig, ScisConfig
from .data import (
    IncompleteDataset,
    MinMaxNormalizer,
    generate,
    holdout_split,
    read_csv,
    write_csv,
)
from .models import GenerativeImputer, make_imputer
from .models.registry import REGISTRY

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCIS: differentiable and scalable GAN-based data imputation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    impute = sub.add_parser("impute", help="impute a CSV file")
    impute.add_argument("input", help="input CSV (empty/NA/nan cells are missing)")
    impute.add_argument("output", help="output CSV for the imputed table")
    impute.add_argument(
        "--method",
        default="gain",
        choices=sorted(REGISTRY),
        help="imputation method (default: gain)",
    )
    impute.add_argument(
        "--scis",
        action="store_true",
        help="wrap the (GAN) method in SCIS for sample-size-optimised training",
    )
    impute.add_argument("--epochs", type=int, default=100)
    impute.add_argument("--initial-size", type=int, default=500, help="SCIS n0")
    impute.add_argument("--error-bound", type=float, default=0.02, help="SCIS epsilon")
    impute.add_argument("--seed", type=int, default=0)

    datagen = sub.add_parser("datagen", help="generate a synthetic COVID-like CSV")
    datagen.add_argument("name", choices=["trial", "emergency", "response", "search", "weather", "surveil"])
    datagen.add_argument("output")
    datagen.add_argument("--samples", type=int, default=None)
    datagen.add_argument("--seed", type=int, default=0)

    evaluate = sub.add_parser("evaluate", help="holdout-evaluate a method on a CSV")
    evaluate.add_argument("input")
    evaluate.add_argument("--method", default="gain", choices=sorted(REGISTRY))
    evaluate.add_argument("--scis", action="store_true")
    evaluate.add_argument("--holdout", type=float, default=0.2)
    evaluate.add_argument("--epochs", type=int, default=100)
    evaluate.add_argument("--initial-size", type=int, default=500)
    evaluate.add_argument("--error-bound", type=float, default=0.02)
    evaluate.add_argument("--seed", type=int, default=0)
    return parser


def _make_runner(args):
    """Build the imputer (optionally SCIS-wrapped) from CLI arguments."""
    seedless = {"mean", "median", "mode", "knn", "constant", "em"}
    kwargs = {} if args.method in seedless else {"seed": args.seed}
    if args.method in ("gain", "ginn", "datawig", "rrsi", "midae", "vaei", "miwae",
                       "eddi", "hivae"):
        kwargs["epochs"] = args.epochs
    model = make_imputer(args.method, **kwargs)
    if not args.scis:
        return model
    if not isinstance(model, GenerativeImputer):
        raise SystemExit(
            f"--scis requires a GAN-based method (gain, ginn); got {args.method!r}"
        )
    config = ScisConfig(
        initial_size=args.initial_size,
        error_bound=args.error_bound,
        dim=DimConfig(epochs=args.epochs),
        seed=args.seed,
    )
    return SCIS(model, config)


def _impute(runner, dataset: IncompleteDataset):
    """Run the imputer and return (imputed matrix, sample rate)."""
    if isinstance(runner, SCIS):
        result = runner.fit_transform(dataset)
        return result.imputed, result.sample_rate
    return runner.fit_transform(dataset), 1.0


def _cmd_impute(args) -> int:
    dataset = read_csv(args.input)
    print(f"loaded {dataset}", file=sys.stderr)
    normalizer = MinMaxNormalizer()
    normalized = normalizer.fit_transform(dataset)
    runner = _make_runner(args)
    start = time.perf_counter()
    imputed, sample_rate = _impute(runner, normalized)
    elapsed = time.perf_counter() - start
    restored = normalizer.inverse_transform(imputed)
    out = IncompleteDataset(
        restored, feature_names=list(dataset.feature_names), name=dataset.name
    )
    write_csv(out, args.output)
    print(
        f"imputed {dataset.shape[0]}x{dataset.shape[1]} table in {elapsed:.1f}s "
        f"(training sample rate {sample_rate:.1%}) -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_datagen(args) -> int:
    generated = generate(args.name, n_samples=args.samples, seed=args.seed)
    write_csv(generated.dataset, args.output)
    print(
        f"wrote {generated.dataset.n_samples}x{generated.dataset.n_features} "
        f"{args.name} table ({generated.dataset.missing_rate:.1%} missing) "
        f"-> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_evaluate(args) -> int:
    dataset = read_csv(args.input)
    normalized = MinMaxNormalizer().fit_transform(dataset)
    holdout = holdout_split(normalized, args.holdout, np.random.default_rng(args.seed))
    runner = _make_runner(args)
    start = time.perf_counter()
    imputed, sample_rate = _impute(runner, holdout.train)
    elapsed = time.perf_counter() - start
    method = f"scis-{args.method}" if args.scis else args.method
    print(f"method:      {method}")
    print(f"rmse:        {holdout.rmse(imputed):.4f}")
    print(f"mae:         {holdout.mae(imputed):.4f}")
    print(f"time:        {elapsed:.1f}s")
    print(f"sample rate: {sample_rate:.1%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: dispatch to the selected subcommand, return exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "impute": _cmd_impute,
        "datagen": _cmd_datagen,
        "evaluate": _cmd_evaluate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
