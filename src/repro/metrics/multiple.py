"""Multiple imputation and Rubin's rules.

Single imputation understates uncertainty: downstream estimates treat the
filled values as if they were observed.  The classical remedy (Rubin 1987)
is to produce ``m`` stochastic imputations, compute the downstream estimate
on each, and pool:

* pooled estimate  ``q̄ = mean(q_i)``
* within variance  ``W = mean(u_i)``       (per-imputation variance)
* between variance ``B = var(q_i, ddof=1)``
* total variance   ``T = W + (1 + 1/m) B``

For generative imputers the stochasticity comes from the noise fed into the
generator; :func:`multiple_impute` draws fresh noise per imputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..data.dataset import IncompleteDataset
from ..models.base import GenerativeImputer, impute_equation
from ..tensor import no_grad

__all__ = ["multiple_impute", "RubinEstimate", "pool_estimates"]


def multiple_impute(
    model: GenerativeImputer,
    dataset: IncompleteDataset,
    m: int = 5,
    seed: int = 0,
    chunk_size: int = 4096,
) -> List[np.ndarray]:
    """Draw ``m`` imputations of ``dataset`` from a trained generative model.

    Each imputation resamples the generator's input noise, so the spread of
    the returned matrices reflects the model's imputation uncertainty on the
    missing cells (observed cells are identical across imputations).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    values, mask = dataset.values, dataset.mask
    imputations = []
    for draw in range(m):
        noise_rng = np.random.default_rng(seed + draw)
        reconstruction = np.empty_like(mask)
        for start in range(0, dataset.n_samples, chunk_size):
            chunk_values = values[start : start + chunk_size]
            chunk_mask = mask[start : start + chunk_size]
            noise = model.sample_noise(chunk_mask.shape, noise_rng)
            with no_grad():
                recon = model.reconstruct_batch(chunk_values, chunk_mask, noise)
            reconstruction[start : start + chunk_size] = recon.data
        imputations.append(impute_equation(values, mask, reconstruction))
    return imputations


@dataclass(frozen=True)
class RubinEstimate:
    """Pooled multiple-imputation estimate with its variance decomposition."""

    estimate: float
    within_variance: float
    between_variance: float
    total_variance: float
    m: int

    @property
    def standard_error(self) -> float:
        return float(np.sqrt(self.total_variance))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation interval (default 95 %)."""
        half = z * self.standard_error
        return (self.estimate - half, self.estimate + half)


def pool_estimates(
    estimates: Sequence[float],
    variances: Sequence[float] | None = None,
) -> RubinEstimate:
    """Combine per-imputation estimates with Rubin's rules.

    ``variances`` holds each analysis's own sampling variance ``u_i``; when
    the analysis does not provide one (e.g. a point metric), pass ``None``
    and the within-variance term is zero — the pooled variance then reflects
    only the between-imputation spread.
    """
    estimates = np.asarray(list(estimates), dtype=np.float64)
    m = estimates.size
    if m < 2:
        raise ValueError(f"Rubin's rules need m >= 2 imputations, got {m}")
    if variances is None:
        within = 0.0
    else:
        variances = np.asarray(list(variances), dtype=np.float64)
        if variances.size != m:
            raise ValueError("variances must match estimates in length")
        within = float(variances.mean())
    between = float(estimates.var(ddof=1))
    total = within + (1.0 + 1.0 / m) * between
    return RubinEstimate(
        estimate=float(estimates.mean()),
        within_variance=within,
        between_variance=between,
        total_variance=total,
        m=m,
    )


def pooled_statistic(
    model: GenerativeImputer,
    dataset: IncompleteDataset,
    statistic: Callable[[np.ndarray], float],
    m: int = 5,
    seed: int = 0,
) -> RubinEstimate:
    """Convenience: multiple-impute, apply ``statistic`` per draw, pool."""
    imputations = multiple_impute(model, dataset, m=m, seed=seed)
    return pool_estimates([statistic(imputed) for imputed in imputations])
