"""Evaluation metrics: masked RMSE/MAE and AUC, from scratch.

The paper's protocol (§VI "Metrics"): 20 % of observed values are hidden
during training and used as imputation ground truth; RMSE is computed over
exactly those cells.  :class:`repro.data.HoldoutSplit` carries the mask; the
functions here score arbitrary (prediction, truth, mask) triples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["masked_rmse", "masked_mae", "auc_score", "accuracy_score"]


def _masked_diff(prediction, truth, mask):
    prediction = np.asarray(prediction, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if prediction.shape != truth.shape or truth.shape != mask.shape:
        raise ValueError(
            f"shape mismatch: prediction {prediction.shape}, truth {truth.shape}, "
            f"mask {mask.shape}"
        )
    count = mask.sum()
    if count == 0:
        raise ValueError("mask selects no cells")
    return (prediction - truth) * mask, count


def masked_rmse(prediction, truth, mask) -> float:
    """Root-mean-square error over cells where ``mask`` is 1."""
    diff, count = _masked_diff(prediction, truth, mask)
    return float(np.sqrt((diff**2).sum() / count))


def masked_mae(prediction, truth, mask) -> float:
    """Mean absolute error over cells where ``mask`` is 1."""
    diff, count = _masked_diff(prediction, truth, mask)
    return float(np.abs(diff).sum() / count)


def auc_score(labels, scores) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged).

    Equivalent to the Mann–Whitney U formulation: the probability a random
    positive outranks a random negative.
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.size != scores.size:
        raise ValueError("labels and scores must have equal length")
    positives = labels == 1.0
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(labels.size, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # Average ranks within tied score groups.
    sorted_scores = scores[order]
    start = 0
    for end in range(1, labels.size + 1):
        if end == labels.size or sorted_scores[end] != sorted_scores[start]:
            mean_rank = (start + 1 + end) / 2.0
            ranks[order[start:end]] = mean_rank
            start = end
    rank_sum = ranks[positives].sum()
    u_stat = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_stat / (n_pos * n_neg))


def accuracy_score(labels, predictions) -> float:
    """Fraction of exact matches."""
    labels = np.asarray(labels).reshape(-1)
    predictions = np.asarray(predictions).reshape(-1)
    if labels.size != predictions.size:
        raise ValueError("labels and predictions must have equal length")
    return float((labels == predictions).mean())
