"""Evaluation metrics, downstream prediction, and multiple imputation."""

from .downstream import DownstreamConfig, DownstreamResult, evaluate_downstream
from .multiple import RubinEstimate, multiple_impute, pool_estimates, pooled_statistic
from .scores import accuracy_score, auc_score, masked_mae, masked_rmse

__all__ = [
    "masked_rmse",
    "masked_mae",
    "auc_score",
    "accuracy_score",
    "DownstreamConfig",
    "DownstreamResult",
    "evaluate_downstream",
    "multiple_impute",
    "pool_estimates",
    "pooled_statistic",
    "RubinEstimate",
]
