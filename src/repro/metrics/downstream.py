"""Post-imputation prediction harness (§VI.D, Table VII).

After imputation, a 3-fully-connected-layer network is trained on the imputed
matrix to predict the dataset's downstream label — classification (AUC) for
Trial and Surveil, regression (MAE) for the rest.  Paper settings: 30 epochs,
lr 5e-3, dropout 0.5, batch 128.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Dropout, Linear, ReLU, Sequential, Sigmoid, bce_loss, mse_loss
from ..optim import Adam
from ..tensor import Tensor, no_grad
from .scores import auc_score, masked_mae

__all__ = ["DownstreamConfig", "DownstreamResult", "evaluate_downstream"]


@dataclass
class DownstreamConfig:
    """Prediction-head hyper-parameters (Table VII settings)."""

    hidden: int = 32
    epochs: int = 30
    lr: float = 5e-3
    dropout: float = 0.5
    batch_size: int = 128
    test_fraction: float = 0.25
    seed: int = 0


@dataclass
class DownstreamResult:
    """Score of one post-imputation prediction run."""

    task: str  # "classification" or "regression"
    metric: str  # "auc" or "mae"
    score: float


def _build_head(n_features: int, hidden: int, classify: bool, rng, dropout: float):
    layers = [
        Linear(n_features, hidden, rng=rng),
        ReLU(),
        Dropout(dropout, rng=rng),
        Linear(hidden, hidden, rng=rng),
        ReLU(),
        Dropout(dropout, rng=rng),
        Linear(hidden, 1, rng=rng),
    ]
    if classify:
        layers.append(Sigmoid())
    return Sequential(*layers)


def evaluate_downstream(
    imputed: np.ndarray,
    labels: np.ndarray,
    task: str,
    config: Optional[DownstreamConfig] = None,
) -> DownstreamResult:
    """Train the prediction head on imputed data and score a held-out split.

    Parameters
    ----------
    imputed:
        The imputed matrix ``X̂`` (no nan allowed).
    labels:
        Downstream target; 0/1 for classification.
    task:
        ``"classification"`` (scored by AUC, larger better) or
        ``"regression"`` (scored by MAE, smaller better).
    """
    if config is None:
        config = DownstreamConfig()
    imputed = np.asarray(imputed, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1, 1)
    if np.isnan(imputed).any():
        raise ValueError("imputed matrix still contains nan")
    if imputed.shape[0] != labels.shape[0]:
        raise ValueError("row mismatch between imputed matrix and labels")
    classify = task == "classification"
    if not classify and task != "regression":
        raise ValueError(f"unknown task {task!r}")

    rng = np.random.default_rng(config.seed)
    n = imputed.shape[0]
    order = rng.permutation(n)
    n_test = max(1, int(round(config.test_fraction * n)))
    test_idx, train_idx = order[:n_test], order[n_test:]

    net = _build_head(imputed.shape[1], config.hidden, classify, rng, config.dropout)
    optimizer = Adam(net.parameters(), lr=config.lr)
    loss_fn = bce_loss if classify else mse_loss
    for _ in range(config.epochs):
        shuffled = rng.permutation(train_idx)
        for start in range(0, shuffled.size, config.batch_size):
            index = shuffled[start : start + config.batch_size]
            optimizer.zero_grad()
            out = net(Tensor(imputed[index]))
            loss = loss_fn(out, Tensor(labels[index]))
            loss.backward()
            optimizer.step()

    net.eval()
    with no_grad():
        scores = net(Tensor(imputed[test_idx])).data.reshape(-1)
    truth = labels[test_idx].reshape(-1)
    if classify:
        return DownstreamResult("classification", "auc", auc_score(truth, scores))
    mae = masked_mae(scores, truth, np.ones_like(truth))
    return DownstreamResult("regression", "mae", mae)
