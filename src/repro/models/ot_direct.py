"""OT-direct imputation: missing cells as learnable parameters (Muzellec et al.).

"Missing Data Imputation using Optimal Transport" (Muzellec, Josse, Boyer &
Cuturi, ICML 2020) observes that two random batches drawn from the same data
distribution should be close in Sinkhorn divergence — so the missing entries
themselves can be optimised by gradient descent on batch-Sinkhorn divergences
between pairs of imputed batches.  No generator network is involved in the
core algorithm: the missing cells *are* the parameters.

This module is the same-substrate OT rival to DIM (:mod:`repro.core.dim`):

* the missing cells form one flat leaf :class:`~repro.nn.Parameter` in the
  :mod:`repro.tensor` graph, scattered into each batch with a differentiable
  gather (`ops.concat` + `ops.getitem`);
* each training round pairs every batch with a round-robin partner
  (offset cycling ``1 .. B-1``) drawn from a :class:`repro.data.BatchPlan`
  partition, and descends the mean debiased Sinkhorn divergence over the
  round's pairs with one Adam step;
* the three OT problems of each pair (cross + both self terms — both batches
  carry imputed cells, so unlike DIM *neither* self term is constant) share
  one shape and are solved as a single :func:`repro.ot.sinkhorn_batched`
  stack, with warm-started dual potentials keyed per ``(i, j)`` batch pair;
* gradients follow the envelope theorem exactly as in Proposition 1: the
  plans are solved off-tape, the divergence value is re-assembled from
  differentiable cost matrices with the plans held constant.

Since both batches are fully imputed, every mask in the masking cost of
Definition 2 is all-ones and the cost reduces to the plain squared-Euclidean
matrix; :func:`repro.ot.cost.squared_euclidean_cost_tensor` is used directly.

The per-pair solves are embarrassingly parallel within a round: they fan out
through a :class:`repro.parallel.ExecutionContext`, each task returning
``(loss, grad, duals)``; the parent accumulates gradients in schedule order
and applies one optimiser step, so serial and process backends agree
bit-for-bit and the imputation is invariant to the order pairs are visited.

Direct imputation is transductive — it only fills the training matrix.  For
out-of-sample rows the optional distributional-fitting round (``fit_mlp``,
on by default) trains a GAIN-shaped MLP generator to reproduce the OT-imputed
matrix, which makes :class:`SinkhornImputer` a full
:class:`~repro.models.base.GenerativeImputer`: SSE can estimate ``n*`` for it
(the paper's thesis extended to a non-GAN model) and the serving registry can
persist it under the standard ``generative`` kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.batches import BatchPlan
from ..data.dataset import IncompleteDataset
from ..nn import Linear, Module, Parameter, ReLU, Sequential, Sigmoid
from ..obs import HealthMonitor, get_recorder, trace
from ..obs.health import HEALTH_POLICIES
from ..optim import Adam
from ..ot.cost import squared_euclidean_cost, squared_euclidean_cost_tensor
from ..ot.divergence import _solve_stack
from ..ot.sinkhorn import SinkhornConfig, entropy
from ..parallel import ExecutionContext
from ..tensor import Tensor, no_grad, ops
from .base import GenerativeImputer

__all__ = ["OtDirectReport", "SinkhornImputer"]

# Stacked dual potentials for one pair's (cross, self_i, self_j) solves.
_Duals = Tuple[np.ndarray, np.ndarray]


@dataclass
class OtDirectReport:
    """Diagnostics of one :meth:`SinkhornImputer.fit` run."""

    rounds: int
    pairs: int
    seconds: float
    losses: List[float] = field(default_factory=list)
    halted: bool = False
    health_verdict: Optional[str] = None
    mlp_epochs: int = 0

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None


class SinkhornImputer(GenerativeImputer):
    """Direct batch-Sinkhorn imputation (OT-direct).

    Parameters
    ----------
    epochs:
        Training rounds.  Each round pairs every batch with one round-robin
        partner and takes a single Adam step on the mean pair divergence.
    batch_size:
        Rows per batch; capped at ``n // 2`` so at least two full batches
        exist (the pair schedule needs a partner).  Trailing partial batches
        are dropped so every stacked solve shares one shape.
    lr:
        Adam step size on the imputed cells (they live on the data's own
        scale, so the default is larger than a network learning rate).
    reg, sinkhorn_max_iter, sinkhorn_tol:
        Entropic weight λ and solver controls for every Sinkhorn solve.
    pairs_per_round:
        Cap on pairs per round (``None`` uses the full schedule of one pair
        per batch).
    warm_start:
        Keep dual potentials per ``(i, j)`` batch pair and reuse them as the
        next round's starting point for that pair.  Only effective with
        ``fixed_batch_order`` (otherwise pair keys never repeat).  The
        solver still iterates to ``tol``, so this changes iteration counts,
        never answers beyond solver tolerance.
    batched:
        Stack each pair's three OT problems into one
        :func:`~repro.ot.sinkhorn_batched` solve; ``False`` restores loop
        solves (bit-identical on the NumPy backend).
    fixed_batch_order:
        Draw the batch partition once and reuse it every round (enables the
        warm-start store and makes the imputation a pure function of the
        seed, invariant to pair visiting order).  ``False`` re-shuffles the
        partition every round.
    noise_init:
        Missing cells initialise to ``column mean + noise_init · N(0, 1)``
        (Muzellec et al. use 0.1).
    fit_mlp, hidden, mlp_epochs, mlp_lr, noise_scale:
        The distributional-fitting round: train a GAIN-shaped generator
        ``G([m ⊙ x + (1-m) ⊙ z, m])`` by MSE against the OT-imputed matrix
        so unseen rows can be imputed (and so SSE/serving get a generator).
        With ``fit_mlp=False`` the model is purely transductive: it can
        only impute its own training matrix (out-of-sample rows fall back
        to column means) and cannot be registry-persisted.
    seed:
        Root seed for initialisation, the batch partition, and MLP fitting.
    on_divergence:
        Health-watchdog policy: ``"warn"`` records ``health.*`` events,
        ``"halt"`` stops the round loop at the first NaN/divergence/
        oscillation detection (``report.halted`` is set).
    context:
        :class:`~repro.parallel.ExecutionContext` for the per-pair solves;
        defaults to ``ExecutionContext.from_env()`` at fit time.
    """

    name = "otdirect"

    def __init__(
        self,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-2,
        reg: float = 0.05,
        sinkhorn_max_iter: int = 200,
        sinkhorn_tol: float = 1e-6,
        pairs_per_round: Optional[int] = None,
        warm_start: bool = True,
        batched: bool = True,
        fixed_batch_order: bool = True,
        noise_init: float = 0.1,
        fit_mlp: bool = True,
        hidden: Optional[int] = None,
        mlp_epochs: int = 30,
        mlp_lr: float = 1e-3,
        noise_scale: float = 0.01,
        seed: int = 0,
        on_divergence: str = "warn",
        context: Optional[ExecutionContext] = None,
    ) -> None:
        super().__init__()
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 2:
            raise ValueError(f"batch_size must be >= 2, got {batch_size}")
        if pairs_per_round is not None and pairs_per_round < 1:
            raise ValueError(
                f"pairs_per_round must be >= 1, got {pairs_per_round}"
            )
        if on_divergence not in HEALTH_POLICIES:
            raise ValueError(
                f"on_divergence policy must be one of {HEALTH_POLICIES}, "
                f"got {on_divergence!r}"
            )
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.reg = reg
        self.sinkhorn_max_iter = sinkhorn_max_iter
        self.sinkhorn_tol = sinkhorn_tol
        self.pairs_per_round = pairs_per_round
        self.warm_start = warm_start
        self.batched = batched
        self.fixed_batch_order = fixed_batch_order
        self.noise_init = noise_init
        self.fit_mlp = fit_mlp
        self.hidden = hidden
        self.mlp_epochs = mlp_epochs
        self.mlp_lr = mlp_lr
        self.noise_scale = noise_scale
        self.seed = seed
        self.on_divergence = on_divergence
        self.context = context
        self.rng = np.random.default_rng(seed)
        self.report: Optional[OtDirectReport] = None
        self.health_verdict: Optional[str] = None
        self._generator: Optional[Module] = None
        self._n_features: Optional[int] = None
        self._column_means: Optional[np.ndarray] = None
        # Transductive state (None until fit): the training matrix, its
        # mask, the flat missing-cell parameter, and the finished imputation.
        self._train_values: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        self._filled: Optional[np.ndarray] = None
        self._slot: Optional[np.ndarray] = None
        self._cells: Optional[Parameter] = None
        self._zero_slot: Optional[Tensor] = None
        self._train_imputed: Optional[np.ndarray] = None
        self._batch_indices: List[np.ndarray] = []
        self._duals: Dict[Tuple[int, int], _Duals] = {}

    # ------------------------------------------------------------------
    # GenerativeImputer contract (the distributional-fit MLP)
    # ------------------------------------------------------------------
    @property
    def generator(self) -> Module:
        if self._generator is None:
            raise RuntimeError("call build() or fit() first")
        return self._generator

    def build(self, n_features: int, rng: Optional[np.random.Generator] = None) -> None:
        if rng is not None:
            self.rng = rng
        hidden = self.hidden if self.hidden is not None else max(n_features, 4)
        self._n_features = n_features
        self._generator = Sequential(
            Linear(2 * n_features, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, n_features, rng=self.rng),
            Sigmoid(),
        )

    def sample_noise(self, shape: tuple, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.noise_scale, size=shape)

    def reconstruct_batch(
        self, values: np.ndarray, mask: np.ndarray, noise: np.ndarray
    ) -> Tensor:
        """Differentiable X̄ = G([m⊙x + (1-m)⊙z, m]) through the fitted MLP."""
        filled = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
        mask = np.asarray(mask, dtype=np.float64)
        x_tilde = mask * filled + (1.0 - mask) * noise
        g_input = ops.concat([Tensor(x_tilde), Tensor(mask)], axis=1)
        return self._generator(g_input)

    def adversarial_step(
        self, values: np.ndarray, mask: np.ndarray, rng: np.random.Generator
    ) -> dict:
        """OT-direct has no adversarial game; present for the contract."""
        return {}

    # ------------------------------------------------------------------
    # The differentiable imputed-batch gather
    # ------------------------------------------------------------------
    def _gather(self, cells: Tensor, index: np.ndarray) -> Tensor:
        """Imputed batch ``X̂[index]`` with ``cells`` scattered into missing slots.

        ``self._slot`` maps every cell to its flat parameter index; observed
        cells point at a trailing constant-zero slot whose contribution (and
        gradient) the ``(1 - m)`` factor annihilates.
        """
        extended = ops.concat([cells, self._zero_slot], axis=0)
        gathered = ops.getitem(extended, self._slot[index])
        mask = self._mask[index]
        return Tensor(mask * self._filled[index]) + Tensor(1.0 - mask) * gathered

    def _assemble_divergence(
        self,
        cells: Tensor,
        index_i: np.ndarray,
        index_j: np.ndarray,
        plans: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> Tensor:
        """On-tape debiased divergence with the Sinkhorn plans held constant.

        The envelope-theorem assembly of Proposition 1: every plan is a
        constant array, every cost matrix is differentiable, so the gradient
        w.r.t. ``cells`` is exactly the barycentric-map gradient.
        """
        x_i = self._gather(cells, index_i)
        x_j = self._gather(cells, index_j)
        plan_xy, plan_xx, plan_yy = plans
        divergence = 2.0 * (
            (Tensor(plan_xy) * squared_euclidean_cost_tensor(x_i, x_j)).sum()
            + self.reg * entropy(plan_xy)
        )
        divergence = divergence - (
            (Tensor(plan_xx) * squared_euclidean_cost_tensor(x_i, x_i)).sum()
            + self.reg * entropy(plan_xx)
        )
        divergence = divergence - (
            (Tensor(plan_yy) * squared_euclidean_cost_tensor(x_j, x_j)).sum()
            + self.reg * entropy(plan_yy)
        )
        return divergence / (2.0 * index_i.size)

    # ------------------------------------------------------------------
    # Pair solves
    # ------------------------------------------------------------------
    @property
    def _sinkhorn_config(self) -> SinkhornConfig:
        return SinkhornConfig(
            reg=self.reg, max_iter=self.sinkhorn_max_iter, tol=self.sinkhorn_tol
        )

    def _pair_loss(
        self, index_i: np.ndarray, index_j: np.ndarray, key: Tuple[int, int]
    ) -> Tuple[Tensor, _Duals]:
        """The pair's scalar loss tensor plus its dual potentials.

        The store is only *read* here — tasks may run in forked workers, so
        the parent applies the returned duals between rounds, which keeps
        serial and process backends on identical warm starts.
        """
        with no_grad():
            x_i = self._gather(self._cells, index_i).data
            x_j = self._gather(self._cells, index_j).data
            costs = [
                squared_euclidean_cost(x_i, x_j),
                squared_euclidean_cost(x_i, x_i),
                squared_euclidean_cost(x_j, x_j),
            ]
            init = self._duals.get(key) if self._use_warm_start else None
            results = _solve_stack(costs, self._sinkhorn_config, self.batched, init=init)
        duals = (
            np.stack([r.f for r in results]),
            np.stack([r.g for r in results]),
        )
        plans = (results[0].plan, results[1].plan, results[2].plan)
        return self._assemble_divergence(self._cells, index_i, index_j, plans), duals

    def _pair_step(
        self, index_i: np.ndarray, index_j: np.ndarray, key: Tuple[int, int]
    ) -> Tuple[float, np.ndarray, _Duals]:
        """One pair's (loss value, cell gradient, duals) — the parallel unit."""
        self._cells.zero_grad()
        loss, duals = self._pair_loss(index_i, index_j, key)
        loss.backward()
        grad = (
            self._cells.grad.copy()
            if self._cells.grad is not None
            else np.zeros_like(self._cells.data)
        )
        return loss.item(), grad, duals

    def _make_pair_tasks(self, pairs: List[Tuple[int, int]]):
        return [
            lambda i=i, j=j: self._pair_step(
                self._batch_indices[i], self._batch_indices[j], (i, j)
            )
            for i, j in pairs
        ]

    def _round_pairs(self, round_index: int, n_batches: int) -> List[Tuple[int, int]]:
        """Round-robin schedule: every batch meets partner ``k + offset``.

        The offset cycles through ``1 .. B-1``, so over ``B-1`` rounds every
        ordered batch pair is visited exactly once.  The list is in
        canonical batch order; because gradients are accumulated across the
        whole round before the single optimiser step, visiting order only
        permutes a floating-point sum.
        """
        offset = 1 + (round_index % (n_batches - 1))
        pairs = [(k, (k + offset) % n_batches) for k in range(n_batches)]
        if self.pairs_per_round is not None:
            pairs = pairs[: self.pairs_per_round]
        return pairs

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    @property
    def _use_warm_start(self) -> bool:
        return self.warm_start and self.fixed_batch_order

    def _partition(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Partition the training rows into >= 2 same-size batches."""
        n = self._train_values.shape[0]
        batch = max(2, min(self.batch_size, n // 2))
        if self.fixed_batch_order:
            plan = BatchPlan(
                batch_size=batch,
                order="fixed",
                permutation=rng.permutation(n),
                drop_last=True,
            )
        else:
            plan = BatchPlan(batch_size=batch, order="shuffled", drop_last=True)
        order = plan.row_order(n, rng)
        return [order[start:stop] for start, stop in plan.bounds(n)]

    def _prepare(self, dataset: IncompleteDataset, rng: np.random.Generator) -> None:
        """Initialise the cell parameters and the transductive state."""
        if dataset.n_samples < 4:
            raise ValueError(
                f"OT-direct needs at least 4 rows to form two batches, "
                f"got {dataset.n_samples}"
            )
        values = np.asarray(dataset.values, dtype=np.float64)
        mask = np.asarray(dataset.mask, dtype=np.float64)
        self._train_values = values.copy()
        self._mask = mask
        self._filled = np.nan_to_num(values, nan=0.0)
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)
        missing = mask == 0.0
        n_missing = int(missing.sum())
        # Flat slot map: missing cells -> their parameter index (row-major
        # order), observed cells -> the trailing constant-zero slot.
        slot = np.full(values.shape, n_missing, dtype=np.intp)
        slot[missing] = np.arange(n_missing)
        self._slot = slot
        init = np.broadcast_to(self._column_means, values.shape)[missing]
        init = init + self.noise_init * rng.standard_normal(n_missing)
        self._cells = Parameter(init, name="otdirect.cells")
        self._zero_slot = Tensor(np.zeros(1))
        self._optimizer = Adam([self._cells], lr=self.lr)
        self._duals = {}
        self._batch_indices = self._partition(rng)

    def _run_rounds(self, rng: np.random.Generator) -> OtDirectReport:
        """The OT descent: round-robin pair solves, one Adam step per round."""
        recorder = get_recorder()
        monitor = HealthMonitor(policy=self.on_divergence)
        context = self.context if self.context is not None else ExecutionContext.from_env()
        start = time.perf_counter()
        report = OtDirectReport(rounds=0, pairs=0, seconds=0.0)
        if self._cells.size == 0:
            # Nothing to impute: the matrix is complete.
            report.health_verdict = monitor.finalize()
            report.seconds = time.perf_counter() - start
            return report
        for round_index in range(self.epochs):
            if not self.fixed_batch_order:
                self._batch_indices = self._partition(rng)
            pairs = self._round_pairs(round_index, len(self._batch_indices))
            with trace("otdirect.round"):
                results = context.run(
                    self._make_pair_tasks(pairs), label="otdirect.pairs"
                )
            total_grad = np.zeros_like(self._cells.data)
            loss_sum = 0.0
            for (i, j), (value, grad, duals) in zip(pairs, results):
                loss_sum += value
                total_grad += grad
                if self._use_warm_start:
                    self._duals[(i, j)] = duals
            mean_loss = loss_sum / len(pairs)
            self._cells.grad = total_grad / len(pairs)
            self._optimizer.step()
            report.rounds = round_index + 1
            report.pairs += len(pairs)
            report.losses.append(mean_loss)
            monitor.check_finite("otdirect.round_loss", mean_loss, round=round_index)
            monitor.observe_loss("otdirect.round", mean_loss)
            if recorder.enabled:
                recorder.inc("otdirect.rounds")
                recorder.inc("otdirect.pair_solves", len(pairs))
                recorder.observe("otdirect.round_loss", mean_loss)
                recorder.emit(
                    "otdirect.round",
                    round=round_index,
                    loss=mean_loss,
                    pairs=len(pairs),
                )
            if monitor.should_halt:
                break
        report.halted = monitor.should_halt
        report.health_verdict = monitor.finalize()
        report.seconds = time.perf_counter() - start
        return report

    def _fit_mlp(self, rng: np.random.Generator, monitor: HealthMonitor) -> int:
        """Distributional fit: regress the generator onto the imputed matrix."""
        recorder = get_recorder()
        if self._generator is None:
            self.build(self._train_values.shape[1])
        optimizer = Adam(self._generator.parameters(), lr=self.mlp_lr)
        n = self._train_values.shape[0]
        target = self._train_imputed
        epochs_run = 0
        for epoch in range(self.mlp_epochs):
            order = rng.permutation(n)
            epoch_losses: List[float] = []
            for begin in range(0, n, self.batch_size):
                index = order[begin : begin + self.batch_size]
                noise = self.sample_noise((index.size, target.shape[1]), rng)
                x_bar = self.reconstruct_batch(
                    self._train_values[index], self._mask[index], noise
                )
                residual = x_bar - Tensor(target[index])
                loss = (residual * residual).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            epoch_loss = float(np.mean(epoch_losses))
            epochs_run = epoch + 1
            monitor.check_finite("otdirect.mlp_loss", epoch_loss, epoch=epoch)
            if recorder.enabled:
                recorder.emit("otdirect.mlp_epoch", epoch=epoch, loss=epoch_loss)
            if monitor.should_halt:
                break
        return epochs_run

    def fit(self, dataset: IncompleteDataset) -> "SinkhornImputer":
        rng = np.random.default_rng(self.seed)
        recorder = get_recorder()
        self._prepare(dataset, rng)
        with trace("otdirect.fit"):
            report = self._run_rounds(rng)
            # The transductive answer: observed bytes untouched, missing
            # cells replaced by the optimised parameters.
            imputed = self._train_values.copy()
            imputed[self._mask == 0.0] = self._cells.data
            self._train_imputed = imputed
            if self.fit_mlp:
                monitor = HealthMonitor(policy=self.on_divergence)
                report.mlp_epochs = self._fit_mlp(rng, monitor)
                if monitor.verdict != "healthy" and report.health_verdict == "healthy":
                    report.health_verdict = monitor.verdict
                monitor.finalize()
        self.report = report
        self.health_verdict = report.health_verdict
        if recorder.enabled:
            recorder.emit(
                "otdirect.fit",
                rounds=report.rounds,
                pairs=report.pairs,
                seconds=report.seconds,
                final_loss=report.final_loss,
                halted=report.halted,
                health_verdict=report.health_verdict,
                mlp_epochs=report.mlp_epochs,
                n_missing=int(self._cells.size),
            )
        self._fitted = True
        return self

    def fit_impute(self, dataset: IncompleteDataset) -> np.ndarray:
        """Fit and return the direct (transductive) imputation.

        Observed cells are byte-identical to the input: the matrix is a copy
        of the training values with only the missing positions assigned.
        """
        self.fit(dataset)
        return self._train_imputed.copy()

    # ------------------------------------------------------------------
    # Imputer API
    # ------------------------------------------------------------------
    def _is_training_batch(self, values: np.ndarray, mask: np.ndarray) -> bool:
        if self._train_values is None or values.shape != self._train_values.shape:
            return False
        return np.array_equal(
            values, self._train_values, equal_nan=True
        ) and np.array_equal(np.asarray(mask, dtype=np.float64), self._mask)

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """X̄ for arbitrary rows: direct parameters on the training matrix,
        the distributional MLP out of sample (column means without one)."""
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if self._is_training_batch(values, mask):
            return self._train_imputed.copy()
        # A built generator always carries trained weights here: it is only
        # constructed by the distributional fit or by registry rehydration.
        if self._generator is not None:
            noise = self.sample_noise(mask.shape, np.random.default_rng(self.seed))
            with no_grad():
                return self.reconstruct_batch(values, mask, noise).data
        if self._column_means is None:
            raise RuntimeError(
                "this SinkhornImputer was rehydrated without its transductive "
                "state and has no trained generator"
            )
        return np.broadcast_to(self._column_means, values.shape).copy()
