"""Imputation model API.

Every method in the paper's Table III/IV comparison implements
:class:`Imputer`; the two GAN-based methods additionally implement
:class:`GenerativeImputer`, the contract the SCIS core (DIM/SSE) needs:
access to the generator's parameter tree and a differentiable batch
reconstruction.

The imputation equation (Definition 1) is

    X̂ = M ⊙ X + (1 - M) ⊙ X̄

where ``X̄`` is the model's reconstruction; :meth:`Imputer.transform` applies
it so observed cells always pass through untouched.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from ..nn.module import Module
from ..tensor import Tensor

__all__ = ["Imputer", "GenerativeImputer", "impute_equation"]


def impute_equation(
    values: np.ndarray, mask: np.ndarray, reconstruction: np.ndarray
) -> np.ndarray:
    """Definition 1: keep observed cells, fill missing from the reconstruction."""
    filled = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
    mask = np.asarray(mask, dtype=np.float64)
    return mask * filled + (1.0 - mask) * np.asarray(reconstruction, dtype=np.float64)


class Imputer(abc.ABC):
    """Base class for every imputation method.

    Subclasses set :attr:`name` and implement :meth:`fit` and
    :meth:`reconstruct`.
    """

    name: str = "imputer"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, dataset: IncompleteDataset) -> "Imputer":
        """Train the model on an incomplete dataset (values contain nan)."""

    @abc.abstractmethod
    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Predict a full matrix ``X̄`` for the given rows (model output for
        every cell, observed or not)."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")

    def transform(self, dataset: IncompleteDataset) -> np.ndarray:
        """Return the imputed matrix ``X̂`` (Eq. 1)."""
        self._check_fitted()
        reconstruction = self.reconstruct(dataset.values, dataset.mask)
        return impute_equation(dataset.values, dataset.mask, reconstruction)

    def fit_transform(self, dataset: IncompleteDataset) -> np.ndarray:
        """Convenience: fit then impute the same dataset."""
        return self.fit(dataset).transform(dataset)


class GenerativeImputer(Imputer):
    """Contract for GAN-based imputers usable inside SCIS.

    Beyond the base API, SCIS needs

    * :attr:`generator` — the :class:`~repro.nn.Module` whose parameters the
      SSE module perturbs, and
    * :meth:`reconstruct_batch` — a *differentiable* reconstruction of a
      mini-batch given pre-sampled noise, so DIM can attach the
      masking-Sinkhorn loss and so SSE can compare two parameter vectors
      under identical noise.
    """

    @property
    @abc.abstractmethod
    def generator(self) -> Module:
        """The generator network (must exist after :meth:`build`)."""

    @abc.abstractmethod
    def build(self, n_features: int, rng: Optional[np.random.Generator] = None) -> None:
        """Instantiate the networks for ``n_features`` columns.

        Called by :meth:`fit` and by the SCIS orchestrator before any
        parameter-level manipulation.
        """

    @abc.abstractmethod
    def sample_noise(self, shape: tuple, rng: np.random.Generator) -> np.ndarray:
        """Draw the generator's input noise for missing slots."""

    @abc.abstractmethod
    def reconstruct_batch(
        self, values: np.ndarray, mask: np.ndarray, noise: np.ndarray
    ) -> Tensor:
        """Differentiable reconstruction ``X̄`` of a batch (on the tape)."""

    @abc.abstractmethod
    def adversarial_step(
        self,
        values: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
    ) -> dict:
        """One native adversarial update (discriminator + generator losses).

        Returns a dict of scalar diagnostics (e.g. ``{"d_loss": ..,
        "g_loss": ..}``).  DIM interleaves this with the MS-divergence
        generator update when ``use_adversarial`` is enabled.
        """
