"""MLP-based imputers: DataWig and RRSI (round-robin Sinkhorn imputation).

DataWig (Biessmann et al. 2019) regresses each incomplete column on the
others with a small MLP.  RRSI (Muzellec et al. 2020) treats the missing
entries themselves as trainable parameters and minimises the Sinkhorn
divergence between pairs of imputed mini-batches — the method §IV.A contrasts
with the masking Sinkhorn divergence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from ..nn import mlp, mse_loss
from ..nn.module import Parameter
from ..optim import Adam
from ..ot import squared_euclidean_cost
from ..ot.batched import sinkhorn_batched
from ..ot.sinkhorn import SinkhornConfig, entropy
from ..tensor import Tensor, no_grad
from .base import Imputer
from .ml import _IterativeColumnImputer

__all__ = ["DataWigImputer", "RRSIImputer"]


class _MLPRegressor:
    """Tiny Adam-trained MLP with the scikit-style fit/predict surface."""

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 30,
        lr: float = 5e-3,
        batch_size: int = 128,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.rng = rng if rng is not None else np.random.default_rng()
        self._net = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_MLPRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1, 1)
        self._net = mlp([x.shape[1], self.hidden, 1], "relu", "identity", rng=self.rng)
        optimizer = Adam(self._net.parameters(), lr=self.lr)
        n = x.shape[0]
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                index = order[start : start + self.batch_size]
                optimizer.zero_grad()
                loss = mse_loss(self._net(Tensor(x[index])), Tensor(y[index]))
                loss.backward()
                optimizer.step()
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("regressor must be fitted before predict")
        self._net.eval()
        with no_grad():
            out = self._net(Tensor(np.asarray(x, dtype=np.float64)))
        self._net.train()
        return out.data.reshape(-1)


class DataWigImputer(_IterativeColumnImputer):
    """Biessmann et al. (2019): per-column MLP imputation."""

    name = "datawig"

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 20,
        lr: float = 5e-3,
        n_iterations: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(n_iterations=n_iterations)
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.rng = np.random.default_rng(seed)

    def _make_regressor(self):
        return _MLPRegressor(hidden=self.hidden, epochs=self.epochs, lr=self.lr, rng=self.rng)


class RRSIImputer(Imputer):
    """Muzellec et al. (2020), Algorithm 1: Sinkhorn batch imputation.

    Missing entries start at the column mean (plus a small jitter) and are
    optimised directly: each step draws two disjoint mini-batches of the
    *imputed* matrix and takes an Adam step on the Sinkhorn divergence
    between them.  As discussed in §IV.A of the SCIS paper, this objective
    pulls the imputed distribution towards a mixture of the observed data and
    the initial fill rather than the true underlying distribution — the
    behaviour our Table III shape-comparison exercises.

    Generalisation note: the learned imputations are tied to the training
    rows.  ``reconstruct`` on unseen rows falls back to 1-nearest-neighbour
    donation from the imputed training matrix.
    """

    name = "rrsi"

    def __init__(
        self,
        epochs: int = 100,
        batch_size: int = 128,
        lr: float = 1e-2,
        reg: float = 0.05,
        noise: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.reg = reg
        self.noise = noise
        self.rng = np.random.default_rng(seed)
        self._imputed_train: Optional[np.ndarray] = None
        self._train_mask: Optional[np.ndarray] = None
        self._column_means: Optional[np.ndarray] = None

    def fit(self, dataset: IncompleteDataset) -> "RRSIImputer":
        values = dataset.values
        mask = dataset.mask
        n, d = values.shape
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)

        filled = np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), self._column_means)
        jitter = self.noise * self.rng.standard_normal((n, d)) * (mask == 0.0)
        free = Parameter(filled + jitter, name="imputations")
        optimizer = Adam([free], lr=self.lr)
        mask_t = Tensor(mask)
        observed_t = Tensor(np.nan_to_num(values, nan=0.0))

        batch = min(self.batch_size, n // 2)
        if batch < 2:
            # Too few rows for two disjoint batches; keep the mean fill.
            self._imputed_train = filled
            self._train_mask = mask.copy()
            self._fitted = True
            return self

        for _ in range(self.epochs):
            index = self.rng.permutation(n)
            first, second = index[:batch], index[batch : 2 * batch]
            # Clamp observed cells to their true values on the tape.
            current = mask_t * observed_t + (1.0 - mask_t) * free
            batch_a, batch_b = current[first], current[second]
            with no_grad():
                # The batches share a size, so the cross and self-term
                # problems stack into one batched solve.
                stacked = sinkhorn_batched(
                    np.stack(
                        [
                            squared_euclidean_cost(batch_a.data, batch_b.data),
                            squared_euclidean_cost(batch_a.data, batch_a.data),
                            squared_euclidean_cost(batch_b.data, batch_b.data),
                        ]
                    ),
                    SinkhornConfig(reg=self.reg, max_iter=100, tol=1e-6),
                )
                plan_ab, plan_aa, plan_bb = stacked.plan

            def _term(xa: Tensor, xb: Tensor, plan: np.ndarray) -> Tensor:
                sq_a = (xa * xa).sum(axis=1, keepdims=True)
                sq_b = (xb * xb).sum(axis=1, keepdims=True).transpose()
                cost = sq_a + sq_b - 2.0 * (xa @ xb.transpose())
                return (Tensor(plan) * cost).sum() + self.reg * entropy(plan)

            divergence = (
                2.0 * _term(batch_a, batch_b, plan_ab)
                - _term(batch_a, batch_a, plan_aa)
                - _term(batch_b, batch_b, plan_bb)
            )
            optimizer.zero_grad()
            divergence.backward()
            optimizer.step()

        self._imputed_train = np.where(mask == 1.0, filled, free.data)
        self._train_mask = mask.copy()
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if (
            values.shape == self._imputed_train.shape
            and np.array_equal(mask, self._train_mask)
        ):
            return self._imputed_train.copy()
        # Unseen rows: donate from the nearest imputed training row.
        filled = np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), self._column_means)
        out = filled.copy()
        for i in range(values.shape[0]):
            shared = mask[i][None, :] * self._train_mask
            counts = shared.sum(axis=1)
            diff = (filled[i][None, :] - np.nan_to_num(self._imputed_train)) * shared
            with np.errstate(invalid="ignore", divide="ignore"):
                dist = np.where(counts > 0, (diff**2).sum(axis=1) / counts, np.inf)
            donor = int(np.argmin(dist))
            out[i] = np.where(mask[i] == 1.0, filled[i], self._imputed_train[donor])
        return out
