"""GAN-based imputers: GAIN and GINN.

GAIN (Yoon, Jordon & van der Schaar, ICML 2018)
    Generator and discriminator are both 2-layer fully-connected networks
    (§VI of the SCIS paper).  The generator sees ``[x̃, m]`` where missing
    slots carry uniform noise; the discriminator sees ``[x̂, h]`` with the
    hint matrix ``h`` revealing most of the true mask.

GINN (Spinelli, Scardapane & Uncini, 2019)
    Graph imputation neural network: a k-NN similarity graph over samples
    (built with networkx, whose quadratic construction cost is exactly why
    the paper's Table IV reports GINN timing out on million-size data), a
    GCN autoencoder generator, and a 3-layer feed-forward critic trained 5
    times per generator step (§VI).

Both implement :class:`~repro.models.base.GenerativeImputer`, the hook SCIS
needs to retrain them under the masking-Sinkhorn loss and to perturb their
generator parameters in SSE.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..data.dataset import IncompleteDataset
from ..nn import Linear, Module, ReLU, Sequential, Sigmoid, masked_bce_loss
from ..obs import HealthMonitor, get_recorder
from ..optim import Adam
from ..tensor import Tensor, no_grad, ops
from .base import GenerativeImputer


def _record_adversarial_step(model_name: str, stats: dict) -> None:
    """Fold one native-game step into the active recorder (no-op if disabled)."""
    recorder = get_recorder()
    if not recorder.enabled:
        return
    recorder.inc(f"gan.{model_name}.adversarial_steps")
    recorder.observe(f"gan.{model_name}.d_loss", stats["d_loss"])
    recorder.observe(f"gan.{model_name}.g_loss", stats["g_loss"])


def _fit_epoch_telemetry(
    monitor: HealthMonitor, model_name: str, epoch: int, epoch_stats: list
) -> None:
    """Per-epoch bookkeeping for a native adversarial ``fit`` loop.

    Feeds the epoch-mean generator loss to the health watchdog (always)
    and emits the ``gan.<model>.epoch`` event (recorder-guarded).
    """
    if not epoch_stats:
        return
    d_loss = float(np.mean([s["d_loss"] for s in epoch_stats]))
    g_loss = float(np.mean([s["g_loss"] for s in epoch_stats]))
    recorder = get_recorder()
    if recorder.enabled:
        recorder.emit(
            f"gan.{model_name}.epoch",
            epoch=epoch,
            d_loss=d_loss,
            g_loss=g_loss,
            steps=len(epoch_stats),
        )
    monitor.observe_loss(f"gan.{model_name}.epoch", g_loss)

__all__ = ["GAINImputer", "GINNImputer", "knn_graph_adjacency"]


class GAINImputer(GenerativeImputer):
    """Generative adversarial imputation network.

    Parameters
    ----------
    hidden:
        Hidden width; defaults to the feature count (the reference
        implementation's choice).
    hint_rate:
        Probability that the hint reveals the true mask bit.
    alpha:
        Weight of the observed-cell reconstruction term in the generator
        loss.
    epochs, batch_size, lr:
        §VI defaults: 100 epochs, batch 128, Adam at 1e-3.
    noise_scale:
        Scale of the uniform noise placed in missing slots (0.01 in the
        reference implementation).
    on_divergence:
        Numerical-health policy for the native ``fit`` loop: ``"warn"``
        records ``health.*`` events, ``"halt"`` stops training at the first
        NaN/divergence/oscillation detection.  The end-of-run verdict is
        stored on :attr:`health_verdict`.
    """

    name = "gain"

    def __init__(
        self,
        hidden: Optional[int] = None,
        hint_rate: float = 0.9,
        alpha: float = 10.0,
        epochs: int = 100,
        batch_size: int = 128,
        lr: float = 1e-3,
        noise_scale: float = 0.01,
        seed: int = 0,
        on_divergence: str = "warn",
    ) -> None:
        super().__init__()
        if not 0.0 <= hint_rate <= 1.0:
            raise ValueError(f"hint_rate must be in [0, 1], got {hint_rate}")
        self.hidden = hidden
        self.hint_rate = hint_rate
        self.alpha = alpha
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.noise_scale = noise_scale
        self.seed = seed
        self.on_divergence = on_divergence
        self.health_verdict: Optional[str] = None
        self.rng = np.random.default_rng(seed)
        self._generator: Optional[Module] = None
        self._discriminator: Optional[Module] = None
        self._g_optimizer: Optional[Adam] = None
        self._d_optimizer: Optional[Adam] = None
        self._column_means: Optional[np.ndarray] = None
        self._n_features: Optional[int] = None

    # ------------------------------------------------------------------
    # GenerativeImputer contract
    # ------------------------------------------------------------------
    @property
    def generator(self) -> Module:
        if self._generator is None:
            raise RuntimeError("call build() or fit() first")
        return self._generator

    @property
    def discriminator(self) -> Module:
        if self._discriminator is None:
            raise RuntimeError("call build() or fit() first")
        return self._discriminator

    def build(self, n_features: int, rng: Optional[np.random.Generator] = None) -> None:
        if rng is not None:
            self.rng = rng
        hidden = self.hidden if self.hidden is not None else max(n_features, 4)
        self._n_features = n_features
        self._generator = Sequential(
            Linear(2 * n_features, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, n_features, rng=self.rng),
            Sigmoid(),
        )
        self._discriminator = Sequential(
            Linear(2 * n_features, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, n_features, rng=self.rng),
            Sigmoid(),
        )
        self._g_optimizer = Adam(self._generator.parameters(), lr=self.lr)
        self._d_optimizer = Adam(self._discriminator.parameters(), lr=self.lr)

    def sample_noise(self, shape: tuple, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.noise_scale, size=shape)

    def reconstruct_batch(
        self, values: np.ndarray, mask: np.ndarray, noise: np.ndarray
    ) -> Tensor:
        """Differentiable X̄ = G([m⊙x + (1-m)⊙z, m])."""
        filled = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
        mask = np.asarray(mask, dtype=np.float64)
        x_tilde = mask * filled + (1.0 - mask) * noise
        g_input = ops.concat([Tensor(x_tilde), Tensor(mask)], axis=1)
        return self._generator(g_input)

    def adversarial_step(
        self, values: np.ndarray, mask: np.ndarray, rng: np.random.Generator
    ) -> dict:
        filled = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
        mask = np.asarray(mask, dtype=np.float64)
        noise = self.sample_noise(mask.shape, rng)
        hint_bits = (rng.random(mask.shape) < self.hint_rate).astype(np.float64)
        hint = hint_bits * mask + 0.5 * (1.0 - hint_bits)

        # --- discriminator step (generator output treated as constant) ---
        with no_grad():
            x_bar = self.reconstruct_batch(filled, mask, noise)
        x_hat = mask * filled + (1.0 - mask) * x_bar.data
        d_input = ops.concat([Tensor(x_hat), Tensor(hint)], axis=1)
        d_prob = self._discriminator(d_input)
        d_loss = masked_bce_loss(d_prob, Tensor(mask), np.ones_like(mask))
        self._d_optimizer.zero_grad()
        d_loss.backward()
        self._d_optimizer.step()

        # --- generator step ---
        x_bar = self.reconstruct_batch(filled, mask, noise)
        x_hat_t = Tensor(mask) * Tensor(filled) + Tensor(1.0 - mask) * x_bar
        d_input = ops.concat([x_hat_t, Tensor(hint)], axis=1)
        d_prob = self._discriminator(d_input)
        # Fool the discriminator on the *missing* entries only.
        adv = -(
            (Tensor(1.0 - mask) * d_prob.clip(1e-8, 1.0 - 1e-8).log()).sum()
            / max((1.0 - mask).sum(), 1.0)
        )
        rec = ((Tensor(mask) * (x_bar - Tensor(filled))) ** 2).sum() / max(mask.sum(), 1.0)
        g_loss = adv + self.alpha * rec
        self._g_optimizer.zero_grad()
        g_loss.backward()
        self._g_optimizer.step()
        stats = {"d_loss": d_loss.item(), "g_loss": g_loss.item()}
        _record_adversarial_step(self.name, stats)
        return stats

    # ------------------------------------------------------------------
    # Imputer API
    # ------------------------------------------------------------------
    def fit(self, dataset: IncompleteDataset) -> "GAINImputer":
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)
        self.build(dataset.n_features)
        values, mask = dataset.values, dataset.mask
        n = dataset.n_samples
        monitor = HealthMonitor(policy=self.on_divergence)
        for epoch in range(self.epochs):
            order = self.rng.permutation(n)
            epoch_stats = []
            for start in range(0, n, self.batch_size):
                index = order[start : start + self.batch_size]
                stats = self.adversarial_step(values[index], mask[index], self.rng)
                epoch_stats.append(stats)
                monitor.check_finite(
                    f"gan.{self.name}.step_g_loss", stats["g_loss"], epoch=epoch
                )
                if monitor.should_halt:
                    break
            _fit_epoch_telemetry(monitor, self.name, epoch, epoch_stats)
            if monitor.should_halt:
                break
        self.health_verdict = monitor.finalize()
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        mask = np.asarray(mask, dtype=np.float64)
        noise = self.sample_noise(mask.shape, np.random.default_rng(self.seed))
        with no_grad():
            return self.reconstruct_batch(values, mask, noise).data


def knn_graph_adjacency(
    features: np.ndarray, k: int = 5, self_loops: bool = True
) -> np.ndarray:
    """Symmetric-normalised adjacency of a k-NN similarity graph.

    Builds the graph with networkx (each node connects to its ``k`` nearest
    rows in Euclidean distance) and returns
    ``Â = D^{-1/2} (A + I) D^{-1/2}`` as a dense matrix for the GCN.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    sq = (features**2).sum(axis=1)
    distances = sq[:, None] + sq[None, :] - 2.0 * features @ features.T
    np.fill_diagonal(distances, np.inf)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    k_eff = min(k, n - 1)
    if k_eff > 0:
        neighbours = np.argpartition(distances, k_eff - 1, axis=1)[:, :k_eff]
        for i in range(n):
            for j in neighbours[i]:
                graph.add_edge(i, int(j))
    adjacency = nx.to_numpy_array(graph, nodelist=range(n))
    if self_loops:
        adjacency += np.eye(n)
    degree = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


class _GCNGenerator(Module):
    """Two-layer GCN autoencoder: X̄ = σ( Â · relu(Â X W1) · W2 )."""

    def __init__(self, n_features: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.layer1 = Linear(2 * n_features, hidden, rng=rng)
        self.layer2 = Linear(hidden, n_features, rng=rng)

    def forward(self, adjacency: Tensor, x: Tensor) -> Tensor:
        h = ops.relu(adjacency @ self.layer1(x))
        return ops.sigmoid(adjacency @ self.layer2(h))


class GINNImputer(GenerativeImputer):
    """Graph imputation neural network (adversarially trained GCN).

    ``critic_steps`` defaults to 5 per generator step (§VI).  The similarity
    graph is rebuilt per training batch (and once for reconstruction), which
    reproduces GINN's characteristic O(n²) scaling.
    """

    name = "ginn"

    def __init__(
        self,
        hidden: Optional[int] = None,
        k_neighbours: int = 5,
        critic_steps: int = 5,
        alpha: float = 10.0,
        epochs: int = 100,
        batch_size: int = 128,
        lr: float = 1e-3,
        noise_scale: float = 0.01,
        seed: int = 0,
        on_divergence: str = "warn",
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.k_neighbours = k_neighbours
        self.critic_steps = critic_steps
        self.alpha = alpha
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.noise_scale = noise_scale
        self.seed = seed
        self.on_divergence = on_divergence
        self.health_verdict: Optional[str] = None
        self.rng = np.random.default_rng(seed)
        self._generator: Optional[_GCNGenerator] = None
        self._critic: Optional[Module] = None
        self._g_optimizer: Optional[Adam] = None
        self._c_optimizer: Optional[Adam] = None
        self._column_means: Optional[np.ndarray] = None

    @property
    def generator(self) -> Module:
        if self._generator is None:
            raise RuntimeError("call build() or fit() first")
        return self._generator

    def build(self, n_features: int, rng: Optional[np.random.Generator] = None) -> None:
        if rng is not None:
            self.rng = rng
        hidden = self.hidden if self.hidden is not None else max(n_features, 8)
        self._n_features = n_features
        self._generator = _GCNGenerator(n_features, hidden, self.rng)
        self._critic = Sequential(
            Linear(n_features, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, hidden, rng=self.rng),
            ReLU(),
            Linear(hidden, 1, rng=self.rng),
            Sigmoid(),
        )
        self._g_optimizer = Adam(self._generator.parameters(), lr=self.lr)
        self._c_optimizer = Adam(self._critic.parameters(), lr=self.lr)

    def sample_noise(self, shape: tuple, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.noise_scale, size=shape)

    def _gcn_input(self, values: np.ndarray, mask: np.ndarray, noise: np.ndarray):
        filled = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
        mask = np.asarray(mask, dtype=np.float64)
        x_tilde = mask * filled + (1.0 - mask) * noise
        adjacency = knn_graph_adjacency(x_tilde, k=self.k_neighbours)
        g_input = np.concatenate([x_tilde, mask], axis=1)
        return adjacency, g_input, filled, mask

    def reconstruct_batch(
        self, values: np.ndarray, mask: np.ndarray, noise: np.ndarray
    ) -> Tensor:
        adjacency, g_input, _, _ = self._gcn_input(values, mask, noise)
        return self._generator(Tensor(adjacency), Tensor(g_input))

    def adversarial_step(
        self, values: np.ndarray, mask: np.ndarray, rng: np.random.Generator
    ) -> dict:
        noise = self.sample_noise(np.asarray(mask).shape, rng)
        adjacency, g_input, filled, mask = self._gcn_input(values, mask, noise)
        eps = 1e-8

        # --- critic: real rows (few missing) vs imputed rows ---
        with no_grad():
            x_bar = self._generator(Tensor(adjacency), Tensor(g_input)).data
        x_hat = mask * filled + (1.0 - mask) * x_bar
        d_loss_value = 0.0
        for _ in range(self.critic_steps):
            real_scores = self._critic(Tensor(filled))
            fake_scores = self._critic(Tensor(x_hat))
            d_loss = -(
                real_scores.clip(eps, 1 - eps).log().mean()
                + (1.0 - fake_scores).clip(eps, 1 - eps).log().mean()
            )
            self._c_optimizer.zero_grad()
            d_loss.backward()
            self._c_optimizer.step()
            d_loss_value = d_loss.item()

        # --- generator ---
        x_bar_t = self._generator(Tensor(adjacency), Tensor(g_input))
        x_hat_t = Tensor(mask) * Tensor(filled) + Tensor(1.0 - mask) * x_bar_t
        fake_scores = self._critic(x_hat_t)
        adv = -fake_scores.clip(eps, 1 - eps).log().mean()
        rec = ((Tensor(mask) * (x_bar_t - Tensor(filled))) ** 2).sum() / max(mask.sum(), 1.0)
        g_loss = adv + self.alpha * rec
        self._g_optimizer.zero_grad()
        g_loss.backward()
        self._g_optimizer.step()
        stats = {"d_loss": d_loss_value, "g_loss": g_loss.item()}
        _record_adversarial_step(self.name, stats)
        return stats

    def fit(self, dataset: IncompleteDataset) -> "GINNImputer":
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)
        self.build(dataset.n_features)
        values, mask = dataset.values, dataset.mask
        n = dataset.n_samples
        monitor = HealthMonitor(policy=self.on_divergence)
        for epoch in range(self.epochs):
            order = self.rng.permutation(n)
            epoch_stats = []
            for start in range(0, n, self.batch_size):
                index = order[start : start + self.batch_size]
                if index.size < 2:
                    continue
                stats = self.adversarial_step(values[index], mask[index], self.rng)
                epoch_stats.append(stats)
                monitor.check_finite(
                    f"gan.{self.name}.step_g_loss", stats["g_loss"], epoch=epoch
                )
                if monitor.should_halt:
                    break
            _fit_epoch_telemetry(monitor, self.name, epoch, epoch_stats)
            if monitor.should_halt:
                break
        self.health_verdict = monitor.finalize()
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        mask = np.asarray(mask, dtype=np.float64)
        noise = self.sample_noise(mask.shape, np.random.default_rng(self.seed))
        with no_grad():
            return self.reconstruct_batch(values, mask, noise).data
