"""Name → imputer factory registry used by the benchmark harness.

Keys follow the paper's method names (Table III/IV), lower-cased.
"""

from __future__ import annotations

from typing import Callable, Dict

from .autoencoders import EDDIImputer, HIVAEImputer, MIDAEImputer, MIWAEImputer, VAEImputer
from .base import Imputer
from .em import GaussianEMImputer
from .gan import GAINImputer, GINNImputer
from .ml import BaranImputer, MICEImputer, MissForestImputer
from .mlp import DataWigImputer, RRSIImputer
from .ot_direct import SinkhornImputer
from .simple import KNNImputer, MeanImputer, MedianImputer, ModeImputer

__all__ = ["REGISTRY", "make_imputer", "imputer_names"]

REGISTRY: Dict[str, Callable[..., Imputer]] = {
    "mean": MeanImputer,
    "median": MedianImputer,
    "mode": ModeImputer,
    "knn": KNNImputer,
    "em": GaussianEMImputer,
    "missforest": MissForestImputer,
    "missf": MissForestImputer,  # the paper's abbreviation
    "baran": BaranImputer,
    "mice": MICEImputer,
    "datawig": DataWigImputer,
    "rrsi": RRSIImputer,
    "midae": MIDAEImputer,
    "vaei": VAEImputer,
    "miwae": MIWAEImputer,
    "eddi": EDDIImputer,
    "hivae": HIVAEImputer,
    "ginn": GINNImputer,
    "gain": GAINImputer,
    "otdirect": SinkhornImputer,
}


def imputer_names() -> list[str]:
    """Canonical method names (deduplicated aliases)."""
    names = [name for name in REGISTRY if name != "missf"]
    return names


def make_imputer(name: str, **kwargs) -> Imputer:
    """Instantiate an imputer by (case-insensitive) name."""
    key = name.lower()
    if key not in REGISTRY:
        raise KeyError(f"unknown imputer {name!r}; options: {sorted(REGISTRY)}")
    return REGISTRY[key](**kwargs)
