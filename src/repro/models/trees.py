"""Decision-tree substrate: CART regression trees, random forests, AdaBoost.

Built from scratch (no scikit-learn in this environment) to power the
machine-learning baselines of §II.A: MissForest imputation rides on
:class:`RandomForestRegressor` and Baran on :class:`AdaBoostRegressor`
(AdaBoost.R2, the paper states Baran "employs AdaBoost as the prediction
model").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor", "AdaBoostRegressor"]


@dataclass
class _Node:
    """One tree node; leaves carry a prediction, internals a split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Depth cap; ``None`` grows until leaves are pure or tiny.
    min_samples_leaf:
        Minimum rows per leaf.
    max_features:
        Candidate features per split: ``None`` = all, an int, or a float
        fraction (random forests pass ``sqrt``-like fractions).
    rng:
        Generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 2,
        max_features: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def _n_candidates(self, d: int) -> int:
        if self.max_features is None:
            return d
        if isinstance(self.max_features, float) and 0 < self.max_features <= 1:
            return max(1, int(round(self.max_features * d)))
        return max(1, min(d, int(self.max_features)))

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Return ``(feature, threshold, gain)`` or ``None`` if no valid split.

        Uses the cumulative-sums identity so each feature scan is O(n log n).
        """
        n, d = x.shape
        total_sum = y.sum()
        total_sq = (y**2).sum()
        best = None
        best_gain = 1e-12
        features = self.rng.choice(d, size=self._n_candidates(d), replace=False)
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            counts = np.arange(1, n + 1, dtype=np.float64)
            # Valid split positions: between distinct x values, both sides big enough.
            left_n = counts[:-1]
            right_n = n - left_n
            valid = (
                (xs[1:] > xs[:-1])
                & (left_n >= self.min_samples_leaf)
                & (right_n >= self.min_samples_leaf)
            )
            if not valid.any():
                continue
            left_sse = csq[:-1] - csum[:-1] ** 2 / left_n
            right_sum = total_sum - csum[:-1]
            right_sq = total_sq - csq[:-1]
            right_sse = right_sq - right_sum**2 / right_n
            sse = np.where(valid, left_sse + right_sse, np.inf)
            idx = int(np.argmin(sse))
            parent_sse = total_sq - total_sum**2 / n
            gain = parent_sse - sse[idx]
            if gain > best_gain:
                best_gain = gain
                best = (int(feature), float((xs[idx] + xs[idx + 1]) / 2.0))
        if best is None:
            return None
        return best[0], best[1], best_gain

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.size < 2 * self.min_samples_leaf
            or np.ptp(y) == 0.0
        ):
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold, _ = split
        go_left = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[go_left], y[go_left], depth + 1)
        node.right = self._grow(x[~go_left], y[~go_left], depth + 1)
        return node

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.size:
            raise ValueError(f"bad shapes: x {x.shape}, y {y.shape}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero rows")
        self._root = self._grow(x, y, depth=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree must be fitted before predict")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(x.shape[0])
        # Iterative routing per row; trees are shallow so this is fine.
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out


class RandomForestRegressor:
    """Bagged CART ensemble with per-split feature subsampling."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: Optional[int] = 8,
        min_samples_leaf: int = 3,
        max_features: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = x.shape[0]
        self._trees = []
        for _ in range(self.n_trees):
            sample = self.rng.integers(0, n, size=n)  # bootstrap
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self.rng,
            )
            tree.fit(x[sample], y[sample])
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest must be fitted before predict")
        return np.mean([tree.predict(x) for tree in self._trees], axis=0)


class AdaBoostRegressor:
    """AdaBoost.R2 (Drucker 1997) over shallow CART trees."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.rng = rng if rng is not None else np.random.default_rng()
        self._estimators: List[DecisionTreeRegressor] = []
        self._weights: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = x.shape[0]
        sample_weights = np.full(n, 1.0 / n)
        self._estimators = []
        self._weights = []
        for _ in range(self.n_estimators):
            indices = self.rng.choice(n, size=n, p=sample_weights)
            tree = DecisionTreeRegressor(max_depth=self.max_depth, rng=self.rng)
            tree.fit(x[indices], y[indices])
            prediction = tree.predict(x)
            abs_error = np.abs(prediction - y)
            max_error = abs_error.max()
            if max_error <= 0:
                self._estimators.append(tree)
                self._weights.append(1.0)
                break
            loss = abs_error / max_error  # linear loss
            avg_loss = float((loss * sample_weights).sum())
            if avg_loss >= 0.5:
                if not self._estimators:  # keep at least one learner
                    self._estimators.append(tree)
                    self._weights.append(1.0)
                break
            beta = avg_loss / (1.0 - avg_loss)
            self._estimators.append(tree)
            self._weights.append(float(np.log(1.0 / max(beta, 1e-12))))
            sample_weights *= beta ** (1.0 - loss)
            sample_weights /= sample_weights.sum()
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Weighted-median combination, per AdaBoost.R2."""
        if not self._estimators:
            raise RuntimeError("ensemble must be fitted before predict")
        predictions = np.stack([est.predict(x) for est in self._estimators], axis=1)
        weights = np.asarray(self._weights)
        order = np.argsort(predictions, axis=1)
        sorted_preds = np.take_along_axis(predictions, order, axis=1)
        sorted_weights = weights[order]
        cumulative = np.cumsum(sorted_weights, axis=1)
        threshold = 0.5 * weights.sum()
        pick = (cumulative >= threshold).argmax(axis=1)
        return sorted_preds[np.arange(x.shape[0]), pick]
