"""Imputation models: the 12 baselines of Table III/IV plus statistical ones."""

from .autoencoders import EDDIImputer, HIVAEImputer, MIDAEImputer, MIWAEImputer, VAEImputer
from .base import GenerativeImputer, Imputer, impute_equation
from .em import GaussianEMImputer
from .gan import GAINImputer, GINNImputer, knn_graph_adjacency
from .ml import BaranImputer, MICEImputer, MissForestImputer, RidgeRegression
from .mlp import DataWigImputer, RRSIImputer
from .ot_direct import OtDirectReport, SinkhornImputer
from .registry import REGISTRY, imputer_names, make_imputer
from .simple import ConstantImputer, KNNImputer, MeanImputer, MedianImputer, ModeImputer
from .trees import AdaBoostRegressor, DecisionTreeRegressor, RandomForestRegressor

__all__ = [
    "Imputer",
    "GenerativeImputer",
    "impute_equation",
    "MeanImputer",
    "MedianImputer",
    "ModeImputer",
    "ConstantImputer",
    "KNNImputer",
    "GaussianEMImputer",
    "MissForestImputer",
    "MICEImputer",
    "BaranImputer",
    "RidgeRegression",
    "DataWigImputer",
    "RRSIImputer",
    "MIDAEImputer",
    "VAEImputer",
    "MIWAEImputer",
    "EDDIImputer",
    "HIVAEImputer",
    "GAINImputer",
    "GINNImputer",
    "SinkhornImputer",
    "OtDirectReport",
    "knn_graph_adjacency",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "AdaBoostRegressor",
    "REGISTRY",
    "make_imputer",
    "imputer_names",
]
