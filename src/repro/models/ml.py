"""Machine-learning imputers: MissForest, MICE, and Baran.

All three follow the classic iterative column-wise scheme: initialise with
column means, then cycle over incomplete columns (in ascending-missingness
order, as MissForest prescribes), regressing each on the currently-filled
remaining columns and overwriting its missing cells with predictions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from .base import Imputer
from .trees import AdaBoostRegressor, RandomForestRegressor

__all__ = ["MissForestImputer", "MICEImputer", "BaranImputer", "RidgeRegression"]


class RidgeRegression:
    """Closed-form ridge regression ``w = (XᵀX + λI)⁻¹ Xᵀ y`` with intercept."""

    def __init__(self, alpha: float = 1e-3) -> None:
        self.alpha = alpha
        self._weights: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        gram = design.T @ design
        gram[np.diag_indices_from(gram)] += self.alpha
        self._weights = np.linalg.solve(gram, design.T @ y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("regression must be fitted before predict")
        design = np.hstack([np.asarray(x, dtype=np.float64), np.ones((x.shape[0], 1))])
        return design @ self._weights


class _IterativeColumnImputer(Imputer):
    """Shared engine for chained-equation style imputers.

    Subclasses provide a regressor factory; :meth:`fit` memorises the final
    filled training matrix and the per-column models so new rows can be
    reconstructed too.
    """

    def __init__(self, n_iterations: int = 3, tol: float = 1e-4) -> None:
        super().__init__()
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = n_iterations
        self.tol = tol
        self._models: dict[int, object] = {}
        self._column_means: Optional[np.ndarray] = None
        self._filled_train: Optional[np.ndarray] = None

    def _make_regressor(self):
        raise NotImplementedError

    def _predict_noise(self, residual_std: float, size: int) -> np.ndarray:
        """Posterior noise added to predictions (zero for deterministic)."""
        del residual_std, size
        return 0.0

    def fit(self, dataset: IncompleteDataset) -> "_IterativeColumnImputer":
        values = dataset.values
        mask = dataset.mask
        n, d = values.shape
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)
        # Clamp iterative predictions to the observed range: keeps noisy
        # chains (MICE) from diverging on very sparse columns.
        with np.errstate(invalid="ignore"):
            self._column_low = np.nan_to_num(np.nanmin(values, axis=0), nan=0.0)
            self._column_high = np.nan_to_num(np.nanmax(values, axis=0), nan=1.0)
        filled = np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), self._column_means)

        missing_counts = (mask == 0.0).sum(axis=0)
        columns = [j for j in np.argsort(missing_counts) if 0 < missing_counts[j] < n]
        self._models = {}
        for _ in range(self.n_iterations):
            previous = filled.copy()
            for j in columns:
                observed_rows = mask[:, j] == 1.0
                other = np.delete(filled, j, axis=1)
                model = self._make_regressor()
                model.fit(other[observed_rows], values[observed_rows, j])
                self._models[j] = model
                prediction = model.predict(other[~observed_rows])
                residual = model.predict(other[observed_rows]) - values[observed_rows, j]
                noise = self._predict_noise(float(residual.std()), prediction.size)
                filled[~observed_rows, j] = np.clip(
                    prediction + noise, self._column_low[j], self._column_high[j]
                )
            delta = np.abs(filled - previous).max() if columns else 0.0
            if delta < self.tol:
                break
        self._filled_train = filled
        self._train_mask = mask.copy()
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        # For the training matrix itself, return the converged chained fill —
        # it carries the iterative refinement that a one-shot re-prediction
        # from mean-filled features would lose.
        if values.shape == self._filled_train.shape and np.array_equal(
            mask, self._train_mask
        ):
            return self._filled_train.copy()
        filled = np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), self._column_means)
        out = filled.copy()
        for j, model in self._models.items():
            other = np.delete(filled, j, axis=1)
            out[:, j] = np.clip(
                model.predict(other), self._column_low[j], self._column_high[j]
            )
        return out


class MissForestImputer(_IterativeColumnImputer):
    """Stekhoven & Bühlmann (2011): random-forest chained imputation."""

    name = "missforest"

    def __init__(
        self,
        n_trees: int = 10,
        max_depth: int = 6,
        n_iterations: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(n_iterations=n_iterations)
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.rng = np.random.default_rng(seed)

    def _make_regressor(self):
        return RandomForestRegressor(
            n_trees=self.n_trees, max_depth=self.max_depth, rng=self.rng
        )


class MICEImputer(_IterativeColumnImputer):
    """Multivariate imputation by chained equations (Royston & White 2011).

    Ridge regressions with posterior predictive noise; ``n_imputations``
    chains are averaged (the paper runs 20).
    """

    name = "mice"

    def __init__(
        self,
        n_imputations: int = 5,
        n_iterations: int = 3,
        alpha: float = 1e-3,
        seed: int = 0,
    ) -> None:
        super().__init__(n_iterations=n_iterations)
        if n_imputations < 1:
            raise ValueError(f"n_imputations must be >= 1, got {n_imputations}")
        self.n_imputations = n_imputations
        self.alpha = alpha
        self.rng = np.random.default_rng(seed)
        self._noise_on = True

    def _make_regressor(self):
        return RidgeRegression(alpha=self.alpha)

    def _predict_noise(self, residual_std: float, size: int):
        if not self._noise_on or size == 0:
            return 0.0
        return self.rng.normal(0.0, residual_std, size=size)

    def fit(self, dataset: IncompleteDataset) -> "MICEImputer":
        # Run several noisy chains; average their filled matrices.
        chains = []
        for _ in range(self.n_imputations):
            super().fit(dataset)
            chains.append(self._filled_train.copy())
        self._filled_train = np.mean(chains, axis=0)
        # Final deterministic models for reconstructing unseen rows.
        self._noise_on = False
        super().fit(dataset)
        self._noise_on = True
        self._fitted = True
        return self


class BaranImputer(_IterativeColumnImputer):
    """Baran-style imputation (Mahdavi & Abedjan 2020) with AdaBoost.R2.

    The original Baran is an error-correction system; the paper's experiment
    uses its AdaBoost prediction model for value imputation, which is what we
    reproduce: one boosted ensemble per incomplete column.
    """

    name = "baran"

    def __init__(
        self,
        n_estimators: int = 15,
        max_depth: int = 3,
        n_iterations: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(n_iterations=n_iterations)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.rng = np.random.default_rng(seed)

    def _make_regressor(self):
        return AdaBoostRegressor(
            n_estimators=self.n_estimators, max_depth=self.max_depth, rng=self.rng
        )
