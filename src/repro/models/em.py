"""Expectation-maximisation imputation under a multivariate Gaussian model.

The classic likelihood-based reference point (Dempster, Laird & Rubin 1977;
Little & Rubin 2002, ch. 11): alternate between

* **E-step** — for each row, fill missing coordinates with their conditional
  expectation under the current ``N(μ, Σ)`` given the observed coordinates
  (and accumulate the conditional covariance so Σ is not underestimated);
* **M-step** — re-estimate ``μ`` and ``Σ`` from the completed data.

On Gaussian-ish tables this is near-optimal and gives the deep methods an
honest classical yardstick beyond column means.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from .base import Imputer

__all__ = ["GaussianEMImputer"]


class GaussianEMImputer(Imputer):
    """EM imputation with a single multivariate Gaussian.

    Parameters
    ----------
    max_iterations:
        EM sweep cap.
    tol:
        Convergence threshold on the max absolute change of the filled
        matrix between sweeps.
    ridge:
        Diagonal loading added to Σ for numerical stability (data on [0, 1]
        scales; the default is conservative).
    """

    name = "em"

    def __init__(
        self,
        max_iterations: int = 50,
        tol: float = 1e-5,
        ridge: float = 1e-6,
    ) -> None:
        super().__init__()
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = max_iterations
        self.tol = tol
        self.ridge = ridge
        self.mean_: Optional[np.ndarray] = None
        self.covariance_: Optional[np.ndarray] = None
        self.n_iterations_: int = 0

    # ------------------------------------------------------------------
    def _conditional_fill(
        self, values: np.ndarray, mask: np.ndarray, accumulate_cov: bool = False
    ):
        """E-step: conditional means for missing coords, given observed ones.

        Returns the filled matrix and (optionally) the summed conditional
        covariance contribution for the M-step.
        """
        n, d = values.shape
        filled = np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), 0.0)
        extra_cov = np.zeros((d, d)) if accumulate_cov else None

        # Group rows by missingness pattern so each pattern solves one system.
        patterns: dict[bytes, list[int]] = {}
        for i in range(n):
            patterns.setdefault(mask[i].tobytes(), []).append(i)

        for pattern_bytes, rows in patterns.items():
            pattern = np.frombuffer(pattern_bytes, dtype=mask.dtype)
            observed = pattern == 1.0
            missing = ~observed
            if not missing.any():
                continue
            if not observed.any():
                filled[np.ix_(rows, np.where(missing)[0])] = self.mean_[missing]
                if accumulate_cov:
                    extra_cov[np.ix_(missing, missing)] += (
                        len(rows) * self.covariance_[np.ix_(missing, missing)]
                    )
                continue
            cov_oo = self.covariance_[np.ix_(observed, observed)].copy()
            cov_oo[np.diag_indices_from(cov_oo)] += self.ridge
            cov_mo = self.covariance_[np.ix_(missing, observed)]
            gain = cov_mo @ np.linalg.inv(cov_oo)
            deviations = filled[np.ix_(rows, np.where(observed)[0])] - self.mean_[observed]
            conditional = self.mean_[missing] + deviations @ gain.T
            filled[np.ix_(rows, np.where(missing)[0])] = conditional
            if accumulate_cov:
                cov_mm = self.covariance_[np.ix_(missing, missing)]
                conditional_cov = cov_mm - gain @ cov_mo.T
                extra_cov[np.ix_(missing, missing)] += len(rows) * conditional_cov
        return filled, extra_cov

    def fit(self, dataset: IncompleteDataset) -> "GaussianEMImputer":
        values = dataset.values
        mask = dataset.mask
        n, d = values.shape
        means = dataset.column_means()
        self.mean_ = np.where(np.isnan(means), 0.0, means)
        filled = np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), self.mean_)
        centered = filled - self.mean_
        self.covariance_ = centered.T @ centered / max(n - 1, 1)
        self.covariance_[np.diag_indices_from(self.covariance_)] += self.ridge

        for iteration in range(1, self.max_iterations + 1):
            previous = filled
            filled, extra_cov = self._conditional_fill(values, mask, accumulate_cov=True)
            self.mean_ = filled.mean(axis=0)
            centered = filled - self.mean_
            self.covariance_ = (centered.T @ centered + extra_cov) / max(n - 1, 1)
            self.covariance_[np.diag_indices_from(self.covariance_)] += self.ridge
            self.n_iterations_ = iteration
            if np.abs(filled - previous).max() < self.tol:
                break
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        filled, _ = self._conditional_fill(values, mask)
        return filled
