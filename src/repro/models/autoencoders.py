"""Autoencoder-based imputers: MIDAE, VAEI, MIWAE, EDDI, HIVAE.

Architecture sizes follow §VI "Implementation details":

* MIDAE — 2 hidden layers of 128 units, denoising via input dropout.
* VAEI — encoder/decoder with two 20-unit hidden layers, 10-d latent space.
* MIWAE — VAEI's backbone with K importance-weighted samples.
* EDDI — partial-VAE with a PointNet-style set encoder over observed cells.
* HIVAE — single 10-unit dense layer each side, heterogeneous likelihood
  heads (Gaussian for continuous/categorical codes, Bernoulli for binary).

All train with Adam (lr 1e-3), batch 128, on the observed-cell likelihood.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from ..nn import Dropout, Linear, Module, masked_mse_loss, mlp
from ..optim import Adam
from ..tensor import Tensor, no_grad, ops
from .base import Imputer

__all__ = ["MIDAEImputer", "VAEImputer", "MIWAEImputer", "EDDIImputer", "HIVAEImputer"]


class _DeepImputer(Imputer):
    """Shared config and fit loop for the deep imputers."""

    def __init__(
        self,
        epochs: int = 100,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._column_means: Optional[np.ndarray] = None
        self._optimizer: Optional[Adam] = None

    # Subclass hooks -----------------------------------------------------
    def _build(self, n_features: int) -> None:
        raise NotImplementedError

    def _train_batch(self, x_filled: np.ndarray, x_raw: np.ndarray, mask: np.ndarray) -> float:
        raise NotImplementedError

    def _reconstruct_filled(self, x_filled: np.ndarray, mask: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # Shared machinery ---------------------------------------------------
    def _fill(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return np.where(mask == 1.0, np.nan_to_num(values, nan=0.0), self._column_means)

    def fit(self, dataset: IncompleteDataset) -> "_DeepImputer":
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)
        self._build(dataset.n_features)
        values, mask = dataset.values, dataset.mask
        n = dataset.n_samples
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                index = order[start : start + self.batch_size]
                batch_mask = mask[index]
                batch_filled = self._fill(values[index], batch_mask)
                self._train_batch(batch_filled, values[index], batch_mask)
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        return self._reconstruct_filled(self._fill(values, mask), mask)


class MIDAEImputer(_DeepImputer):
    """Multiple-imputation denoising autoencoder (Gondara & Wang 2017)."""

    name = "midae"

    def __init__(
        self,
        hidden: int = 128,
        dropout: float = 0.5,
        n_imputations: int = 5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.hidden = hidden
        self.dropout_rate = dropout
        self.n_imputations = n_imputations
        self._net: Optional[Module] = None
        self._input_dropout: Optional[Dropout] = None

    def _build(self, n_features: int) -> None:
        self._input_dropout = Dropout(self.dropout_rate, rng=self.rng)
        self._net = mlp(
            [n_features, self.hidden, self.hidden, n_features],
            "relu",
            "identity",
            rng=self.rng,
        )
        self._optimizer = Adam(self._net.parameters(), lr=self.lr)

    def _train_batch(self, x_filled, x_raw, mask) -> float:
        corrupted = self._input_dropout(Tensor(x_filled))
        out = self._net(corrupted)
        loss = masked_mse_loss(out, Tensor(np.nan_to_num(x_raw, nan=0.0)), mask)
        self._optimizer.zero_grad()
        loss.backward()
        self._optimizer.step()
        return loss.item()

    def _reconstruct_filled(self, x_filled, mask) -> np.ndarray:
        # Multiple imputation: average several stochastic (dropout-on) passes.
        outputs = []
        with no_grad():
            for _ in range(self.n_imputations):
                corrupted = self._input_dropout(Tensor(x_filled))
                outputs.append(self._net(corrupted).data)
        return np.mean(outputs, axis=0)


class _GaussianEncoder(Module):
    """MLP trunk with mean / log-variance heads."""

    def __init__(self, sizes, latent: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.trunk = mlp(sizes, "tanh", "tanh", rng=rng)
        self.mean_head = Linear(sizes[-1], latent, rng=rng)
        self.logvar_head = Linear(sizes[-1], latent, rng=rng)

    def forward(self, x: Tensor):
        h = self.trunk(x)
        return self.mean_head(h), self.logvar_head(h).clip(-8.0, 8.0)


def _kl_standard_normal(mean: Tensor, logvar: Tensor) -> Tensor:
    """KL( N(mean, exp(logvar)) || N(0, I) ), summed over latent dims, mean over batch."""
    term = 1.0 + logvar - mean * mean - logvar.exp()
    return -0.5 * term.sum(axis=1).mean()


class VAEImputer(_DeepImputer):
    """Variational autoencoder imputation (McCoy et al. 2018)."""

    name = "vaei"

    def __init__(self, hidden: int = 20, latent: int = 10, kl_weight: float = 1.0, **kwargs):
        super().__init__(**kwargs)
        self.hidden = hidden
        self.latent = latent
        self.kl_weight = kl_weight
        self._encoder: Optional[_GaussianEncoder] = None
        self._decoder: Optional[Module] = None

    def _build(self, n_features: int) -> None:
        self._encoder = _GaussianEncoder(
            [n_features, self.hidden, self.hidden], self.latent, self.rng
        )
        self._decoder = mlp(
            [self.latent, self.hidden, self.hidden, n_features], "tanh", "identity", rng=self.rng
        )
        params = self._encoder.parameters() + self._decoder.parameters()
        self._optimizer = Adam(params, lr=self.lr)

    def _train_batch(self, x_filled, x_raw, mask) -> float:
        mean, logvar = self._encoder(Tensor(x_filled))
        epsilon = Tensor(self.rng.standard_normal(mean.shape))
        z = mean + (0.5 * logvar).exp() * epsilon
        out = self._decoder(z)
        recon = masked_mse_loss(out, Tensor(np.nan_to_num(x_raw, nan=0.0)), mask)
        kl = _kl_standard_normal(mean, logvar) / x_filled.shape[1]
        loss = recon + self.kl_weight * kl
        self._optimizer.zero_grad()
        loss.backward()
        self._optimizer.step()
        return loss.item()

    def _reconstruct_filled(self, x_filled, mask) -> np.ndarray:
        with no_grad():
            mean, _ = self._encoder(Tensor(x_filled))
            return self._decoder(mean).data


class MIWAEImputer(VAEImputer):
    """Missing-data importance-weighted autoencoder (Mattei & Frellsen 2019).

    Trains the IWAE bound with ``n_importance`` samples and imputes with
    self-normalised importance sampling.
    """

    name = "miwae"

    def __init__(self, n_importance: int = 5, obs_std: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        self.n_importance = max(1, n_importance)
        self.obs_std = obs_std

    def _log_terms(self, x_filled, x_raw, mask):
        """One importance sample's (log p(x|z) + log p(z) - log q(z|x), decoder mean)."""
        mean, logvar = self._encoder(Tensor(x_filled))
        epsilon = Tensor(self.rng.standard_normal(mean.shape))
        std = (0.5 * logvar).exp()
        z = mean + std * epsilon
        out = self._decoder(z)
        target = Tensor(np.nan_to_num(x_raw, nan=0.0))
        mask_t = Tensor(mask)
        log_px = (
            -0.5 * (((out - target) / self.obs_std) * ((out - target) / self.obs_std)) * mask_t
        ).sum(axis=1)
        log_pz = (-0.5 * z * z).sum(axis=1)
        log_qz = (-0.5 * (epsilon * epsilon) - 0.5 * logvar).sum(axis=1)
        return log_px + log_pz - log_qz, out

    def _train_batch(self, x_filled, x_raw, mask) -> float:
        rows = []
        for _ in range(self.n_importance):
            log_w, _ = self._log_terms(x_filled, x_raw, mask)
            rows.append(log_w.reshape(1, -1))
        stacked = ops.concat(rows, axis=0)  # (K, n)
        peak = ops.max(stacked, axis=0, keepdims=True)
        log_mean_w = peak.reshape(-1) + (
            (stacked - peak).exp().mean(axis=0)
        ).log()
        loss = -log_mean_w.mean()
        self._optimizer.zero_grad()
        loss.backward()
        self._optimizer.step()
        return loss.item()

    def _reconstruct_filled(self, x_filled, mask) -> np.ndarray:
        with no_grad():
            log_ws, outs = [], []
            for _ in range(self.n_importance):
                log_w, out = self._log_terms(x_filled, x_filled, mask)
                log_ws.append(log_w.data)
                outs.append(out.data)
        log_ws = np.stack(log_ws)  # (K, n)
        log_ws -= log_ws.max(axis=0, keepdims=True)
        weights = np.exp(log_ws)
        weights /= weights.sum(axis=0, keepdims=True)
        outs = np.stack(outs)  # (K, n, d)
        return (weights[:, :, None] * outs).sum(axis=0)


class EDDIImputer(_DeepImputer):
    """EDDI's partial-VAE (Ma et al. 2018), simplified.

    A PointNet-style set encoder embeds each *observed* cell as
    ``relu(x_ij * E_j + B_j)`` with learnable per-feature embeddings, sums
    over observed cells, and feeds the pooled code to a Gaussian encoder.
    The information-acquisition loop of the full EDDI framework is out of
    scope; the imputation backbone is what Table III exercises.
    """

    name = "eddi"

    def __init__(self, embed: int = 16, hidden: int = 20, latent: int = 10, **kwargs):
        super().__init__(**kwargs)
        self.embed = embed
        self.hidden = hidden
        self.latent = latent
        self._embedding = None
        self._bias = None
        self._encoder: Optional[_GaussianEncoder] = None
        self._decoder: Optional[Module] = None

    def _build(self, n_features: int) -> None:
        from ..nn.module import Parameter

        scale = 1.0 / np.sqrt(self.embed)
        self._embedding = Parameter(
            self.rng.normal(0.0, scale, size=(1, n_features, self.embed)), name="eddi_embed"
        )
        self._bias = Parameter(np.zeros((1, n_features, self.embed)), name="eddi_bias")
        self._encoder = _GaussianEncoder([self.embed, self.hidden], self.latent, self.rng)
        self._decoder = mlp(
            [self.latent, self.hidden, n_features], "tanh", "identity", rng=self.rng
        )
        params = (
            [self._embedding, self._bias]
            + self._encoder.parameters()
            + self._decoder.parameters()
        )
        self._optimizer = Adam(params, lr=self.lr)

    def _encode_set(self, x_filled: np.ndarray, mask: np.ndarray):
        n, d = x_filled.shape
        x3 = Tensor(x_filled.reshape(n, d, 1))
        m3 = Tensor(mask.reshape(n, d, 1))
        cell = ops.relu(x3 * self._embedding + self._bias) * m3  # (n, d, e)
        pooled = cell.sum(axis=1)  # (n, e)
        return self._encoder(pooled)

    def _train_batch(self, x_filled, x_raw, mask) -> float:
        mean, logvar = self._encode_set(x_filled, mask)
        epsilon = Tensor(self.rng.standard_normal(mean.shape))
        z = mean + (0.5 * logvar).exp() * epsilon
        out = self._decoder(z)
        recon = masked_mse_loss(out, Tensor(np.nan_to_num(x_raw, nan=0.0)), mask)
        kl = _kl_standard_normal(mean, logvar) / x_filled.shape[1]
        loss = recon + kl
        self._optimizer.zero_grad()
        loss.backward()
        self._optimizer.step()
        return loss.item()

    def _reconstruct_filled(self, x_filled, mask) -> np.ndarray:
        with no_grad():
            mean, _ = self._encode_set(x_filled, mask)
            return self._decoder(mean).data


class HIVAEImputer(_DeepImputer):
    """Heterogeneous-incomplete VAE (Nazabal et al. 2018), simplified.

    One 10-unit dense layer on each side (§VI).  Continuous and categorical
    code columns use a Gaussian likelihood; binary columns a Bernoulli head.
    """

    name = "hivae"

    def __init__(self, hidden: int = 10, latent: int = 10, **kwargs):
        super().__init__(**kwargs)
        self.hidden = hidden
        self.latent = latent
        self._encoder: Optional[_GaussianEncoder] = None
        self._trunk: Optional[Module] = None
        self._gaussian_head: Optional[Linear] = None
        self._binary_head: Optional[Linear] = None
        self._binary_columns: Optional[np.ndarray] = None

    def fit(self, dataset: IncompleteDataset) -> "HIVAEImputer":
        self._binary_columns = np.array(
            [kind == "binary" for kind in dataset.feature_types], dtype=bool
        )
        return super().fit(dataset)

    def _build(self, n_features: int) -> None:
        if self._binary_columns is None:
            self._binary_columns = np.zeros(n_features, dtype=bool)
        self._encoder = _GaussianEncoder([n_features, self.hidden], self.latent, self.rng)
        self._trunk = mlp([self.latent, self.hidden], "tanh", "tanh", rng=self.rng)
        self._gaussian_head = Linear(self.hidden, n_features, rng=self.rng)
        self._binary_head = Linear(self.hidden, n_features, rng=self.rng)
        params = (
            self._encoder.parameters()
            + self._trunk.parameters()
            + self._gaussian_head.parameters()
            + self._binary_head.parameters()
        )
        self._optimizer = Adam(params, lr=self.lr)

    def _decode(self, z: Tensor) -> Tensor:
        h = self._trunk(z)
        gaussian = self._gaussian_head(h)
        binary = ops.sigmoid(self._binary_head(h))
        selector = self._binary_columns[None, :]
        return ops.where(np.broadcast_to(selector, gaussian.shape), binary, gaussian)

    def _train_batch(self, x_filled, x_raw, mask) -> float:
        mean, logvar = self._encoder(Tensor(x_filled))
        epsilon = Tensor(self.rng.standard_normal(mean.shape))
        z = mean + (0.5 * logvar).exp() * epsilon
        out = self._decode(z)
        recon = masked_mse_loss(out, Tensor(np.nan_to_num(x_raw, nan=0.0)), mask)
        kl = _kl_standard_normal(mean, logvar) / x_filled.shape[1]
        loss = recon + kl
        self._optimizer.zero_grad()
        loss.backward()
        self._optimizer.step()
        return loss.item()

    def _reconstruct_filled(self, x_filled, mask) -> np.ndarray:
        with no_grad():
            mean, _ = self._encoder(Tensor(x_filled))
            return self._decode(mean).data
