"""Statistical imputers: column statistics and nearest neighbours.

These are the "statistical ones" of §II.A — cheap baselines and the
initialisation step for the iterative machine-learning imputers.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..data.dataset import IncompleteDataset
from .base import Imputer

__all__ = ["MeanImputer", "MedianImputer", "ModeImputer", "ConstantImputer", "KNNImputer"]


class _ColumnStatImputer(Imputer):
    """Shared machinery: fill each column with a per-column statistic."""

    def __init__(self) -> None:
        super().__init__()
        self._fill: Optional[np.ndarray] = None

    def _statistic(self, dataset: IncompleteDataset) -> np.ndarray:
        raise NotImplementedError

    def fit(self, dataset: IncompleteDataset) -> "Imputer":
        fill = self._statistic(dataset)
        # Columns with no observations fall back to zero.
        self._fill = np.where(np.isnan(fill), 0.0, fill)
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        n = np.asarray(values).shape[0]
        return np.tile(self._fill, (n, 1))


class MeanImputer(_ColumnStatImputer):
    """Fill with the observed column mean."""

    name = "mean"

    def _statistic(self, dataset: IncompleteDataset) -> np.ndarray:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return np.nanmean(dataset.values, axis=0)


class MedianImputer(_ColumnStatImputer):
    """Fill with the observed column median."""

    name = "median"

    def _statistic(self, dataset: IncompleteDataset) -> np.ndarray:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return np.nanmedian(dataset.values, axis=0)


class ModeImputer(_ColumnStatImputer):
    """Fill with the most frequent observed value (for categorical codes)."""

    name = "mode"

    def _statistic(self, dataset: IncompleteDataset) -> np.ndarray:
        d = dataset.n_features
        fill = np.full(d, np.nan)
        for j in range(d):
            column = dataset.values[:, j]
            observed = column[~np.isnan(column)]
            if observed.size == 0:
                continue
            uniques, counts = np.unique(observed, return_counts=True)
            fill[j] = uniques[np.argmax(counts)]
        return fill


class ConstantImputer(_ColumnStatImputer):
    """Fill every missing cell with one constant."""

    name = "constant"

    def __init__(self, value: float = 0.0) -> None:
        super().__init__()
        self.value = value

    def _statistic(self, dataset: IncompleteDataset) -> np.ndarray:
        return np.full(dataset.n_features, self.value)


class KNNImputer(Imputer):
    """k-nearest-neighbour imputation on mutually observed dimensions.

    Distance between two rows is the mean squared difference over columns
    observed in *both* rows (scaled Euclidean); a missing cell is filled with
    the average of that column over the ``k`` nearest rows observing it.
    """

    name = "knn"

    def __init__(self, k: int = 5) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._train_values: Optional[np.ndarray] = None
        self._train_mask: Optional[np.ndarray] = None
        self._column_means: Optional[np.ndarray] = None

    def fit(self, dataset: IncompleteDataset) -> "KNNImputer":
        self._train_values = np.nan_to_num(dataset.values, nan=0.0)
        self._train_mask = dataset.mask.copy()
        means = dataset.column_means()
        self._column_means = np.where(np.isnan(means), 0.0, means)
        self._fitted = True
        return self

    def reconstruct(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = np.nan_to_num(np.asarray(values, dtype=np.float64), nan=0.0)
        mask = np.asarray(mask, dtype=np.float64)
        train_v, train_m = self._train_values, self._train_mask
        n = values.shape[0]
        out = np.tile(self._column_means, (n, 1))
        for i in range(n):
            shared = mask[i][None, :] * train_m  # columns observed in both
            counts = shared.sum(axis=1)
            diff = (values[i][None, :] - train_v) * shared
            with np.errstate(invalid="ignore", divide="ignore"):
                distances = np.where(counts > 0, (diff**2).sum(axis=1) / counts, np.inf)
            order = np.argsort(distances)
            for j in range(values.shape[1]):
                donors = order[train_m[order, j] == 1.0][: self.k]
                donors = donors[np.isfinite(distances[donors])]
                if donors.size:
                    out[i, j] = train_v[donors, j].mean()
        return out
