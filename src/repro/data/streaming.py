"""Out-of-core imputation for tables that do not fit in memory.

§II.A motivates SCIS with exactly this failure mode: batch-gradient methods
"may be too large to fit in memory".  SCIS only ever *trains* on
``n₀ + n*`` rows, so the full table never needs to be resident:

1. :class:`CsvRowStream` reads a CSV in row chunks;
2. :meth:`CsvRowStream.scan` collects the row count, per-column observed
   ranges, and a reservoir sample (Vitter's algorithm R) in **one** pass;
3. :func:`impute_csv_streaming` trains SCIS on those samples and streams the
   imputation chunk-by-chunk into an output CSV.

Memory footprint is O(chunk + n*) rows regardless of the table's size, and
the whole pipeline reads the input exactly twice: one combined pre-training
pass, one imputation pass.
"""

from __future__ import annotations

import csv
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from ..models.base import GenerativeImputer, impute_equation
from ..tensor import no_grad
from .dataset import IncompleteDataset
from .io import _MISSING_TOKENS
from .normalize import MinMaxNormalizer

__all__ = [
    "CsvRowStream",
    "ScanResult",
    "reservoir_sample",
    "impute_csv_streaming",
    "sample_noise_indexed",
    "impute_chunk_indexed",
    "train_scis_from_scan",
    "scan_sample_budget",
    "StreamingReport",
    "NOISE_BLOCK_ROWS",
]

# Noise for row i is drawn inside the fixed-size block ``i // NOISE_BLOCK_ROWS``
# from a generator seeded by (seed, block).  Blocks are an implementation
# detail of :func:`sample_noise_indexed`: they make per-row noise a pure
# function of the *absolute* row index, so chunked, sharded, and in-memory
# imputation all see identical noise regardless of how rows are batched.
NOISE_BLOCK_ROWS = 1024


def sample_noise_indexed(
    model: GenerativeImputer,
    start: int,
    n_rows: int,
    n_features: int,
    seed: int,
) -> np.ndarray:
    """Generator noise for rows ``start .. start + n_rows``, index-addressed.

    The noise for any row depends only on ``(seed, absolute row index)``:
    rows are grouped into fixed blocks of :data:`NOISE_BLOCK_ROWS`, each
    block is drawn in one :meth:`GenerativeImputer.sample_noise` call from a
    generator seeded by ``(seed, block)``, and the requested slice is cut
    out.  Imputing the same table with the same seed therefore produces
    identical output at any ``chunk_size`` and any shard layout.
    """
    if start < 0 or n_rows < 0:
        raise ValueError(f"invalid noise range start={start}, n_rows={n_rows}")
    out = np.empty((n_rows, n_features))
    if n_rows == 0:
        return out
    stop = start + n_rows
    first_block = start // NOISE_BLOCK_ROWS
    last_block = (stop - 1) // NOISE_BLOCK_ROWS
    for block in range(first_block, last_block + 1):
        block_start = block * NOISE_BLOCK_ROWS
        rng = np.random.default_rng([seed, block])
        block_noise = model.sample_noise((NOISE_BLOCK_ROWS, n_features), rng)
        lo = max(start, block_start)
        hi = min(stop, block_start + NOISE_BLOCK_ROWS)
        out[lo - start : hi - start] = block_noise[lo - block_start : hi - block_start]
    return out


def impute_chunk_indexed(
    model: GenerativeImputer,
    normalizer: MinMaxNormalizer,
    values: np.ndarray,
    mask: np.ndarray,
    row_offset: int,
    noise_seed: int,
) -> np.ndarray:
    """Impute one chunk of raw rows; returns values on the original scale.

    Missing cells go through normalise → reconstruct (with index-addressed
    noise, see :func:`sample_noise_indexed`) → Eq. 1 → inverse-normalise;
    observed cells are copied through *verbatim*, never touching the
    float round trip.  Every out-of-core path (streaming CSV, shard-wise,
    and the dense reference) funnels through this one function, which is
    what makes their outputs bit-identical.
    """
    values = np.asarray(values, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    normalized = normalizer.transform(values)
    noise = sample_noise_indexed(
        model, row_offset, values.shape[0], values.shape[1], noise_seed
    )
    with no_grad():
        recon = model.reconstruct_batch(normalized, mask, noise).data
    imputed = impute_equation(normalized, mask, recon)
    restored = normalizer.inverse_transform(imputed)
    observed = mask == 1.0
    restored[observed] = values[observed]
    return restored


@dataclass(frozen=True)
class ScanResult:
    """Everything one combined pass over a CSV can tell up front.

    ``sample`` is ``None`` unless a reservoir was requested; when the file
    has fewer rows than ``sample_size`` it simply holds every row.
    """

    rows: int
    minima: np.ndarray
    maxima: np.ndarray
    sample: Optional[np.ndarray] = None


class CsvRowStream:
    """Chunked reader for a numeric CSV with missing markers.

    Iterating yields ``(values, mask)`` chunk pairs; the file is re-read on
    each pass (the stream is restartable).
    """

    def __init__(
        self,
        path: Union[str, Path],
        chunk_size: int = 4096,
        has_header: bool = True,
        delimiter: str = ",",
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.path = Path(path)
        self.chunk_size = chunk_size
        self.has_header = has_header
        self.delimiter = delimiter
        self._header: Optional[List[str]] = None
        self._n_features: Optional[int] = None

    # ------------------------------------------------------------------
    def _parse_row(self, row: Sequence[str]) -> np.ndarray:
        out = np.empty(len(row))
        for j, cell in enumerate(row):
            token = cell.strip()
            if token.lower() in _MISSING_TOKENS:
                out[j] = np.nan
                continue
            try:
                out[j] = float(token)
            except ValueError:
                out[j] = np.nan
        return out

    @property
    def header(self) -> Optional[List[str]]:
        if self._header is None and self.has_header:
            with self.path.open(newline="") as handle:
                first = next(csv.reader(handle, delimiter=self.delimiter), None)
            if first is None:
                # A bare StopIteration here would surface as an opaque
                # RuntimeError/StopIteration at the caller; name the file.
                raise ValueError(f"{self.path} is empty")
            self._header = [cell.strip() for cell in first]
        return self._header

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(values, mask)`` arrays of up to ``chunk_size`` rows."""
        with self.path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            if self.has_header:
                next(reader, None)
            buffer: List[np.ndarray] = []
            for row in reader:
                if not row:
                    continue
                parsed = self._parse_row(row)
                if self._n_features is None:
                    self._n_features = parsed.size
                elif parsed.size != self._n_features:
                    raise ValueError(
                        f"{self.path}: ragged row with {parsed.size} cells, "
                        f"expected {self._n_features}"
                    )
                buffer.append(parsed)
                if len(buffer) == self.chunk_size:
                    values = np.stack(buffer)
                    yield values, (~np.isnan(values)).astype(np.float64)
                    buffer = []
            if buffer:
                values = np.stack(buffer)
                yield values, (~np.isnan(values)).astype(np.float64)

    def scan(
        self,
        sample_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ScanResult:
        """Row count, observed ranges, and (optionally) a reservoir — one pass.

        Replaces the separate ``count_rows()`` + ``observed_ranges()`` +
        ``reservoir_sample()`` passes with a single read of the file.  The
        reservoir update is Vitter's algorithm R, drawing from ``rng``
        exactly as :func:`reservoir_sample` does, so a scan with the same
        generator state produces the same sample.
        """
        if sample_size is not None:
            if sample_size < 1:
                raise ValueError(f"sample_size must be >= 1, got {sample_size}")
            if rng is None:
                raise ValueError("scan(sample_size=...) requires an rng")
        minima: Optional[np.ndarray] = None
        maxima: Optional[np.ndarray] = None
        reservoir: List[np.ndarray] = []
        seen = 0
        for values, _ in self.chunks():
            with warnings.catch_warnings():
                # all-NaN columns are legal; their nanmin/nanmax warning is noise
                warnings.simplefilter("ignore", RuntimeWarning)
                chunk_min = np.nanmin(values, axis=0)
                chunk_max = np.nanmax(values, axis=0)
            if minima is None:
                minima, maxima = chunk_min, chunk_max
            else:
                minima = np.fmin(minima, chunk_min)
                maxima = np.fmax(maxima, chunk_max)
            if sample_size is None:
                seen += values.shape[0]
                continue
            for row in values:
                seen += 1
                _reservoir_push(reservoir, row, seen, sample_size, rng)
        if minima is None:
            # Match the header property / read_csv wording: a zero-byte file
            # "is empty", a header-only file "has a header but no data rows".
            if self.path.stat().st_size == 0:
                raise ValueError(f"{self.path} is empty")
            if self.has_header:
                raise ValueError(f"{self.path} has a header but no data rows")
            raise ValueError(f"{self.path} has no data rows")
        minima = np.where(np.isnan(minima), 0.0, minima)
        maxima = np.where(np.isnan(maxima), 1.0, maxima)
        sample = np.stack(reservoir) if reservoir else None
        return ScanResult(rows=seen, minima=minima, maxima=maxima, sample=sample)

    def count_rows(self) -> int:
        """One cheap pass counting data rows."""
        total = 0
        for values, _ in self.chunks():
            total += values.shape[0]
        return total

    def observed_ranges(self) -> tuple[np.ndarray, np.ndarray]:
        """Streaming per-column (min, max) over observed cells."""
        result = self.scan()
        return result.minima, result.maxima


def _reservoir_push(
    reservoir: List[np.ndarray],
    row: np.ndarray,
    seen: int,
    size: int,
    rng: np.random.Generator,
) -> None:
    """One Vitter algorithm-R step; shared by the CSV and shard scanners.

    ``seen`` counts ``row`` itself (1-based), so the generator consumption
    is identical wherever the rows come from — the property the
    sharded-vs-streaming reservoir parity tests pin.
    """
    if len(reservoir) < size:
        reservoir.append(row.copy())
    else:
        slot = rng.integers(0, seen)
        if slot < size:
            reservoir[slot] = row.copy()


def reservoir_sample(
    stream: CsvRowStream, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform sample of ``size`` rows in one pass (Vitter's algorithm R)."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    result = stream.scan(sample_size=size, rng=rng)
    if result.rows < size:
        raise ValueError(f"stream has only {result.rows} rows, requested {size}")
    return result.sample


@dataclass(frozen=True)
class StreamingReport:
    """Summary of one streaming imputation run."""

    rows: int
    n_star: int
    sample_rate: float
    training_seconds: float


def scan_sample_budget(scis_config) -> int:
    """Reservoir budget for one pre-training scan.

    Oversized on purpose — the reservoir is capped at however many rows
    exist, so a too-large budget costs nothing, while a too-small one would
    starve SCIS of retraining head-room.
    """
    return max(4 * (scis_config.initial_size + scis_config.validation_size), 2048)


def train_scis_from_scan(scannable, model, scis_config, seed: int, source: str):
    """Scan ``scannable`` once and train SCIS on the reservoir.

    ``scannable`` is anything with a ``scan(sample_size=..., rng=...)``
    returning a :class:`ScanResult` — a :class:`CsvRowStream` or a
    :class:`~repro.data.shards.ShardStore`.  Returns
    ``(normalizer, scis_result, training_seconds, total_rows)``; the
    normalizer is fitted from the scan's merged observed ranges, so no path
    ever materialises the table to compute statistics.
    """
    import time as _time

    from ..core.scis import SCIS, ScisConfig

    if scis_config is None:
        scis_config = ScisConfig()
    rng = np.random.default_rng(seed)
    scan = scannable.scan(sample_size=scan_sample_budget(scis_config), rng=rng)
    total_rows = scan.rows
    required = scis_config.initial_size + scis_config.validation_size
    if total_rows < required:
        raise ValueError(
            f"{source} has only {total_rows} data rows but SCIS needs at "
            f"least initial_size + validation_size = {required} rows for its "
            f"training split; lower ScisConfig.initial_size/validation_size "
            f"or provide more data"
        )
    normalizer = MinMaxNormalizer()
    normalizer.minima = scan.minima
    normalizer.ranges = scan.maxima - scan.minima

    start = _time.perf_counter()
    sample = IncompleteDataset(normalizer.transform(scan.sample), name="stream-sample")
    result = SCIS(model, scis_config).fit_transform(sample)
    return normalizer, result, _time.perf_counter() - start, total_rows


def impute_csv_streaming(
    input_path: Union[str, Path, CsvRowStream],
    output_path: Union[str, Path],
    model: GenerativeImputer,
    scis_config=None,
    chunk_size: int = 4096,
    seed: int = 0,
) -> StreamingReport:
    """Impute a CSV of arbitrary size with SCIS, never materialising it.

    The row count, normalisation statistics, and the training reservoir
    (validation + initial + the SSE-estimated minimum sample) all come from
    one combined :meth:`CsvRowStream.scan` pass; imputation then streams
    chunk-by-chunk into ``output_path``.  Exactly two passes touch the
    input, total.

    ``input_path`` may be a ready-made :class:`CsvRowStream` (``chunk_size``
    is then ignored), e.g. to reuse a configured stream or to instrument
    passes in tests.
    """
    if isinstance(input_path, CsvRowStream):
        stream = input_path
    else:
        stream = CsvRowStream(input_path, chunk_size=chunk_size)

    # Pass 1: count + ranges + reservoir, combined.
    normalizer, result, training_seconds, total_rows = train_scis_from_scan(
        stream, model, scis_config, seed=seed, source=str(stream.path)
    )

    # Pass 2: stream the imputation.  Noise is addressed by absolute row
    # index (same seed => identical output at any chunk_size), and observed
    # cells bypass the transform→inverse round trip entirely — the serving
    # layer guarantees bit-exact observed-cell passthrough, and the
    # streaming path must match it.
    output_path = Path(output_path)
    row_offset = 0
    with output_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = stream.header
        if header is not None:
            writer.writerow(header)
        for values, mask in stream.chunks():
            restored = impute_chunk_indexed(
                model, normalizer, values, mask, row_offset, noise_seed=seed + 1
            )
            row_offset += values.shape[0]
            for row in restored:
                writer.writerow([f"{value:.10g}" for value in row])

    return StreamingReport(
        rows=total_rows,
        n_star=result.n_star,
        sample_rate=result.n_star / total_rows,
        training_seconds=training_seconds,
    )
