"""Missingness mechanisms and the paper's evaluation protocol.

Amputation (dropping observed values) supports three mechanisms:

* **MCAR** — missing completely at random: every observed cell is dropped
  independently with equal probability.  This is the paper's working
  assumption (§IV, Example 1).
* **MAR** — missing at random: the drop probability of a cell depends on
  *observed* values of other columns (here: the row's value in a pivot
  column shifts the logit).
* **MNAR** — missing not at random: the drop probability depends on the
  cell's own (unobserved) value — larger values more likely to vanish.

The RMSE protocol of §VI ("randomly remove 20 % observed values during
training ... use these observed values as the ground-truth") is implemented
by :func:`holdout_split`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["ampute", "holdout_split", "HoldoutSplit"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def ampute(
    dataset: IncompleteDataset,
    rate: float,
    mechanism: str = "mcar",
    rng: np.random.Generator | None = None,
    strength: float = 2.0,
) -> IncompleteDataset:
    """Drop a fraction of the *observed* cells under a missingness mechanism.

    Parameters
    ----------
    dataset:
        Input (possibly already incomplete) dataset.
    rate:
        Target fraction of currently-observed cells to drop, in [0, 1).
    mechanism:
        ``"mcar"``, ``"mar"``, or ``"mnar"``.
    rng:
        Random generator (required for reproducibility in experiments).
    strength:
        Logit slope for the MAR / MNAR dependence; ignored for MCAR.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"amputation rate must be in [0, 1), got {rate}")
    if rng is None:
        rng = np.random.default_rng()
    mechanism = mechanism.lower()
    values = dataset.values.copy()
    observed = dataset.mask == 1.0
    n, d = values.shape

    if mechanism == "mcar":
        probs = np.full((n, d), rate)
    elif mechanism in ("mar", "mnar"):
        if mechanism == "mar":
            # Drop probability of column j driven by the observed value in the
            # "pivot" column (j+1) mod d, standardised over observed entries.
            driver = np.zeros((n, d))
            for j in range(d):
                pivot = (j + 1) % d
                col = values[:, pivot]
                col_mask = observed[:, pivot]
                mean = col[col_mask].mean() if col_mask.any() else 0.0
                std = col[col_mask].std() if col_mask.any() else 1.0
                std = std if std > 0 else 1.0
                z = np.where(col_mask, (col - mean) / std, 0.0)
                driver[:, j] = z
        else:  # mnar: the cell's own value drives its disappearance
            with np.errstate(invalid="ignore"):
                means = np.nanmean(np.where(observed, values, np.nan), axis=0)
                stds = np.nanstd(np.where(observed, values, np.nan), axis=0)
            stds = np.where((stds == 0) | np.isnan(stds), 1.0, stds)
            means = np.where(np.isnan(means), 0.0, means)
            driver = np.where(observed, (values - means) / stds, 0.0)
        base = _sigmoid(strength * driver)
        # Calibrate so the expected drop fraction over observed cells = rate.
        scale = rate * observed.sum() / max(base[observed].sum(), 1e-12)
        probs = np.clip(base * scale, 0.0, 1.0)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}; use mcar/mar/mnar")

    drop = observed & (rng.random((n, d)) < probs)
    values[drop] = np.nan
    return IncompleteDataset(
        values,
        feature_names=list(dataset.feature_names),
        feature_types=list(dataset.feature_types),
        name=dataset.name,
    )


@dataclass(frozen=True)
class HoldoutSplit:
    """Output of :func:`holdout_split`.

    Attributes
    ----------
    train:
        Dataset with the held-out cells *additionally* masked out.
    holdout_mask:
        1 where a cell was observed in the input but hidden for training.
    truth:
        The original values at the held-out cells (0 elsewhere).
    """

    train: IncompleteDataset
    holdout_mask: np.ndarray
    truth: np.ndarray

    def rmse(self, imputed: np.ndarray) -> float:
        """Root-mean-square error of ``imputed`` at the held-out cells."""
        mask = self.holdout_mask
        count = mask.sum()
        if count == 0:
            raise ValueError("holdout mask is empty")
        diff = (np.asarray(imputed) - self.truth) * mask
        return float(np.sqrt((diff**2).sum() / count))

    def mae(self, imputed: np.ndarray) -> float:
        """Mean absolute error at the held-out cells."""
        mask = self.holdout_mask
        count = mask.sum()
        if count == 0:
            raise ValueError("holdout mask is empty")
        diff = np.abs(np.asarray(imputed) - self.truth) * mask
        return float(diff.sum() / count)


def holdout_split(
    dataset: IncompleteDataset,
    rate: float = 0.2,
    rng: np.random.Generator | None = None,
) -> HoldoutSplit:
    """Hide ``rate`` of the observed cells to serve as RMSE ground truth."""
    if not 0.0 < rate < 1.0:
        raise ValueError(f"holdout rate must be in (0, 1), got {rate}")
    if rng is None:
        rng = np.random.default_rng()
    observed = dataset.mask == 1.0
    hide = observed & (rng.random(dataset.shape) < rate)
    values = dataset.values.copy()
    truth = np.where(hide, np.nan_to_num(dataset.values, nan=0.0), 0.0)
    values[hide] = np.nan
    train = IncompleteDataset(
        values,
        feature_names=list(dataset.feature_names),
        feature_types=list(dataset.feature_types),
        name=dataset.name,
    )
    return HoldoutSplit(train=train, holdout_mask=hide.astype(np.float64), truth=truth)
