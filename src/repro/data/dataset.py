"""The incomplete-dataset container used across the system.

Follows the paper's conventions: the data matrix ``X`` is ``(N, d)`` with
``np.nan`` marking missing cells, and the mask matrix ``M`` has ``m_ij = 1``
iff cell ``(i, j)`` is observed (Section II.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["IncompleteDataset", "SplitResult"]


@dataclass(frozen=True)
class SplitResult:
    """Validation / initial / remainder split of Algorithm 1, line 1."""

    validation: "IncompleteDataset"
    initial: "IncompleteDataset"
    validation_indices: np.ndarray
    initial_indices: np.ndarray


@dataclass
class IncompleteDataset:
    """A matrix with missing entries plus its mask and metadata.

    Parameters
    ----------
    values:
        ``(N, d)`` float matrix; missing entries are ``np.nan``.
    feature_names:
        Optional column labels (defaults to ``f0..f{d-1}``).
    feature_types:
        Per-column kind: ``"continuous"``, ``"binary"``, or ``"categorical"``.
        Defaults to all continuous.  Categorical columns hold integer codes.
    name:
        Human-readable dataset name for reports.
    """

    values: np.ndarray
    feature_names: Optional[List[str]] = None
    feature_types: Optional[List[str]] = None
    name: str = "dataset"
    _mask: np.ndarray = field(init=False, repr=False)

    _VALID_TYPES = ("continuous", "binary", "categorical")

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {self.values.shape}")
        n, d = self.values.shape
        if self.feature_names is None:
            self.feature_names = [f"f{j}" for j in range(d)]
        if len(self.feature_names) != d:
            raise ValueError("feature_names length does not match #columns")
        if self.feature_types is None:
            self.feature_types = ["continuous"] * d
        if len(self.feature_types) != d:
            raise ValueError("feature_types length does not match #columns")
        for kind in self.feature_types:
            if kind not in self._VALID_TYPES:
                raise ValueError(f"unknown feature type {kind!r}")
        self._mask = (~np.isnan(self.values)).astype(np.float64)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        """Mask matrix M: 1 where observed, 0 where missing."""
        return self._mask

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.values.shape

    @property
    def missing_rate(self) -> float:
        """Fraction of missing cells over the whole matrix."""
        return float(1.0 - self._mask.mean())

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:
        return (
            f"IncompleteDataset(name={self.name!r}, shape={self.shape}, "
            f"missing_rate={self.missing_rate:.2%})"
        )

    # ------------------------------------------------------------------
    # Constructors and views
    # ------------------------------------------------------------------
    @classmethod
    def from_mask(
        cls,
        full_values: np.ndarray,
        mask: np.ndarray,
        **kwargs,
    ) -> "IncompleteDataset":
        """Build a dataset by blanking out ``full_values`` where ``mask`` is 0."""
        full_values = np.asarray(full_values, dtype=np.float64)
        mask = np.asarray(mask)
        values = full_values.copy()
        values[mask == 0] = np.nan
        return cls(values, **kwargs)

    def filled(self, fill_value: float = 0.0) -> np.ndarray:
        """Return values with missing entries replaced by a constant."""
        out = self.values.copy()
        out[self._mask == 0] = fill_value
        return out

    def take(self, indices: Sequence[int], name: Optional[str] = None) -> "IncompleteDataset":
        """Row-subset view (copies data)."""
        indices = np.asarray(indices)
        return IncompleteDataset(
            self.values[indices].copy(),
            feature_names=list(self.feature_names),
            feature_types=list(self.feature_types),
            name=name if name is not None else self.name,
        )

    def subsample(
        self, n: int, rng: np.random.Generator, name: Optional[str] = None
    ) -> "IncompleteDataset":
        """Uniform random row subsample of size ``n`` without replacement."""
        if n > self.n_samples:
            raise ValueError(f"cannot subsample {n} rows from {self.n_samples}")
        indices = rng.choice(self.n_samples, size=n, replace=False)
        return self.take(indices, name=name)

    def split_validation_initial(
        self, n_validation: int, n_initial: int, rng: np.random.Generator
    ) -> SplitResult:
        """Algorithm 1, line 1: disjoint validation and initial samples.

        The validation set is drawn first; the initial training set of size
        ``n_initial`` comes from the remaining rows.
        """
        if n_validation + n_initial > self.n_samples:
            raise ValueError(
                f"n_validation + n_initial = {n_validation + n_initial} exceeds "
                f"dataset size {self.n_samples}"
            )
        permutation = rng.permutation(self.n_samples)
        validation_idx = permutation[:n_validation]
        initial_idx = permutation[n_validation : n_validation + n_initial]
        return SplitResult(
            validation=self.take(validation_idx, name=f"{self.name}[validation]"),
            initial=self.take(initial_idx, name=f"{self.name}[initial]"),
            validation_indices=validation_idx,
            initial_indices=initial_idx,
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def column_means(self) -> np.ndarray:
        """Per-column mean over observed entries (nan for fully-missing columns)."""
        with np.errstate(invalid="ignore"):
            return np.nanmean(self.values, axis=0)

    def column_stds(self) -> np.ndarray:
        """Per-column std over observed entries."""
        with np.errstate(invalid="ignore"):
            return np.nanstd(self.values, axis=0)

    def observed_count(self) -> int:
        return int(self._mask.sum())
