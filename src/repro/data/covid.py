"""Synthetic stand-ins for the paper's six COVID-19 datasets.

The originals (Table II) range from 6,433 rows (Trial) to 22,507,139 rows
(Surveil) and are not redistributable here, so each generator reproduces the
*shape* of its namesake: the feature count, a continuous/categorical mix, the
natural missing rate, and a latent-factor correlation structure that makes
imputation learnable (missing cells are predictable from observed ones).
Row counts default to a laptop-scale size and can be raised to the paper's
full size with ``n_samples=...``.

Each generator also emits a downstream label (classification for Trial and
Surveil, regression otherwise) supporting the Table VII experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .dataset import IncompleteDataset
from .missingness import ampute

__all__ = ["DatasetSpec", "SPECS", "generate", "dataset_names", "GeneratedData"]


@dataclass(frozen=True)
class DatasetSpec:
    """Schema description of one COVID-like dataset.

    ``full_size`` is the row count reported in Table II; ``default_size`` is
    what :func:`generate` uses when no explicit ``n_samples`` is given.
    """

    name: str
    full_size: int
    default_size: int
    n_features: int
    missing_rate: float
    task: str  # "classification" | "regression"
    n_latent: int
    categorical_fraction: float = 0.3
    noise: float = 0.1


SPECS: Dict[str, DatasetSpec] = {
    "trial": DatasetSpec("trial", 6_433, 2_000, 9, 0.0963, "classification", 4),
    "emergency": DatasetSpec("emergency", 8_364, 2_000, 22, 0.6269, "regression", 6),
    "response": DatasetSpec("response", 200_737, 6_000, 19, 0.0566, "regression", 6),
    "search": DatasetSpec("search", 948_762, 3_000, 424, 0.8135, "regression", 12),
    "weather": DatasetSpec("weather", 4_911_011, 10_000, 9, 0.2156, "regression", 4),
    "surveil": DatasetSpec("surveil", 22_507_139, 12_000, 7, 0.4762, "classification", 4),
}


@dataclass(frozen=True)
class GeneratedData:
    """A generated dataset plus its complete ground truth and labels.

    Attributes
    ----------
    dataset:
        The incomplete dataset (values contain nan per the spec's rate).
    complete:
        The pre-amputation full matrix (for oracle evaluation in tests).
    labels:
        Downstream target: class indicator (0/1) or regression value.
    spec:
        The generating spec.
    """

    dataset: IncompleteDataset
    complete: np.ndarray
    labels: np.ndarray
    spec: DatasetSpec


def dataset_names() -> Tuple[str, ...]:
    """Names of the six generators, in Table II order."""
    return tuple(SPECS)


def _latent_factor_matrix(spec: DatasetSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a full matrix from a nonlinear latent-factor model.

    Column ``j`` is a (possibly nonlinear) mix of the shared latent factors,
    so columns are mutually predictive — the property a learnable imputation
    benchmark needs.
    """
    latent = rng.normal(size=(n, spec.n_latent))
    loadings = rng.normal(size=(spec.n_latent, spec.n_features)) / np.sqrt(spec.n_latent)
    linear = latent @ loadings
    columns = []
    for j in range(spec.n_features):
        base = linear[:, j]
        kind = j % 3
        if kind == 0:
            col = base
        elif kind == 1:
            col = np.tanh(1.5 * base)
        else:
            col = base + 0.3 * base**2
        columns.append(col)
    full = np.stack(columns, axis=1)
    full += spec.noise * rng.normal(size=full.shape)
    return full


def _mixed_types(
    full: np.ndarray, spec: DatasetSpec, rng: np.random.Generator
) -> Tuple[np.ndarray, list]:
    """Discretise a trailing block of columns into categorical codes."""
    d = spec.n_features
    n_categorical = int(round(spec.categorical_fraction * d))
    types = ["continuous"] * d
    out = full.copy()
    for j in range(d - n_categorical, d):
        n_levels = int(rng.integers(2, 6))
        edges = np.quantile(full[:, j], np.linspace(0, 1, n_levels + 1)[1:-1])
        out[:, j] = np.digitize(full[:, j], edges).astype(np.float64)
        types[j] = "binary" if n_levels == 2 else "categorical"
    return out, types


def generate(
    name: str,
    n_samples: Optional[int] = None,
    seed: int = 0,
    missing_rate: Optional[float] = None,
    mechanism: str = "mcar",
) -> GeneratedData:
    """Generate one of the six COVID-like datasets.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    n_samples:
        Row count; defaults to the spec's laptop-scale size.  Pass
        ``SPECS[name].full_size`` for a paper-scale run.
    seed:
        Seed for the dedicated generator (fully reproducible).
    missing_rate:
        Override the spec's natural missing rate (used by the Figure 2
        missing-rate sweep).
    mechanism:
        Amputation mechanism, default MCAR (the paper's assumption).
    """
    key = name.lower()
    if key not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(SPECS)}")
    spec = SPECS[key]
    n = n_samples if n_samples is not None else spec.default_size
    if n < 2:
        raise ValueError(f"n_samples must be >= 2, got {n}")
    rng = np.random.default_rng(seed)

    full = _latent_factor_matrix(spec, n, rng)
    full, types = _mixed_types(full, spec, rng)

    # Downstream label from the same latent structure (first columns proxy).
    signal = full[:, : min(4, spec.n_features)].sum(axis=1)
    if spec.task == "classification":
        labels = (signal + 0.3 * rng.normal(size=n) > np.median(signal)).astype(np.float64)
    else:
        labels = signal + 0.3 * rng.normal(size=n)

    complete_dataset = IncompleteDataset(
        full.copy(), feature_types=types, name=spec.name
    )
    rate = missing_rate if missing_rate is not None else spec.missing_rate
    incomplete = ampute(complete_dataset, rate, mechanism=mechanism, rng=rng)
    return GeneratedData(dataset=incomplete, complete=full, labels=labels, spec=spec)
