"""Disk-sharded datasets: the substrate for paper-scale out-of-core runs.

The paper's largest table (Surveil) has 22.5M rows; nothing at that scale
should ever be resident.  This module materialises a dataset as a directory
of fixed-size *shards* plus a JSON *manifest*:

```
store/
  manifest.json        rows, per-shard row counts + observed ranges,
                       fingerprint, feature names/types
  shard-00000.npz      values (rows, d) float64, nan = missing
  shard-00001.npz      [+ labels (rows,) when the generator emits them]
  ...
```

Three properties make the layer composable with SCIS:

1. **Merged statistics without loading.**  Each shard records its observed
   per-column min/max at write time, so :meth:`ShardStore.merged_ranges`
   (and the stats half of :meth:`ShardStore.scan`) folds the manifest alone
   — normalisation across shards costs zero shard reads.
2. **Scan parity.**  :meth:`ShardStore.scan` runs the same Vitter
   algorithm-R reservoir over rows in shard order as
   :meth:`CsvRowStream.scan` runs over CSV rows, consuming the generator
   identically — the same rows in the same order with the same rng give a
   bit-identical :class:`~repro.data.streaming.ScanResult`.
3. **Integrity.**  The manifest carries a fingerprint derived from each
   shard's CRC-32, and :meth:`ShardStore.validate` re-hashes shards
   against it.

:func:`generate_sharded` grows the COVID-like generators to ``full_size``
paper scale block-by-block (one block per shard, each from its own seeded
stream), with the categorical quantile edges and the label threshold fitted
on a deterministic pilot block — memory stays O(shard) however large ``n``.
Telemetry: ``shard.write`` / ``shard.read`` events plus ``shard.writes`` /
``shard.reads`` counters on the active recorder.
"""

from __future__ import annotations

import json
import struct
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import get_recorder
from .covid import SPECS, DatasetSpec
from .dataset import IncompleteDataset
from .streaming import ScanResult, _reservoir_push

__all__ = [
    "ShardInfo",
    "ShardManifest",
    "ShardWriter",
    "ShardStore",
    "write_dataset_sharded",
    "generate_sharded",
    "MANIFEST_NAME",
    "SHARD_STORE_KIND",
    "SHARD_STORE_VERSION",
]

MANIFEST_NAME = "manifest.json"
SHARD_STORE_KIND = "shard-store"
SHARD_STORE_VERSION = 1

# Pilot rows used by generate_sharded to fit categorical quantile edges and
# the classification-label threshold before any shard is written.
_PILOT_ROWS = 4096


def _nan_to_none(values: np.ndarray) -> List[Optional[float]]:
    return [None if np.isnan(v) else float(v) for v in values]


def _none_to_nan(values: Sequence[Optional[float]]) -> np.ndarray:
    return np.array([np.nan if v is None else float(v) for v in values])


@dataclass(frozen=True)
class ShardInfo:
    """Manifest entry for one shard: enough to plan without reading it."""

    file: str
    rows: int
    minima: np.ndarray  # observed per-column min; nan where unobserved here
    maxima: np.ndarray
    missing_cells: int
    crc32: int

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "rows": self.rows,
            "minima": _nan_to_none(self.minima),
            "maxima": _nan_to_none(self.maxima),
            "missing_cells": self.missing_cells,
            "crc32": self.crc32,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShardInfo":
        return cls(
            file=data["file"],
            rows=int(data["rows"]),
            minima=_none_to_nan(data["minima"]),
            maxima=_none_to_nan(data["maxima"]),
            missing_cells=int(data["missing_cells"]),
            crc32=int(data["crc32"]),
        )


@dataclass(frozen=True)
class ShardManifest:
    """Everything the store knows without opening a single shard."""

    name: str
    n_features: int
    feature_names: List[str]
    feature_types: List[str]
    shard_rows: int
    rows: int
    shards: Tuple[ShardInfo, ...]
    fingerprint: str
    has_labels: bool = False

    def to_json(self) -> dict:
        return {
            "version": SHARD_STORE_VERSION,
            "kind": SHARD_STORE_KIND,
            "name": self.name,
            "n_features": self.n_features,
            "feature_names": list(self.feature_names),
            "feature_types": list(self.feature_types),
            "shard_rows": self.shard_rows,
            "rows": self.rows,
            "shards": [shard.to_json() for shard in self.shards],
            "fingerprint": self.fingerprint,
            "has_labels": self.has_labels,
        }


def combine_fingerprint(infos: Sequence[ShardInfo]) -> str:
    """Order-sensitive store fingerprint from per-shard CRC-32 values.

    Computed from the manifest alone, so the sharded impute driver can
    assemble a valid manifest from per-worker shard stats without the
    parent ever touching the data.
    """
    blob = b"".join(struct.pack("<Iq", info.crc32, info.rows) for info in infos)
    return f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}"


def _shard_filename(index: int) -> str:
    return f"shard-{index:05d}.npz"


def write_shard_file(
    directory: Union[str, Path],
    index: int,
    values: np.ndarray,
    labels: Optional[np.ndarray] = None,
) -> ShardInfo:
    """Write one shard npz and return its manifest entry.

    Module-level (not a writer method) so parallel impute workers can each
    persist their own output shard and ship back only the tiny
    :class:`ShardInfo`.
    """
    directory = Path(directory)
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"shard values must be 2-D, got shape {values.shape}")
    filename = _shard_filename(index)
    arrays = {"values": values}
    if labels is not None:
        arrays["labels"] = np.asarray(labels, dtype=np.float64)
    with (directory / filename).open("wb") as handle:
        np.savez(handle, **arrays)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN columns
        minima = np.nanmin(values, axis=0)
        maxima = np.nanmax(values, axis=0)
    info = ShardInfo(
        file=filename,
        rows=values.shape[0],
        minima=minima,
        maxima=maxima,
        missing_cells=int(np.isnan(values).sum()),
        crc32=zlib.crc32(values.tobytes()) & 0xFFFFFFFF,
    )
    recorder = get_recorder()
    if recorder.enabled:
        recorder.inc("shard.writes")
        recorder.emit(
            "shard.write",
            file=filename,
            index=index,
            rows=info.rows,
            missing_cells=info.missing_cells,
        )
    return info


def write_manifest(
    directory: Union[str, Path], manifest: ShardManifest
) -> Path:
    """Persist the manifest atomically (tmp + rename)."""
    directory = Path(directory)
    target = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest.to_json(), indent=2) + "\n")
    tmp.rename(target)
    return target


class ShardWriter:
    """Append rows, flush fixed-size shards, finish with a manifest.

    Usable as a context manager; :meth:`close` writes the manifest and
    returns the finished :class:`ShardManifest`.  Peak memory is one shard
    of rows regardless of the total appended.
    """

    def __init__(
        self,
        path: Union[str, Path],
        shard_rows: int = 100_000,
        name: str = "shards",
        feature_names: Optional[List[str]] = None,
        feature_types: Optional[List[str]] = None,
    ) -> None:
        if shard_rows < 1:
            raise ValueError(f"shard_rows must be >= 1, got {shard_rows}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.shard_rows = shard_rows
        self.name = name
        self.feature_names = feature_names
        self.feature_types = feature_types
        self._buffer: List[np.ndarray] = []
        self._label_buffer: List[np.ndarray] = []
        self._buffered_rows = 0
        self._infos: List[ShardInfo] = []
        self._n_features: Optional[int] = None
        self._has_labels: Optional[bool] = None
        self._closed = False

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def append(
        self, values: np.ndarray, labels: Optional[np.ndarray] = None
    ) -> None:
        """Buffer a block of rows; full shards are flushed as they fill."""
        if self._closed:
            raise RuntimeError("ShardWriter is closed")
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"appended values must be 2-D, got {values.shape}")
        if self._n_features is None:
            self._n_features = values.shape[1]
            self._has_labels = labels is not None
        elif values.shape[1] != self._n_features:
            raise ValueError(
                f"appended block has {values.shape[1]} columns, "
                f"expected {self._n_features}"
            )
        if (labels is not None) != self._has_labels:
            raise ValueError("labels must be passed on every append or never")
        if labels is not None and len(labels) != values.shape[0]:
            raise ValueError("labels length does not match appended rows")
        self._buffer.append(values)
        if labels is not None:
            self._label_buffer.append(np.asarray(labels, dtype=np.float64))
        self._buffered_rows += values.shape[0]
        while self._buffered_rows >= self.shard_rows:
            self._flush(self.shard_rows)

    def _flush(self, rows: int) -> None:
        if rows == 0:
            return
        block = np.concatenate(self._buffer, axis=0)
        labels = (
            np.concatenate(self._label_buffer) if self._has_labels else None
        )
        shard_values, rest = block[:rows], block[rows:]
        shard_labels = labels[:rows] if labels is not None else None
        self._buffer = [rest] if rest.size else []
        self._label_buffer = (
            [labels[rows:]] if labels is not None and labels[rows:].size else []
        )
        self._buffered_rows = rest.shape[0] if rest.size else 0
        self._infos.append(
            write_shard_file(self.path, len(self._infos), shard_values, shard_labels)
        )

    def close(self) -> ShardManifest:
        """Flush the remainder and write the manifest."""
        if self._closed:
            raise RuntimeError("ShardWriter is already closed")
        if self._buffered_rows:
            self._flush(self._buffered_rows)
        if not self._infos:
            raise ValueError(f"no rows appended to shard store {self.path}")
        self._closed = True
        d = self._n_features
        names = self.feature_names or [f"f{j}" for j in range(d)]
        types = self.feature_types or ["continuous"] * d
        manifest = ShardManifest(
            name=self.name,
            n_features=d,
            feature_names=list(names),
            feature_types=list(types),
            shard_rows=self.shard_rows,
            rows=sum(info.rows for info in self._infos),
            shards=tuple(self._infos),
            fingerprint=combine_fingerprint(self._infos),
            has_labels=bool(self._has_labels),
        )
        write_manifest(self.path, manifest)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.emit(
                "shard.manifest",
                path=str(self.path),
                rows=manifest.rows,
                n_shards=len(manifest.shards),
                fingerprint=manifest.fingerprint,
            )
        return manifest


class ShardStore:
    """Reader over a shard directory; never holds more than one shard."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(f"{self.path} has no {MANIFEST_NAME}; not a shard store")
        data = json.loads(manifest_path.read_text())
        if data.get("kind") != SHARD_STORE_KIND:
            raise ValueError(
                f"{manifest_path} is not a shard-store manifest "
                f"(kind={data.get('kind')!r})"
            )
        if data.get("version") != SHARD_STORE_VERSION:
            raise ValueError(
                f"{manifest_path} has unsupported version {data.get('version')!r} "
                f"(this build reads version {SHARD_STORE_VERSION})"
            )
        self.manifest = ShardManifest(
            name=data["name"],
            n_features=int(data["n_features"]),
            feature_names=list(data["feature_names"]),
            feature_types=list(data["feature_types"]),
            shard_rows=int(data["shard_rows"]),
            rows=int(data["rows"]),
            shards=tuple(ShardInfo.from_json(s) for s in data["shards"]),
            fingerprint=data["fingerprint"],
            has_labels=bool(data.get("has_labels", False)),
        )

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.manifest.rows

    @property
    def n_features(self) -> int:
        return self.manifest.n_features

    @property
    def n_shards(self) -> int:
        return len(self.manifest.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardStore(path={str(self.path)!r}, rows={self.rows}, "
            f"n_shards={self.n_shards}, n_features={self.n_features})"
        )

    def shard_offsets(self) -> List[int]:
        """Absolute starting row of each shard (for index-addressed noise)."""
        offsets, total = [], 0
        for info in self.manifest.shards:
            offsets.append(total)
            total += info.rows
        return offsets

    def shard_values(self, index: int) -> np.ndarray:
        """Load one shard's values (nan = missing)."""
        info = self.manifest.shards[index]
        with np.load(self.path / info.file) as archive:
            values = archive["values"]
        recorder = get_recorder()
        if recorder.enabled:
            recorder.inc("shard.reads")
            recorder.emit("shard.read", file=info.file, index=index, rows=info.rows)
        return values

    def shard(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One shard as ``(values, mask)`` — the streaming chunk convention."""
        values = self.shard_values(index)
        return values, (~np.isnan(values)).astype(np.float64)

    def shard_labels(self, index: int) -> Optional[np.ndarray]:
        if not self.manifest.has_labels:
            return None
        with np.load(self.path / self.manifest.shards[index].file) as archive:
            return archive["labels"]

    def iter_shards(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(start_row, values, mask)`` shard by shard."""
        start = 0
        for index in range(self.n_shards):
            values, mask = self.shard(index)
            yield start, values, mask
            start += values.shape[0]

    # ------------------------------------------------------------------
    def merged_ranges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Observed (min, max) merged across shards — manifest only.

        Applies the same substitution as a streaming scan: never-observed
        columns get the (0, 1) range, so downstream normalisation matches
        :meth:`CsvRowStream.scan` and :meth:`MinMaxNormalizer.fit` exactly.
        """
        minima: Optional[np.ndarray] = None
        maxima: Optional[np.ndarray] = None
        for info in self.manifest.shards:
            if minima is None:
                minima, maxima = info.minima.copy(), info.maxima.copy()
            else:
                minima = np.fmin(minima, info.minima)
                maxima = np.fmax(maxima, info.maxima)
        minima = np.where(np.isnan(minima), 0.0, minima)
        maxima = np.where(np.isnan(maxima), 1.0, maxima)
        return minima, maxima

    def scan(
        self,
        sample_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ScanResult:
        """The shard-store equivalent of :meth:`CsvRowStream.scan`.

        Row count and ranges come from the manifest (zero reads); only a
        requested reservoir touches the shards, one at a time.  The
        reservoir is the identical algorithm-R row loop as the CSV scan, so
        the same rows in the same order with the same generator state
        produce the same sample.
        """
        if sample_size is not None:
            if sample_size < 1:
                raise ValueError(f"sample_size must be >= 1, got {sample_size}")
            if rng is None:
                raise ValueError("scan(sample_size=...) requires an rng")
        minima, maxima = self.merged_ranges()
        sample = None
        if sample_size is not None:
            reservoir: List[np.ndarray] = []
            seen = 0
            for _, values, _ in self.iter_shards():
                for row in values:
                    seen += 1
                    _reservoir_push(reservoir, row, seen, sample_size, rng)
            sample = np.stack(reservoir) if reservoir else None
        return ScanResult(rows=self.rows, minima=minima, maxima=maxima, sample=sample)

    def validate(self) -> None:
        """Re-hash every shard against the manifest; raise on any mismatch."""
        for index, info in enumerate(self.manifest.shards):
            values = self.shard_values(index)
            crc = zlib.crc32(values.tobytes()) & 0xFFFFFFFF
            if crc != info.crc32 or values.shape[0] != info.rows:
                raise ValueError(
                    f"{self.path / info.file}: shard does not match manifest "
                    f"(crc {crc:08x} vs {info.crc32:08x}, rows "
                    f"{values.shape[0]} vs {info.rows})"
                )
        fingerprint = combine_fingerprint(self.manifest.shards)
        if fingerprint != self.manifest.fingerprint:
            raise ValueError(
                f"{self.path}: manifest fingerprint {self.manifest.fingerprint} "
                f"does not match shards ({fingerprint})"
            )

    def to_dataset(self) -> IncompleteDataset:
        """Materialise the whole store (small stores / tests only)."""
        values = np.concatenate(
            [self.shard_values(i) for i in range(self.n_shards)], axis=0
        )
        return IncompleteDataset(
            values,
            feature_names=list(self.manifest.feature_names),
            feature_types=list(self.manifest.feature_types),
            name=self.manifest.name,
        )

    def labels(self) -> Optional[np.ndarray]:
        """All labels concatenated (None when the store has none)."""
        if not self.manifest.has_labels:
            return None
        return np.concatenate(
            [self.shard_labels(i) for i in range(self.n_shards)]
        )


def write_dataset_sharded(
    dataset: IncompleteDataset,
    path: Union[str, Path],
    shard_rows: int = 100_000,
    labels: Optional[np.ndarray] = None,
) -> ShardStore:
    """Shard an in-memory dataset to disk (row order preserved)."""
    with ShardWriter(
        path,
        shard_rows=shard_rows,
        name=dataset.name,
        feature_names=list(dataset.feature_names),
        feature_types=list(dataset.feature_types),
    ) as writer:
        for start in range(0, dataset.n_samples, shard_rows):
            block = dataset.values[start : start + shard_rows]
            writer.append(
                block,
                labels[start : start + shard_rows] if labels is not None else None,
            )
    return ShardStore(path)


# ----------------------------------------------------------------------
# Out-of-core COVID-like generation
# ----------------------------------------------------------------------
def _mix_columns(linear: np.ndarray) -> np.ndarray:
    """The covid generators' per-column nonlinearity (kind = j mod 3)."""
    columns = []
    for j in range(linear.shape[1]):
        base = linear[:, j]
        kind = j % 3
        if kind == 0:
            col = base
        elif kind == 1:
            col = np.tanh(1.5 * base)
        else:
            col = base + 0.3 * base**2
        columns.append(col)
    return np.stack(columns, axis=1)


def _categorical_plan(
    spec: DatasetSpec, pilot: np.ndarray, rng: np.random.Generator
) -> Tuple[List[str], List[Optional[np.ndarray]]]:
    """Level counts + quantile edges for the trailing categorical block.

    Edges are fitted on the pilot block, so every shard discretises against
    the same thresholds — the out-of-core analogue of the in-memory
    generator's full-column quantiles.
    """
    d = spec.n_features
    n_categorical = int(round(spec.categorical_fraction * d))
    types: List[str] = ["continuous"] * d
    edges: List[Optional[np.ndarray]] = [None] * d
    for j in range(d - n_categorical, d):
        n_levels = int(rng.integers(2, 6))
        edges[j] = np.quantile(pilot[:, j], np.linspace(0, 1, n_levels + 1)[1:-1])
        types[j] = "binary" if n_levels == 2 else "categorical"
    return types, edges


def _generate_block(
    spec: DatasetSpec,
    n_rows: int,
    loadings: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    latent = rng.normal(size=(n_rows, spec.n_latent))
    full = _mix_columns(latent @ loadings)
    full += spec.noise * rng.normal(size=full.shape)
    return full


def generate_sharded(
    name: str,
    path: Union[str, Path],
    n_samples: Optional[int] = None,
    seed: int = 0,
    missing_rate: Optional[float] = None,
    shard_rows: int = 100_000,
) -> ShardStore:
    """Materialise a COVID-like dataset as a shard store, out of core.

    The same latent-factor family as :func:`repro.data.generate`, grown
    block-by-block: shared loadings and the categorical/label plan come
    from a pilot draw, then each shard-sized block is generated, amputed
    (MCAR), and written from its own seeded stream
    (``default_rng([seed, 1, block])``).  Peak memory is O(shard_rows)
    whatever ``n_samples`` is — pass ``SPECS[name].full_size`` for the
    paper-scale tables.  Deterministic in ``(name, n_samples, seed,
    missing_rate, shard_rows)``; note the blockwise sampler draws a
    *different* (equally distributed) table than the in-memory generator.
    """
    key = name.lower()
    if key not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(SPECS)}")
    spec = SPECS[key]
    n = n_samples if n_samples is not None else spec.default_size
    if n < 2:
        raise ValueError(f"n_samples must be >= 2, got {n}")
    rate = missing_rate if missing_rate is not None else spec.missing_rate
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"missing rate must be in [0, 1), got {rate}")

    # Pilot stream: loadings, categorical plan, label threshold.
    pilot_rng = np.random.default_rng([seed, 0])
    loadings = pilot_rng.normal(size=(spec.n_latent, spec.n_features)) / np.sqrt(
        spec.n_latent
    )
    pilot = _generate_block(spec, min(n, _PILOT_ROWS), loadings, pilot_rng)
    types, edges = _categorical_plan(spec, pilot, pilot_rng)
    pilot_cat = pilot.copy()
    for j, edge in enumerate(edges):
        if edge is not None:
            pilot_cat[:, j] = np.digitize(pilot[:, j], edge).astype(np.float64)
    signal_cols = min(4, spec.n_features)
    label_threshold = float(np.median(pilot_cat[:, :signal_cols].sum(axis=1)))

    with ShardWriter(
        path,
        shard_rows=shard_rows,
        name=spec.name,
        feature_types=types,
    ) as writer:
        for block_index, start in enumerate(range(0, n, shard_rows)):
            rows = min(shard_rows, n - start)
            rng = np.random.default_rng([seed, 1, block_index])
            full = _generate_block(spec, rows, loadings, rng)
            for j, edge in enumerate(edges):
                if edge is not None:
                    full[:, j] = np.digitize(full[:, j], edge).astype(np.float64)
            signal = full[:, :signal_cols].sum(axis=1)
            if spec.task == "classification":
                labels = (
                    signal + 0.3 * rng.normal(size=rows) > label_threshold
                ).astype(np.float64)
            else:
                labels = signal + 0.3 * rng.normal(size=rows)
            values = full.copy()
            values[rng.random(size=values.shape) < rate] = np.nan
            writer.append(values, labels)
    return ShardStore(path)
