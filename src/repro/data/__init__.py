"""Data layer: incomplete datasets, normalisation, missingness, generators."""

from . import covid
from .batches import BatchPlan, iterate_batches
from .covid import SPECS, DatasetSpec, GeneratedData, dataset_names, generate
from .dataset import IncompleteDataset, SplitResult
from .io import read_csv, write_csv
from .missingness import HoldoutSplit, ampute, holdout_split
from .normalize import MinMaxNormalizer, Standardizer
from .profile import ColumnProfile, MissingnessProfile, profile_missingness
from .shards import (
    ShardInfo,
    ShardManifest,
    ShardStore,
    ShardWriter,
    generate_sharded,
    write_dataset_sharded,
)
from .streaming import (
    CsvRowStream,
    ScanResult,
    StreamingReport,
    impute_chunk_indexed,
    impute_csv_streaming,
    reservoir_sample,
    sample_noise_indexed,
    train_scis_from_scan,
)

__all__ = [
    "IncompleteDataset",
    "SplitResult",
    "MinMaxNormalizer",
    "Standardizer",
    "profile_missingness",
    "MissingnessProfile",
    "ColumnProfile",
    "CsvRowStream",
    "ScanResult",
    "reservoir_sample",
    "impute_csv_streaming",
    "impute_chunk_indexed",
    "sample_noise_indexed",
    "train_scis_from_scan",
    "StreamingReport",
    "ShardInfo",
    "ShardManifest",
    "ShardStore",
    "ShardWriter",
    "generate_sharded",
    "write_dataset_sharded",
    "ampute",
    "holdout_split",
    "HoldoutSplit",
    "iterate_batches",
    "BatchPlan",
    "read_csv",
    "write_csv",
    "covid",
    "generate",
    "dataset_names",
    "DatasetSpec",
    "GeneratedData",
    "SPECS",
]
