"""Mini-batch iteration over incomplete data."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["iterate_batches"]


def iterate_batches(
    dataset: IncompleteDataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    drop_last: bool = False,
    yield_indices: bool = False,
    order: Optional[np.ndarray] = None,
) -> Iterator[Union[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Yield ``(values, mask)`` batches; missing entries come through as nan.

    ``drop_last`` skips a trailing batch smaller than ``batch_size`` (useful
    for the Sinkhorn loss, whose plan is square per batch and degenerates for
    a batch of one).

    ``yield_indices`` adds the batch's row indices as a third element, making
    batches identifiable — the handle DIM uses to key its Sinkhorn warm-start
    store and self-term cache.  ``order`` supplies an explicit row
    permutation instead of drawing one (so a caller can fix the batch
    partition across epochs); it overrides ``shuffle``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = dataset.n_samples
    if order is not None:
        order = np.asarray(order, dtype=np.intp)
        if order.ndim != 1 or order.size != n:
            raise ValueError(
                f"order must be a 1-D permutation of all {n} rows, "
                f"got shape {order.shape}"
            )
    elif shuffle:
        if rng is None:
            rng = np.random.default_rng()
        order = rng.permutation(n)
    else:
        order = np.arange(n)
    for start in range(0, n, batch_size):
        index = order[start : start + batch_size]
        if drop_last and index.size < batch_size:
            break
        if yield_indices:
            yield dataset.values[index], dataset.mask[index], index
        else:
            yield dataset.values[index], dataset.mask[index]
