"""Mini-batch iteration over incomplete data."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["iterate_batches"]


def iterate_batches(
    dataset: IncompleteDataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(values, mask)`` batches; missing entries come through as nan.

    ``drop_last`` skips a trailing batch smaller than ``batch_size`` (useful
    for the Sinkhorn loss, whose plan is square per batch and degenerates for
    a batch of one).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = dataset.n_samples
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        order = rng.permutation(n)
    else:
        order = np.arange(n)
    for start in range(0, n, batch_size):
        index = order[start : start + batch_size]
        if drop_last and index.size < batch_size:
            break
        yield dataset.values[index], dataset.mask[index]
