"""Mini-batch iteration over incomplete data.

Partition policy lives in one object — :class:`BatchPlan` — instead of a
grown list of per-call-site flags: DIM's training loop (fixed partition when
warm-start caching), the chunked masking divergence (aligned sequential row
blocks), and the serving dispatcher (explicit per-request group sizes) all
describe how rows split into batches with the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["BatchPlan", "iterate_batches"]

_ORDERS = ("sequential", "shuffled", "fixed")


@dataclass(frozen=True, eq=False)
class BatchPlan:
    """How a row set partitions into batches.

    Exactly one of ``batch_size`` (uniform batches) or ``sizes`` (explicit,
    possibly ragged group sizes — the serving dispatcher's case) must be
    given.

    Attributes
    ----------
    batch_size:
        Uniform batch size; the final batch may be smaller unless
        ``drop_last``.
    sizes:
        Explicit per-batch sizes; their sum must equal the row count passed
        to :meth:`bounds`.  Incompatible with ``drop_last`` and
        non-sequential orders.
    order:
        ``"sequential"`` (rows in storage order), ``"shuffled"`` (a fresh
        permutation drawn from the caller's rng), or ``"fixed"`` (the
        explicit ``permutation`` — how DIM pins its batch partition across
        epochs so warm-start/self-term cache keys stay stable).
    drop_last:
        Skip a trailing batch smaller than ``batch_size`` (useful for the
        Sinkhorn loss, whose plan is square per batch and degenerates for a
        batch of one).
    yield_indices:
        Make :func:`iterate_batches` yield the batch's row indices as a
        third element — the handle DIM uses to key its Sinkhorn warm-start
        store.
    permutation:
        The explicit row order for ``order="fixed"``.
    """

    batch_size: Optional[int] = None
    sizes: Optional[Tuple[int, ...]] = None
    order: str = "sequential"
    drop_last: bool = False
    yield_indices: bool = False
    permutation: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if (self.batch_size is None) == (self.sizes is None):
            raise ValueError(
                "BatchPlan needs exactly one of batch_size or sizes, got "
                f"batch_size={self.batch_size} sizes={self.sizes}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.sizes is not None:
            object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
            if any(s < 1 for s in self.sizes):
                raise ValueError(f"sizes must all be >= 1, got {self.sizes}")
            if self.drop_last:
                raise ValueError("drop_last does not apply to explicit sizes")
            if self.order != "sequential":
                raise ValueError(
                    f"explicit sizes require sequential order, got {self.order!r}"
                )
        if self.order not in _ORDERS:
            raise ValueError(
                f"order must be one of {_ORDERS}, got {self.order!r}"
            )
        if (self.order == "fixed") != (self.permutation is not None):
            raise ValueError(
                "permutation must be given exactly when order='fixed'"
            )
        if self.permutation is not None:
            perm = np.asarray(self.permutation, dtype=np.intp)
            if perm.ndim != 1:
                raise ValueError(
                    f"permutation must be 1-D, got shape {perm.shape}"
                )
            object.__setattr__(self, "permutation", perm)

    @classmethod
    def of_sizes(cls, sizes, *, yield_indices: bool = False) -> "BatchPlan":
        """A plan with explicit (possibly ragged) batch sizes, in row order."""
        return cls(sizes=tuple(int(s) for s in sizes), yield_indices=yield_indices)

    def bounds(self, n: int) -> List[Tuple[int, int]]:
        """The ``(start, stop)`` row ranges this plan carves out of ``n`` rows."""
        if self.sizes is not None:
            total = sum(self.sizes)
            if total != n:
                raise ValueError(
                    f"explicit sizes sum to {total} but the plan was asked to "
                    f"partition {n} rows"
                )
            offsets = np.cumsum((0,) + self.sizes)
            return [
                (int(start), int(stop))
                for start, stop in zip(offsets[:-1], offsets[1:])
            ]
        bounds = [
            (start, min(start + self.batch_size, n))
            for start in range(0, n, self.batch_size)
        ]
        if self.drop_last and bounds and bounds[-1][1] - bounds[-1][0] < self.batch_size:
            bounds.pop()
        return bounds

    def row_order(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """The row permutation batches index into (identity when sequential)."""
        if self.order == "fixed":
            if self.permutation.size != n:
                raise ValueError(
                    f"fixed permutation covers {self.permutation.size} rows "
                    f"but the plan was asked to partition {n}"
                )
            return self.permutation
        if self.order == "shuffled":
            if rng is None:
                rng = np.random.default_rng()
            return rng.permutation(n)
        return np.arange(n)


def iterate_batches(
    dataset: IncompleteDataset,
    batch_size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    drop_last: bool = False,
    yield_indices: bool = False,
    order: Optional[np.ndarray] = None,
    *,
    plan: Optional[BatchPlan] = None,
) -> Iterator[Union[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Yield ``(values, mask)`` batches; missing entries come through as nan.

    The partition policy is a :class:`BatchPlan` — pass one via ``plan``.
    The older flag spelling (``batch_size``/``shuffle``/``drop_last``/
    ``yield_indices``/``order``, where ``order`` is an explicit row
    permutation) still works and is folded into an equivalent plan.
    """
    if plan is None:
        if batch_size is None:
            raise ValueError("iterate_batches needs a batch_size or a plan")
        if order is not None:
            order = np.asarray(order, dtype=np.intp)
            plan = BatchPlan(
                batch_size=batch_size,
                order="fixed",
                permutation=order,
                drop_last=drop_last,
                yield_indices=yield_indices,
            )
        else:
            plan = BatchPlan(
                batch_size=batch_size,
                order="shuffled" if shuffle else "sequential",
                drop_last=drop_last,
                yield_indices=yield_indices,
            )
    elif batch_size is not None or order is not None:
        raise TypeError(
            "iterate_batches got both a plan and legacy batch flags; "
            "fold them into the BatchPlan"
        )
    n = dataset.n_samples
    if plan.order == "fixed" and plan.permutation.size != n:
        raise ValueError(
            f"order must be a 1-D permutation of all {n} rows, "
            f"got shape {plan.permutation.shape}"
        )
    row_order = plan.row_order(n, rng)
    for start, stop in plan.bounds(n):
        index = row_order[start:stop]
        if plan.yield_indices:
            yield dataset.values[index], dataset.mask[index], index
        else:
            yield dataset.values[index], dataset.mask[index]
