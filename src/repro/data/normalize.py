"""Feature normalisation fitted on observed entries only.

The paper normalises inputs to ``[0, 1]^d`` (§V, where the space diameter
``|X|`` and the Lipschitz constant are both taken as 1), so min-max scaling
is the primary scheme; a standardiser is provided for the downstream
prediction heads.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["MinMaxNormalizer", "Standardizer"]


class MinMaxNormalizer:
    """Map each column to [0, 1] using observed minima / maxima.

    Missing entries (nan) pass through untouched.  Constant columns map to
    0.5 to avoid division by zero, and invert back to the constant.
    """

    def __init__(self) -> None:
        self.minima: Optional[np.ndarray] = None
        self.ranges: Optional[np.ndarray] = None

    def fit(self, dataset: IncompleteDataset) -> "MinMaxNormalizer":
        with warnings.catch_warnings():
            # all-NaN columns are legal; their nanmin/nanmax warning is noise
            warnings.simplefilter("ignore", RuntimeWarning)
            self.minima = np.nanmin(dataset.values, axis=0)
            maxima = np.nanmax(dataset.values, axis=0)
        self.minima = np.where(np.isnan(self.minima), 0.0, self.minima)
        maxima = np.where(np.isnan(maxima), 1.0, maxima)
        self.ranges = maxima - self.minima
        return self

    def _check_fitted(self) -> None:
        if self.minima is None:
            raise RuntimeError("normalizer must be fitted before use")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        safe_range = np.where(self.ranges == 0.0, 1.0, self.ranges)
        out = (np.asarray(values, dtype=np.float64) - self.minima) / safe_range
        constant = self.ranges == 0.0
        if constant.any():
            out[:, constant] = np.where(np.isnan(out[:, constant]), np.nan, 0.5)
        return out

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        out = np.asarray(values, dtype=np.float64) * self.ranges + self.minima
        return out

    def fit_transform(self, dataset: IncompleteDataset) -> IncompleteDataset:
        """Fit and return a new normalised dataset with the same mask."""
        self.fit(dataset)
        return IncompleteDataset(
            self.transform(dataset.values),
            feature_names=list(dataset.feature_names),
            feature_types=list(dataset.feature_types),
            name=dataset.name,
        )


class Standardizer:
    """Zero-mean unit-variance scaling on observed entries."""

    def __init__(self) -> None:
        self.means: Optional[np.ndarray] = None
        self.stds: Optional[np.ndarray] = None

    def fit(self, dataset: IncompleteDataset) -> "Standardizer":
        self.means = np.where(
            np.isnan(dataset.column_means()), 0.0, dataset.column_means()
        )
        stds = dataset.column_stds()
        stds = np.where(np.isnan(stds) | (stds == 0.0), 1.0, stds)
        self.stds = stds
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.means is None:
            raise RuntimeError("standardizer must be fitted before use")
        return (np.asarray(values, dtype=np.float64) - self.means) / self.stds

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        if self.means is None:
            raise RuntimeError("standardizer must be fitted before use")
        return np.asarray(values, dtype=np.float64) * self.stds + self.means
