"""Missingness profiling: the first thing to run on a new incomplete table.

Produces per-column and pattern-level diagnostics plus a cheap MCAR
plausibility check (does the observed part of each column differ between
rows where another column is missing vs present? — a t-statistic screen in
the spirit of Little's test, not a replacement for it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["ColumnProfile", "MissingnessProfile", "profile_missingness"]


@dataclass(frozen=True)
class ColumnProfile:
    """Per-column missingness summary."""

    name: str
    missing_rate: float
    observed_count: int
    mean: float
    std: float
    minimum: float
    maximum: float


@dataclass
class MissingnessProfile:
    """Full profile returned by :func:`profile_missingness`."""

    n_samples: int
    n_features: int
    overall_missing_rate: float
    columns: List[ColumnProfile]
    pattern_counts: List[Tuple[str, int]]
    complete_rows: int
    mcar_suspects: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.n_samples} rows x {self.n_features} columns, "
            f"{self.overall_missing_rate:.1%} missing overall, "
            f"{self.complete_rows} complete rows",
            "",
            f"{'column':<16}{'missing':>9}{'mean':>10}{'std':>10}{'min':>10}{'max':>10}",
        ]
        for col in self.columns:
            lines.append(
                f"{col.name:<16}{col.missing_rate:>8.1%}{col.mean:>10.3f}"
                f"{col.std:>10.3f}{col.minimum:>10.3f}{col.maximum:>10.3f}"
            )
        lines.append("")
        lines.append("top missingness patterns (1 = observed):")
        for pattern, count in self.pattern_counts[:5]:
            lines.append(f"  {pattern}  x{count}")
        if self.mcar_suspects:
            lines.append("")
            lines.append(
                "columns whose values shift when another column is missing "
                "(|t| > 3 — evidence against MCAR):"
            )
            for (value_col, miss_col), t_stat in sorted(
                self.mcar_suspects.items(), key=lambda kv: -abs(kv[1])
            )[:5]:
                lines.append(f"  {value_col} vs missing({miss_col}): t = {t_stat:+.2f}")
        return "\n".join(lines)


def _two_sample_t(a: np.ndarray, b: np.ndarray) -> float:
    """Welch t-statistic; 0 when either group is too small."""
    if a.size < 5 or b.size < 5:
        return 0.0
    var_term = a.var(ddof=1) / a.size + b.var(ddof=1) / b.size
    if var_term <= 0:
        return 0.0
    return float((a.mean() - b.mean()) / np.sqrt(var_term))


def profile_missingness(
    dataset: IncompleteDataset,
    mcar_threshold: float = 3.0,
    max_pattern_rows: int = 100_000,
) -> MissingnessProfile:
    """Profile an incomplete dataset.

    Parameters
    ----------
    dataset:
        The table to analyse.
    mcar_threshold:
        |t| above which a (value column, missing column) pair is flagged as
        MCAR-suspect.
    max_pattern_rows:
        Pattern counting is skipped beyond this row count (it is O(n·d)).
    """
    values = dataset.values
    mask = dataset.mask
    n, d = values.shape

    columns = []
    for j, name in enumerate(dataset.feature_names):
        column = values[:, j]
        observed = column[~np.isnan(column)]
        if observed.size:
            stats = (observed.mean(), observed.std(), observed.min(), observed.max())
        else:
            stats = (float("nan"),) * 4
        columns.append(
            ColumnProfile(
                name=name,
                missing_rate=float(1.0 - mask[:, j].mean()),
                observed_count=int(mask[:, j].sum()),
                mean=float(stats[0]),
                std=float(stats[1]),
                minimum=float(stats[2]),
                maximum=float(stats[3]),
            )
        )

    pattern_counts: List[Tuple[str, int]] = []
    if n <= max_pattern_rows:
        raw: Dict[bytes, int] = {}
        for i in range(n):
            key = mask[i].astype(np.int8).tobytes()
            raw[key] = raw.get(key, 0) + 1
        for key, count in sorted(raw.items(), key=lambda kv: -kv[1]):
            pattern = "".join(str(bit) for bit in np.frombuffer(key, dtype=np.int8))
            pattern_counts.append((pattern, count))

    # MCAR screen: for each pair (value column j, missingness of column k),
    # compare observed values of j between rows missing k and rows with k.
    suspects: Dict[Tuple[str, str], float] = {}
    for j in range(d):
        observed_j = mask[:, j] == 1.0
        for k in range(d):
            if j == k:
                continue
            missing_k = mask[:, k] == 0.0
            group_missing = values[observed_j & missing_k, j]
            group_present = values[observed_j & ~missing_k, j]
            t_stat = _two_sample_t(group_missing, group_present)
            if abs(t_stat) > mcar_threshold:
                suspects[(dataset.feature_names[j], dataset.feature_names[k])] = t_stat

    return MissingnessProfile(
        n_samples=n,
        n_features=d,
        overall_missing_rate=dataset.missing_rate,
        columns=columns,
        pattern_counts=pattern_counts,
        complete_rows=int((mask == 1.0).all(axis=1).sum()),
        mcar_suspects=suspects,
    )
