"""CSV round-trip for incomplete datasets.

A thin layer over :func:`numpy.genfromtxt` so users can bring their own
tables: empty fields, ``NA``, ``NaN``, and ``?`` are treated as missing.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["read_csv", "write_csv"]

_MISSING_TOKENS = {"", "na", "nan", "null", "none", "?"}


def read_csv(
    path: Union[str, Path],
    has_header: bool = True,
    name: Optional[str] = None,
    delimiter: str = ",",
) -> IncompleteDataset:
    """Load a numeric CSV into an :class:`IncompleteDataset`.

    Non-numeric cells and the usual missing markers become nan.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    header: Optional[List[str]] = None
    if has_header:
        header = [cell.strip() for cell in rows[0]]
        rows = rows[1:]
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")

    width = len(rows[0])
    values = np.empty((len(rows), width))
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(f"{path}: row {i} has {len(row)} cells, expected {width}")
        for j, cell in enumerate(row):
            token = cell.strip()
            if token.lower() in _MISSING_TOKENS:
                values[i, j] = np.nan
                continue
            try:
                values[i, j] = float(token)
            except ValueError:
                values[i, j] = np.nan
    return IncompleteDataset(
        values,
        feature_names=header,
        name=name if name is not None else path.stem,
    )


def write_csv(
    dataset: IncompleteDataset,
    path: Union[str, Path],
    missing_token: str = "",
    float_format: str = "{:.10g}",
    delimiter: str = ",",
) -> None:
    """Write a dataset back out, encoding missing cells as ``missing_token``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(dataset.feature_names)
        for row in dataset.values:
            writer.writerow(
                [missing_token if np.isnan(v) else float_format.format(v) for v in row]
            )
