"""Sinkhorn divergences, plain and masking (Definition 4), plus the
differentiable loss used by the DIM module.

The masking Sinkhorn divergence between the generated empirical measure
``ν_x̄`` and the observed one ``μ_x`` is

    S_m(ν_x̄ || μ_x) = 2 OT_λ^m(ν_x̄, μ_x) - OT_λ^m(ν_x̄, ν_x̄) - OT_λ^m(μ_x, μ_x)

where every ``OT_λ^m`` masks each point by its own mask row before computing
squared-Euclidean costs.  The corrective self-terms debias the entropic
regulariser so the divergence is non-negative and zero iff the two masked
point clouds coincide.

All three ``OT_λ^m`` problems share one shape whenever the compared clouds
have the same number of rows (always true under Algorithm 1, where ``x̄``
is a reconstruction of ``x``), so by default they are stacked into a single
:func:`repro.ot.sinkhorn_batched` solve — one backend-dispatched
``logsumexp`` sweep per iteration instead of three.  ``batched=False``
restores the per-problem loop solves; both paths agree to solver parity
(bit-exact on the NumPy backend).

Differentiability (Proposition 1) is realised with the envelope theorem: the
optimal plans ``P*`` are solved *off-tape* with log-domain Sinkhorn, then the
loss value is re-assembled from differentiable cost matrices with the plans
held constant, so ``backward()`` yields exactly the barycentric-map gradient

    ∇_{x̄_i} OT_λ^m = [ Σ_j P*_ij (x̄_i ⊙ m_i - x_j ⊙ m_j) ] T(m_i).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_recorder
from ..parallel import ExecutionContext
from ..tensor import Tensor, as_tensor, no_grad
from .batched import sinkhorn_batched
from .cost import masked_cost_matrix, masked_cost_matrix_tensor, squared_euclidean_cost
from .sinkhorn import SinkhornConfig, SinkhornResult, _coerce_config, entropy, sinkhorn

__all__ = [
    "sinkhorn_divergence",
    "masking_sinkhorn_divergence",
    "chunked_masking_sinkhorn_divergence",
    "MaskingSinkhornLoss",
]


def _solve_stack(
    costs: Sequence[np.ndarray],
    config: SinkhornConfig,
    batched: bool,
    init: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> List[SinkhornResult]:
    """Solve same-shape problems stacked (or looped when ``batched=False``).

    ``init`` is a stacked ``(f, g)`` warm start; rows of zeros are exactly a
    cold start, so a partially warm stack is expressed by zero rows.
    """
    if batched and len({c.shape for c in costs}) == 1:
        result = sinkhorn_batched(np.stack(costs), config, init=init)
        return [result.problem(k) for k in range(len(costs))]
    return [
        sinkhorn(
            cost,
            config,
            init=None if init is None else (init[0][k], init[1][k]),
        )
        for k, cost in enumerate(costs)
    ]


def sinkhorn_divergence(
    x: np.ndarray,
    y: np.ndarray,
    config: Optional[SinkhornConfig] = None,
    *,
    batched: bool = True,
    **legacy,
) -> float:
    """Debiased (unmasked) Sinkhorn divergence between two point clouds.

    When ``x`` and ``y`` have the same number of rows the cross and two
    self-term problems share a shape and are solved as one stacked batch;
    otherwise (or with ``batched=False``) they fall back to loop solves.
    The legacy ``sinkhorn_divergence(x, y, reg, ...)`` form is accepted for
    one release with a ``DeprecationWarning``.
    """
    cfg = _coerce_config(config, legacy, "sinkhorn_divergence")
    cross, self_x, self_y = _solve_stack(
        [
            squared_euclidean_cost(x, y),
            squared_euclidean_cost(x, x),
            squared_euclidean_cost(y, y),
        ],
        cfg,
        batched,
    )
    return 2.0 * cross.value - self_x.value - self_y.value


def masking_sinkhorn_divergence(
    x_bar: np.ndarray,
    x: np.ndarray,
    mask: np.ndarray,
    config: Optional[SinkhornConfig] = None,
    *,
    mask_bar: Optional[np.ndarray] = None,
    batched: bool = True,
    **legacy,
) -> float:
    """Masking Sinkhorn divergence ``S_m(ν_x̄ || μ_x)`` (Definition 4), NumPy.

    ``mask`` applies to ``x``; ``mask_bar`` (defaults to ``mask``) applies to
    ``x_bar``.  Under Algorithm 1 both matrices share the dataset's mask.
    The three OT problems are one stacked solve by default (``batched``).
    """
    cfg = _coerce_config(config, legacy, "masking_sinkhorn_divergence")
    if mask_bar is None:
        mask_bar = mask
    cross, self_bar, self_x = _solve_stack(
        [
            masked_cost_matrix(x_bar, mask_bar, x, mask),
            masked_cost_matrix(x_bar, mask_bar, x_bar, mask_bar),
            masked_cost_matrix(x, mask, x, mask),
        ],
        cfg,
        batched,
    )
    return 2.0 * cross.value - self_bar.value - self_x.value


def chunked_masking_sinkhorn_divergence(
    x_bar: np.ndarray,
    x: np.ndarray,
    mask: np.ndarray,
    config: Optional[SinkhornConfig] = None,
    *,
    chunk_size: int = 256,
    mask_bar: Optional[np.ndarray] = None,
    context: Optional["ExecutionContext"] = None,
    batched: bool = True,
    plan: Optional["BatchPlan"] = None,
    **legacy,
) -> float:
    """Evaluation-time masking Sinkhorn divergence over row partitions.

    The full ``n × n`` solve is cubic-ish in ``n``; at evaluation time (no
    gradients needed) the standard practice — as in Muzellec et al.'s
    minibatch OT — is to partition the rows into aligned chunks, compute
    ``S_m`` per chunk, and average with row-count weights.  Chunks are
    independent, so they fan out through ``context`` (serial by default);
    the fixed partition and fixed-order combination make the value
    bit-identical across backends and worker counts.  Within each chunk the
    three OT problems are one stacked :func:`sinkhorn_batched` solve.

    ``plan`` (a :class:`repro.data.BatchPlan`) overrides ``chunk_size`` with
    an explicit partition policy; it must be sequential (unshuffled), since
    the chunked value is defined over aligned row blocks.

    With one chunk this reduces exactly to
    :func:`masking_sinkhorn_divergence`.  Note the chunked value is a
    minibatch *approximation* of the full divergence, not the same number.
    """
    from ..data import BatchPlan  # local: repro.data imports repro.obs only

    cfg = _coerce_config(config, legacy, "chunked_masking_sinkhorn_divergence")
    x_bar = np.asarray(x_bar, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if x_bar.shape != x.shape or mask.shape != x.shape:
        raise ValueError(
            f"shape mismatch: x_bar {x_bar.shape}, x {x.shape}, mask {mask.shape}"
        )
    if mask_bar is None:
        mask_bar = mask
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot evaluate the divergence on an empty batch")
    if plan is None:
        plan = BatchPlan(batch_size=chunk_size)
    if plan.order != "sequential":
        raise ValueError(
            f"chunked divergence needs a sequential BatchPlan, got order "
            f"{plan.order!r}"
        )
    bounds = plan.bounds(n)
    if len(bounds) == 1:
        return masking_sinkhorn_divergence(
            x_bar, x, mask, cfg, mask_bar=mask_bar, batched=batched
        )
    context = context if context is not None else ExecutionContext.from_env()

    def chunk_task(start: int, stop: int):
        return lambda: masking_sinkhorn_divergence(
            x_bar[start:stop],
            x[start:stop],
            mask[start:stop],
            cfg,
            mask_bar=mask_bar[start:stop],
            batched=batched,
        )

    values = context.run(
        [chunk_task(start, stop) for start, stop in bounds],
        label="ot.chunked_divergence",
    )
    total = 0.0
    for (start, stop), value in zip(bounds, values):
        total += (stop - start) * value
    return float(total / n)


@dataclass
class MaskingSinkhornLoss:
    """Differentiable MS-divergence imputation loss ``L_s = S_m / (2n)``.

    Parameters
    ----------
    reg:
        Entropic regulariser ``λ`` (paper default 130 on [0, 1]-normalised
        data scaled; see :class:`repro.core.ScisConfig`).
    max_iter, tol:
        Sinkhorn solver controls (assembled into a :class:`SinkhornConfig`
        shared by the loop and batched paths).
    debias:
        Include the corrective self-terms (Definition 4).  Switching this off
        reproduces the "entropic only" ablation discussed in §IV.A.
    warm_start:
        Keep a per-``batch_key`` store of dual potentials and reuse them as
        the solver's initial point the next time the same batch is seen.
        Because the solver always iterates to ``tol``, this changes only
        the iteration count, never the answer beyond solver tolerance.
    cache_self_terms:
        Cache the constant data self-term ``OT_λ^m(μ_x, μ_x)`` per
        ``batch_key``: ``x`` and ``mask`` for a given batch never change
        across epochs, so this solve disappears entirely after the first
        epoch.  The cached scalar is exactly what a fresh cold solve would
        produce (the solve is deterministic), so cached and uncached runs
        agree to the bit on this term.
    batched:
        Stack the step's cross/self-term problems (all ``(n, n)``) into one
        :func:`sinkhorn_batched` solve per training step instead of two or
        three loop solves.  Warm-start rows for slots without stored duals
        are zeros — exactly a cold start — so batched and loop paths agree
        to solver parity.

    Both stores are keyed by the caller-supplied ``batch_key``; callers
    **must** guarantee that a key maps to a fixed ``(x, mask)`` pair for the
    lifetime of the store, and call :meth:`reset_caches` whenever that
    mapping changes (e.g. a new training run on a different dataset).
    """

    reg: float
    max_iter: int = 200
    tol: float = 1e-6
    debias: bool = True
    warm_start: bool = True
    cache_self_terms: bool = True
    batched: bool = True
    _duals: Dict[Hashable, Dict[str, Tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _self_terms: Dict[Hashable, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def config(self) -> SinkhornConfig:
        """The solver configuration both Sinkhorn paths receive."""
        return SinkhornConfig(reg=self.reg, max_iter=self.max_iter, tol=self.tol)

    def reset_caches(self) -> None:
        """Invalidate the warm-start store and the self-term cache.

        Must be called whenever previously used batch keys may refer to
        different data (a new training run, a new dataset, a re-shuffled
        batch partition).
        """
        self._duals.clear()
        self._self_terms.clear()

    def _stored_duals(
        self, batch_key: Optional[Hashable], slot: Optional[str]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if not self.warm_start or batch_key is None or slot is None:
            return None
        return self._duals.get(batch_key, {}).get(slot)

    def _store_duals(
        self, batch_key: Optional[Hashable], slot: Optional[str], result: SinkhornResult
    ) -> None:
        if self.warm_start and batch_key is not None and slot is not None:
            self._duals.setdefault(batch_key, {})[slot] = (result.f, result.g)

    def _solve_step(
        self,
        costs: Sequence[np.ndarray],
        slots: Sequence[Optional[str]],
        batch_key: Optional[Hashable],
    ) -> List[SinkhornResult]:
        """Solve the step's same-shape problems, warm-starting per slot.

        ``slots`` names the warm-start store entry per problem (``None`` for
        the deliberately cold data self-term).  With ``batched`` all
        problems go through one stacked solve; otherwise each is a loop
        solve — duals stored per slot either way.
        """
        stored = [self._stored_duals(batch_key, slot) for slot in slots]
        if not self.batched:
            results = [
                sinkhorn(cost, self.config, init=duals)
                for cost, duals in zip(costs, stored)
            ]
            for slot, result in zip(slots, results):
                self._store_duals(batch_key, slot, result)
            return results
        init = None
        if any(s is not None for s in stored):
            n, m = costs[0].shape
            f0 = np.zeros((len(costs), n))
            g0 = np.zeros((len(costs), m))
            for k, s in enumerate(stored):
                if s is not None:
                    f0[k], g0[k] = s
            init = (f0, g0)
        results = _solve_stack(list(costs), self.config, self.batched, init=init)
        for slot, result in zip(slots, results):
            self._store_duals(batch_key, slot, result)
        return results

    def __call__(
        self,
        x_bar: Tensor,
        x: np.ndarray,
        mask: np.ndarray,
        batch_key: Optional[Hashable] = None,
    ) -> Tensor:
        """Return the scalar loss tensor for a reconstructed batch.

        ``x_bar`` is the model's reconstruction (on the tape); ``x`` and
        ``mask`` are constant arrays for the same batch.  ``batch_key``
        (optional) identifies the batch across epochs and enables the
        warm-start store and self-term cache; with ``None`` every solve is
        cold and nothing is cached.
        """
        x_bar = as_tensor(x_bar)
        x = np.asarray(x, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        n = x.shape[0]
        if x_bar.shape != x.shape or mask.shape != x.shape:
            raise ValueError(
                f"shape mismatch: x_bar {x_bar.shape}, x {x.shape}, mask {mask.shape}"
            )

        with no_grad():
            costs = [masked_cost_matrix(x_bar.data, mask, x, mask)]
            slots: List[Optional[str]] = ["cross"]
            data_value: Optional[float] = None
            if self.debias:
                costs.append(masked_cost_matrix(x_bar.data, mask, x_bar.data, mask))
                slots.append("self_bar")
                if self.cache_self_terms and batch_key is not None:
                    data_value = self._self_terms.get(batch_key)
                if data_value is None:
                    # Deliberately cold (slot None): the cached value must
                    # equal what an uncached run recomputes every step.
                    costs.append(masked_cost_matrix(x, mask, x, mask))
                    slots.append(None)
                else:
                    recorder = get_recorder()
                    if recorder.enabled:
                        recorder.inc("sinkhorn.selfterm_cache_hits")
            results = self._solve_step(costs, slots, batch_key)
            plan_cross = results[0]
            if self.debias:
                plan_self = results[1]
                if data_value is None:
                    data_value = results[2].value
                    if self.cache_self_terms and batch_key is not None:
                        self._self_terms[batch_key] = data_value

        x_const = Tensor(x)
        cross = masked_cost_matrix_tensor(x_bar, mask, x_const, mask)
        divergence = 2.0 * (
            (Tensor(plan_cross.plan) * cross).sum() + self.reg * entropy(plan_cross.plan)
        )
        if self.debias:
            self_term = masked_cost_matrix_tensor(x_bar, mask, x_bar, mask)
            divergence = divergence - (
                (Tensor(plan_self.plan) * self_term).sum() + self.reg * entropy(plan_self.plan)
            )
            divergence = divergence - data_value
        return divergence / (2.0 * n)
