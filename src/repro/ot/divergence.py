"""Sinkhorn divergences, plain and masking (Definition 4), plus the
differentiable loss used by the DIM module.

The masking Sinkhorn divergence between the generated empirical measure
``ν_x̄`` and the observed one ``μ_x`` is

    S_m(ν_x̄ || μ_x) = 2 OT_λ^m(ν_x̄, μ_x) - OT_λ^m(ν_x̄, ν_x̄) - OT_λ^m(μ_x, μ_x)

where every ``OT_λ^m`` masks each point by its own mask row before computing
squared-Euclidean costs.  The corrective self-terms debias the entropic
regulariser so the divergence is non-negative and zero iff the two masked
point clouds coincide.

Differentiability (Proposition 1) is realised with the envelope theorem: the
optimal plans ``P*`` are solved *off-tape* with log-domain Sinkhorn, then the
loss value is re-assembled from differentiable cost matrices with the plans
held constant, so ``backward()`` yields exactly the barycentric-map gradient

    ∇_{x̄_i} OT_λ^m = [ Σ_j P*_ij (x̄_i ⊙ m_i - x_j ⊙ m_j) ] T(m_i).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from ..obs import get_recorder
from ..parallel import ExecutionContext
from ..tensor import Tensor, as_tensor, no_grad
from .cost import masked_cost_matrix, masked_cost_matrix_tensor, squared_euclidean_cost
from .sinkhorn import SinkhornResult, entropy, sinkhorn

__all__ = [
    "sinkhorn_divergence",
    "masking_sinkhorn_divergence",
    "chunked_masking_sinkhorn_divergence",
    "MaskingSinkhornLoss",
]


def sinkhorn_divergence(
    x: np.ndarray,
    y: np.ndarray,
    reg: float,
    max_iter: int = 500,
    tol: float = 1e-9,
) -> float:
    """Debiased (unmasked) Sinkhorn divergence between two point clouds."""
    cross = sinkhorn(squared_euclidean_cost(x, y), reg, max_iter=max_iter, tol=tol).value
    self_x = sinkhorn(squared_euclidean_cost(x, x), reg, max_iter=max_iter, tol=tol).value
    self_y = sinkhorn(squared_euclidean_cost(y, y), reg, max_iter=max_iter, tol=tol).value
    return 2.0 * cross - self_x - self_y


def masking_sinkhorn_divergence(
    x_bar: np.ndarray,
    x: np.ndarray,
    mask: np.ndarray,
    reg: float,
    mask_bar: Optional[np.ndarray] = None,
    max_iter: int = 500,
    tol: float = 1e-9,
) -> float:
    """Masking Sinkhorn divergence ``S_m(ν_x̄ || μ_x)`` (Definition 4), NumPy.

    ``mask`` applies to ``x``; ``mask_bar`` (defaults to ``mask``) applies to
    ``x_bar``.  Under Algorithm 1 both matrices share the dataset's mask.
    """
    if mask_bar is None:
        mask_bar = mask
    cross_cost = masked_cost_matrix(x_bar, mask_bar, x, mask)
    self_bar_cost = masked_cost_matrix(x_bar, mask_bar, x_bar, mask_bar)
    self_x_cost = masked_cost_matrix(x, mask, x, mask)
    cross = sinkhorn(cross_cost, reg, max_iter=max_iter, tol=tol).value
    self_bar = sinkhorn(self_bar_cost, reg, max_iter=max_iter, tol=tol).value
    self_x = sinkhorn(self_x_cost, reg, max_iter=max_iter, tol=tol).value
    return 2.0 * cross - self_bar - self_x


def chunked_masking_sinkhorn_divergence(
    x_bar: np.ndarray,
    x: np.ndarray,
    mask: np.ndarray,
    reg: float,
    chunk_size: int = 256,
    mask_bar: Optional[np.ndarray] = None,
    max_iter: int = 500,
    tol: float = 1e-9,
    context: Optional["ExecutionContext"] = None,
) -> float:
    """Evaluation-time masking Sinkhorn divergence over row partitions.

    The full ``n × n`` solve is cubic-ish in ``n``; at evaluation time (no
    gradients needed) the standard practice — as in Muzellec et al.'s
    minibatch OT — is to partition the rows into aligned chunks, compute
    ``S_m`` per chunk, and average with row-count weights.  Chunks are
    independent, so they fan out through ``context`` (serial by default);
    the fixed partition and fixed-order combination make the value
    bit-identical across backends and worker counts.

    With ``chunk_size >= n`` this reduces exactly to
    :func:`masking_sinkhorn_divergence`.  Note the chunked value is a
    minibatch *approximation* of the full divergence, not the same number.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    x_bar = np.asarray(x_bar, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if x_bar.shape != x.shape or mask.shape != x.shape:
        raise ValueError(
            f"shape mismatch: x_bar {x_bar.shape}, x {x.shape}, mask {mask.shape}"
        )
    if mask_bar is None:
        mask_bar = mask
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot evaluate the divergence on an empty batch")
    bounds = [(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]
    if len(bounds) == 1:
        return masking_sinkhorn_divergence(
            x_bar, x, mask, reg, mask_bar=mask_bar, max_iter=max_iter, tol=tol
        )
    context = context if context is not None else ExecutionContext.from_env()

    def chunk_task(start: int, stop: int):
        return lambda: masking_sinkhorn_divergence(
            x_bar[start:stop],
            x[start:stop],
            mask[start:stop],
            reg,
            mask_bar=mask_bar[start:stop],
            max_iter=max_iter,
            tol=tol,
        )

    values = context.run(
        [chunk_task(start, stop) for start, stop in bounds],
        label="ot.chunked_divergence",
    )
    total = 0.0
    for (start, stop), value in zip(bounds, values):
        total += (stop - start) * value
    return float(total / n)


@dataclass
class MaskingSinkhornLoss:
    """Differentiable MS-divergence imputation loss ``L_s = S_m / (2n)``.

    Parameters
    ----------
    reg:
        Entropic regulariser ``λ`` (paper default 130 on [0, 1]-normalised
        data scaled; see :class:`repro.core.ScisConfig`).
    max_iter, tol:
        Sinkhorn solver controls.
    debias:
        Include the corrective self-terms (Definition 4).  Switching this off
        reproduces the "entropic only" ablation discussed in §IV.A.
    warm_start:
        Keep a per-``batch_key`` store of dual potentials and reuse them as
        the solver's initial point the next time the same batch is seen.
        Because the solver always iterates to ``tol``, this changes only
        the iteration count, never the answer beyond solver tolerance.
    cache_self_terms:
        Cache the constant data self-term ``OT_λ^m(μ_x, μ_x)`` per
        ``batch_key``: ``x`` and ``mask`` for a given batch never change
        across epochs, so this solve disappears entirely after the first
        epoch.  The cached scalar is exactly what a fresh cold solve would
        produce (the solve is deterministic), so cached and uncached runs
        agree to the bit on this term.

    Both stores are keyed by the caller-supplied ``batch_key``; callers
    **must** guarantee that a key maps to a fixed ``(x, mask)`` pair for the
    lifetime of the store, and call :meth:`reset_caches` whenever that
    mapping changes (e.g. a new training run on a different dataset).
    """

    reg: float
    max_iter: int = 200
    tol: float = 1e-6
    debias: bool = True
    warm_start: bool = True
    cache_self_terms: bool = True
    _duals: Dict[Hashable, Dict[str, Tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _self_terms: Dict[Hashable, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    def reset_caches(self) -> None:
        """Invalidate the warm-start store and the self-term cache.

        Must be called whenever previously used batch keys may refer to
        different data (a new training run, a new dataset, a re-shuffled
        batch partition).
        """
        self._duals.clear()
        self._self_terms.clear()

    def _solve(
        self, cost: np.ndarray, batch_key: Optional[Hashable], slot: str
    ) -> SinkhornResult:
        """One Sinkhorn solve, warm-started from the key's stored duals."""
        init = None
        if self.warm_start and batch_key is not None:
            init = self._duals.get(batch_key, {}).get(slot)
        result = sinkhorn(
            cost, self.reg, max_iter=self.max_iter, tol=self.tol, init=init
        )
        if self.warm_start and batch_key is not None:
            self._duals.setdefault(batch_key, {})[slot] = (result.f, result.g)
        return result

    def __call__(
        self,
        x_bar: Tensor,
        x: np.ndarray,
        mask: np.ndarray,
        batch_key: Optional[Hashable] = None,
    ) -> Tensor:
        """Return the scalar loss tensor for a reconstructed batch.

        ``x_bar`` is the model's reconstruction (on the tape); ``x`` and
        ``mask`` are constant arrays for the same batch.  ``batch_key``
        (optional) identifies the batch across epochs and enables the
        warm-start store and self-term cache; with ``None`` every solve is
        cold and nothing is cached.
        """
        x_bar = as_tensor(x_bar)
        x = np.asarray(x, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        n = x.shape[0]
        if x_bar.shape != x.shape or mask.shape != x.shape:
            raise ValueError(
                f"shape mismatch: x_bar {x_bar.shape}, x {x.shape}, mask {mask.shape}"
            )

        with no_grad():
            cross_cost = masked_cost_matrix(x_bar.data, mask, x, mask)
            plan_cross = self._solve(cross_cost, batch_key, "cross")
            if self.debias:
                self_cost = masked_cost_matrix(x_bar.data, mask, x_bar.data, mask)
                plan_self = self._solve(self_cost, batch_key, "self_bar")
                data_value: Optional[float] = None
                if self.cache_self_terms and batch_key is not None:
                    data_value = self._self_terms.get(batch_key)
                if data_value is None:
                    data_cost = masked_cost_matrix(x, mask, x, mask)
                    # Deliberately cold: the cached value must equal what an
                    # uncached run recomputes every step.
                    data_value = sinkhorn(
                        data_cost, self.reg, max_iter=self.max_iter, tol=self.tol
                    ).value
                    if self.cache_self_terms and batch_key is not None:
                        self._self_terms[batch_key] = data_value
                else:
                    recorder = get_recorder()
                    if recorder.enabled:
                        recorder.inc("sinkhorn.selfterm_cache_hits")

        x_const = Tensor(x)
        cross = masked_cost_matrix_tensor(x_bar, mask, x_const, mask)
        divergence = 2.0 * (
            (Tensor(plan_cross.plan) * cross).sum() + self.reg * entropy(plan_cross.plan)
        )
        if self.debias:
            self_term = masked_cost_matrix_tensor(x_bar, mask, x_bar, mask)
            divergence = divergence - (
                (Tensor(plan_self.plan) * self_term).sum() + self.reg * entropy(plan_self.plan)
            )
            divergence = divergence - data_value
        return divergence / (2.0 * n)
