"""Batched log-domain Sinkhorn over a stacked 3-D cost tensor.

The paper's scalability claim rests on GPU-batched Sinkhorn iterations; the
loop solver in :mod:`repro.ot.sinkhorn` answers one ``(n, m)`` problem at a
time, so a DIM step that needs the cross and self-term plans for a batch
pays for serialized ``logsumexp`` sweeps.  :func:`sinkhorn_batched` stacks
``B`` problems into one ``(B, n, m)`` cost tensor and runs *every* dual
sweep as a single backend-dispatched ``logsumexp`` over the stack — with
NumPy that is one BLAS-grade vectorised reduction instead of ``B`` small
ones, and with an array-API backend (:mod:`repro.tensor.backend`) the same
sweep lands on whatever device the namespace targets.

Parity with the loop solver is exact by construction: the stacked update

    f_k = log a_k − logsumexp(−C_k/λ + g_k[None, :], axis over m)
    g_k = log b_k − logsumexp(−C_k/λ + f_k[:, None], axis over n)

performs the same arithmetic, in the same order, as ``B`` independent loop
solves, and per-problem convergence *masking* freezes a problem's duals on
the exact iteration the loop solver would have broken out — so values,
duals, and iteration counts agree even when problems in the same stack
converge at different times.  The parity tests pin this to 1e-8 (and in
practice it is bit-exact on the NumPy backend).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..obs import get_recorder
from ..tensor import ops
from .sinkhorn import (
    SinkhornConfig,
    SinkhornResult,
    _coerce_config,
    entropy,
    regularized_ot_value,
)

__all__ = ["BatchedSinkhornResult", "sinkhorn_batched"]


@dataclass(frozen=True)
class BatchedSinkhornResult:
    """Per-problem outputs of a stacked Sinkhorn solve.

    Every field is the batched analogue of the :class:`SinkhornResult`
    field of the same name, with a leading problem axis ``B``:
    ``plan`` is ``(B, n, m)``; ``value``, ``transport_cost``,
    ``marginal_violation`` are ``(B,)`` floats; ``iterations`` is ``(B,)``
    ints; ``converged`` is ``(B,)`` bools; ``f``/``g`` are ``(B, n)`` /
    ``(B, m)`` dual potentials, reusable as ``init`` for the next stacked
    solve of nearby problems.
    """

    plan: np.ndarray
    value: np.ndarray
    transport_cost: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    marginal_violation: np.ndarray
    f: np.ndarray
    g: np.ndarray

    def __len__(self) -> int:
        return self.plan.shape[0]

    def problem(self, k: int) -> SinkhornResult:
        """Unstack problem ``k`` as a plain :class:`SinkhornResult`."""
        return SinkhornResult(
            plan=self.plan[k],
            value=float(self.value[k]),
            transport_cost=float(self.transport_cost[k]),
            iterations=int(self.iterations[k]),
            converged=bool(self.converged[k]),
            marginal_violation=float(self.marginal_violation[k]),
            f=self.f[k],
            g=self.g[k],
        )


def _validate_stacked_marginal(
    name: str, weights: Optional[np.ndarray], batch: int, expected: int
) -> np.ndarray:
    """Coerce a marginal spec to a strictly positive ``(B, size)`` array.

    Accepts ``None`` (uniform), a shared ``(size,)`` vector, or a
    per-problem ``(B, size)`` matrix; rejects non-positive or non-finite
    entries naming the offending problem and index.
    """
    if weights is None:
        return np.full((batch, expected), 1.0 / expected)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim == 1 and weights.size == expected:
        weights = np.broadcast_to(weights, (batch, expected)).copy()
    if weights.shape != (batch, expected):
        raise ValueError(
            f"marginal {name!r} must have shape ({expected},) or "
            f"({batch}, {expected}) matching the stacked cost, got shape "
            f"{weights.shape}"
        )
    valid = np.isfinite(weights) & (weights > 0.0)
    if not valid.all():
        k, index = np.unravel_index(int(np.argmin(valid)), weights.shape)
        raise ValueError(
            f"marginal {name!r} must be strictly positive and finite "
            f"(the log-domain solver takes its log): {name}[{k}][{index}] = "
            f"{weights[k, index]}"
        )
    return weights


def _logsumexp(stack: np.ndarray, axis: int) -> np.ndarray:
    """Backend-dispatched, profiler-visible logsumexp over the stack."""
    return ops.logsumexp(stack, axis=axis).data


def sinkhorn_batched(
    cost: np.ndarray,
    config: Optional[SinkhornConfig] = None,
    *,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    init: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    **legacy,
) -> BatchedSinkhornResult:
    """Solve ``B`` entropic OT problems as one stacked log-domain iteration.

    Parameters
    ----------
    cost:
        ``(B, n, m)`` stacked cost tensor — one ``(n, m)`` problem per
        leading index.
    config:
        The same :class:`SinkhornConfig` the loop solver takes; both paths
        are configured identically by construction.  (The legacy
        ``reg=...`` knob form is accepted with the same one-release
        ``DeprecationWarning``.)
    a, b:
        Marginals: ``None`` (uniform), a shared ``(n,)``/``(m,)`` vector,
        or per-problem ``(B, n)``/``(B, m)`` matrices.  Must be strictly
        positive; violations name the offending problem and index.
    init:
        Optional stacked duals ``(f, g)`` of shapes ``(B, n)``/``(B, m)``
        (e.g. from a previous :class:`BatchedSinkhornResult` on nearby
        problems) used as the starting point instead of zeros.

    Convergence is tracked per problem: a problem whose L1 marginal
    violation drops below ``tol`` has its duals frozen from that sweep on
    (exactly where a loop solve would have stopped), while the rest of the
    stack keeps iterating; the solve ends when every problem has converged
    or ``max_iter`` is reached.
    """
    cfg = _coerce_config(config, legacy, "sinkhorn_batched")
    reg, max_iter, tol = cfg.reg, cfg.max_iter, cfg.tol
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 3:
        raise ValueError(
            f"cost must be a stacked (B, n, m) tensor, got shape {cost.shape}"
        )
    batch, n, m = cost.shape
    if batch == 0:
        raise ValueError("cannot solve an empty problem stack")
    a = _validate_stacked_marginal("a", a, batch, n)
    b = _validate_stacked_marginal("b", b, batch, m)
    log_a = np.log(a)
    log_b = np.log(b)

    neg_cost = -cost / reg
    warm_started = init is not None
    if warm_started:
        f0, g0 = init
        f = np.asarray(f0, dtype=np.float64).copy()
        g = np.asarray(g0, dtype=np.float64).copy()
        if f.shape != (batch, n) or g.shape != (batch, m):
            raise ValueError(
                f"init duals must have shapes ({batch}, {n}) and "
                f"({batch}, {m}), got {f.shape} and {g.shape}"
            )
    else:
        f = np.zeros((batch, n))
        g = np.zeros((batch, m))

    # Active-set iteration: problems leave the working stack the sweep
    # they converge, so total work tracks sum-of-iterations (like B loop
    # solves) instead of max-iterations × B.  Row slicing never changes
    # per-problem arithmetic — every update is independent along the
    # problem axis — so this is still bit-exact against the loop solver.
    iterations = np.zeros(batch, dtype=np.int64)
    alive = np.arange(batch)  # indices into the original stack
    nc_act, la_act, lb_act = neg_cost, log_a, log_b
    a_act, b_act, f_act, g_act = a, b, f, g
    for sweep in range(1, max_iter + 1):
        f_act = la_act - _logsumexp(nc_act + g_act[:, None, :], axis=2)
        g_act = lb_act - _logsumexp(nc_act + f_act[:, :, None], axis=1)
        iterations[alive] = sweep
        plan_act = np.exp(nc_act + f_act[:, :, None] + g_act[:, None, :])
        violation_act = (
            np.abs(plan_act.sum(axis=2) - a_act).sum(axis=1)
            + np.abs(plan_act.sum(axis=1) - b_act).sum(axis=1)
        )
        done = violation_act < tol
        if done.any():
            f[alive] = f_act
            g[alive] = g_act
            keep = ~done
            if not keep.any():
                alive = alive[:0]
                break
            alive = alive[keep]
            nc_act = nc_act[keep]
            la_act, lb_act = la_act[keep], lb_act[keep]
            a_act, b_act = a_act[keep], b_act[keep]
            f_act, g_act = f_act[keep], g_act[keep]
    else:
        f[alive] = f_act
        g[alive] = g_act
    converged = np.ones(batch, dtype=bool)
    converged[alive] = False
    plan = np.exp(neg_cost + f[:, :, None] + g[:, None, :])
    violation = (
        np.abs(plan.sum(axis=2) - a).sum(axis=1)
        + np.abs(plan.sum(axis=1) - b).sum(axis=1)
    )
    # Scalar reductions reuse the loop solver's helpers slice-by-slice so a
    # stacked value is bit-identical to the loop value for the same duals.
    value = np.array([regularized_ot_value(plan[k], cost[k], reg) for k in range(batch)])
    transport_cost = np.array([float((plan[k] * cost[k]).sum()) for k in range(batch)])

    recorder = get_recorder()
    if recorder.enabled:
        recorder.inc("sinkhorn.solves", float(batch))
        recorder.inc("sinkhorn.batched_solves")
        recorder.inc("sinkhorn.batched_problems", float(batch))
        nonconverged = int(batch - converged.sum())
        if nonconverged:
            recorder.inc("sinkhorn.nonconverged", float(nonconverged))
            recorder.inc("sinkhorn.batched_nonconverged", float(nonconverged))
        if not (np.isfinite(value).all() and np.isfinite(violation).all()):
            bad = int(np.argmin(np.isfinite(value) & np.isfinite(violation)))
            recorder.inc("health.issues")
            recorder.emit(
                "health.sinkhorn_nonfinite",
                value=float(value[bad]),
                marginal_violation=float(violation[bad]),
                reg=reg,
                n=n,
                m=m,
                stacked=True,
                problem=bad,
            )
        recorder.observe("sinkhorn.batched_stack_size", float(batch))
        recorder.observe("sinkhorn.batched_sweeps", float(iterations.max()))
        for k in range(batch):
            recorder.observe("sinkhorn.iterations", float(iterations[k]))
            recorder.observe("sinkhorn.batched_iterations", float(iterations[k]))
            recorder.observe("sinkhorn.marginal_violation", float(violation[k]))
            if warm_started:
                recorder.observe("sinkhorn.warm_iterations", float(iterations[k]))
        if warm_started:
            recorder.inc("sinkhorn.warm_starts", float(batch))
        recorder.emit(
            "sinkhorn.batched_solve",
            stack=batch,
            n=n,
            m=m,
            reg=reg,
            sweeps=int(iterations.max()),
            iterations=int(iterations.sum()),
            converged=int(converged.sum()),
            max_marginal_violation=float(violation.max()),
            warm_started=warm_started,
        )
    return BatchedSinkhornResult(
        plan=plan,
        value=value,
        transport_cost=transport_cost,
        iterations=iterations,
        converged=converged,
        marginal_violation=violation,
        f=f,
        g=g,
    )
