"""Cost matrices for optimal transport, in NumPy and differentiable forms.

The paper's cost function is the squared Euclidean norm
``f_c(x, y) = ||x - y||_2^2`` (Definition 2); the *masking* variant applies
each point's own mask before taking distances:
``C_m[i, j] = || m_i ⊙ a_i  -  m'_j ⊙ b_j ||^2``.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, as_tensor

__all__ = [
    "squared_euclidean_cost",
    "masked_cost_matrix",
    "squared_euclidean_cost_tensor",
    "masked_cost_matrix_tensor",
]


def squared_euclidean_cost(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared distances ``C[i, j] = ||a_i - b_j||^2`` (NumPy)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    sq_a = (a**2).sum(axis=1)[:, None]
    sq_b = (b**2).sum(axis=1)[None, :]
    cost = sq_a + sq_b - 2.0 * (a @ b.T)
    # Guard tiny negatives from catastrophic cancellation.
    np.maximum(cost, 0.0, out=cost)
    return cost


def masked_cost_matrix(
    a: np.ndarray,
    mask_a: np.ndarray,
    b: np.ndarray,
    mask_b: np.ndarray,
) -> np.ndarray:
    """Masking cost matrix of Definition 2 (NumPy)."""
    return squared_euclidean_cost(np.asarray(a) * np.asarray(mask_a),
                                  np.asarray(b) * np.asarray(mask_b))


def squared_euclidean_cost_tensor(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable pairwise squared distances.

    Uses the expansion ``||a_i||^2 + ||b_j||^2 - 2 a_i · b_j`` so the whole
    matrix is three broadcastable tensor ops; gradients flow into both
    operands.
    """
    a = as_tensor(a)
    b = as_tensor(b)
    sq_a = (a * a).sum(axis=1, keepdims=True)  # (n, 1)
    sq_b = (b * b).sum(axis=1, keepdims=True).transpose()  # (1, m)
    return sq_a + sq_b - 2.0 * (a @ b.transpose())


def masked_cost_matrix_tensor(
    a: Tensor,
    mask_a: np.ndarray,
    b: Tensor,
    mask_b: np.ndarray,
) -> Tensor:
    """Differentiable masking cost matrix; masks are constant arrays."""
    a_masked = as_tensor(a) * Tensor(np.asarray(mask_a, dtype=np.float64))
    b_masked = as_tensor(b) * Tensor(np.asarray(mask_b, dtype=np.float64))
    return squared_euclidean_cost_tensor(a_masked, b_masked)
