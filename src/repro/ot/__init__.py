"""Optimal-transport toolkit: exact OT, Sinkhorn (loop and batched),
masking Sinkhorn divergence."""

from .batched import BatchedSinkhornResult, sinkhorn_batched
from .cost import (
    masked_cost_matrix,
    masked_cost_matrix_tensor,
    squared_euclidean_cost,
    squared_euclidean_cost_tensor,
)
from .divergence import (
    MaskingSinkhornLoss,
    chunked_masking_sinkhorn_divergence,
    masking_sinkhorn_divergence,
    sinkhorn_divergence,
)
from .exact import exact_ot
from .sinkhorn import (
    SinkhornConfig,
    SinkhornResult,
    entropy,
    regularized_ot_value,
    sinkhorn,
)

__all__ = [
    "squared_euclidean_cost",
    "masked_cost_matrix",
    "squared_euclidean_cost_tensor",
    "masked_cost_matrix_tensor",
    "exact_ot",
    "sinkhorn",
    "sinkhorn_batched",
    "SinkhornConfig",
    "SinkhornResult",
    "BatchedSinkhornResult",
    "entropy",
    "regularized_ot_value",
    "sinkhorn_divergence",
    "masking_sinkhorn_divergence",
    "chunked_masking_sinkhorn_divergence",
    "MaskingSinkhornLoss",
]
